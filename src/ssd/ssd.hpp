// Local NVMe SSD model (Huawei ES3600P V5 of Table 1) backing the Ext4
// baseline.
//
// Functional layer: a sparse, thread-safe 4 KB block store so the Ext4-like
// file system above it really round-trips bytes. Every stored block carries
// an LBA-salted CRC32C stamped at write time; checked reads and the
// background scrubber verify it, so bit-rot, torn writes and misdirected
// writes surface as typed corruption instead of silent bad data. Timing
// layer: per-op service times (88 µs read / 14 µs write) with bounded
// channel parallelism — the reason local Ext4 stops scaling past 32 threads
// in Fig. 7 — plus sequential-bandwidth caps for Table 2.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "fault/injector.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::ssd {

inline constexpr std::uint32_t kBlockSize = 4096;

/// Data-corruption injection sites, one draw per write_block(). The draw's
/// entropy picks the damaged bit / tear point / aliased LBA, so a seed
/// reproduces the exact same corruption.
inline constexpr std::string_view kFaultSsdBitRot = "ssd/bit_rot";
inline constexpr std::string_view kFaultSsdTornWrite = "ssd/torn_write";
inline constexpr std::string_view kFaultSsdMisdirectedWrite =
    "ssd/misdirected_write";

/// Verification outcome of a checked block read.
enum class BlockRead : std::uint8_t { kOk, kAbsent, kCorrupt };

class SsdModel {
 public:
  SsdModel() = default;

  /// Attaches the corruption injector (null = pristine drive). Must outlive
  /// the model.
  void attach_fault(fault::FaultInjector* fi) { fault_ = fi; }

  /// Reads one 4 KB block. Unwritten blocks read as zeros. Unchecked: the
  /// legacy path for callers that predate the integrity envelope.
  void read_block(std::uint64_t lba, std::span<std::byte> dst) const;
  /// Reads one block and verifies its stored CRC32C against the whole 4 KB
  /// image (salted with `lba`, so an aliased block from a misdirected write
  /// also fails). On kCorrupt `dst` is zeroed — corrupt bytes never leave
  /// the device model.
  BlockRead read_block_checked(std::uint64_t lba,
                               std::span<std::byte> dst) const;
  /// Writes one 4 KB block (short `src` is zero-padded) and stamps its CRC.
  void write_block(std::uint64_t lba, std::span<const std::byte> src);
  /// Discards a block (TRIM).
  void trim_block(std::uint64_t lba);

  /// Re-verifies a stored block in place — the scrubber's probe. kAbsent
  /// for holes.
  BlockRead verify_block(std::uint64_t lba) const;
  /// Flips one payload bit of a stored block without restamping the CRC
  /// (deterministic corruption hook for tests/benches). False if absent.
  bool corrupt_block(std::uint64_t lba, std::uint32_t bit = 0);
  /// Snapshot of every stored LBA, unordered — the scrubber's walk list.
  std::vector<std::uint64_t> stored_lbas() const;

  std::uint64_t blocks_written() const;

  // ---- timing model -------------------------------------------------
  /// Service time of one random I/O of `bytes` (rounded up to blocks).
  static sim::Nanos random_service(bool is_read, std::uint32_t bytes);
  /// Channel counts for the MVA station.
  static int channels(bool is_read) {
    return is_read ? sim::calib::kSsdReadChannels
                   : sim::calib::kSsdWriteChannels;
  }
  /// Time for `bytes` of sequential transfer at the drive's streaming rate.
  static sim::Nanos sequential_transfer(bool is_read, std::uint64_t bytes);

 private:
  struct Block {
    std::vector<std::byte> data;
    std::uint32_t crc = 0;  ///< CRC32C of data, seeded with the block's LBA
  };
  // Sharded by low LBA bits to keep concurrent threads off one lock.
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable sim::AnnotatedSharedMutex mu{"ssd.shard",
                                         sim::LockRank::kDevice};
    std::unordered_map<std::uint64_t, Block> blocks GUARDED_BY(mu);
  };
  Shard& shard_for(std::uint64_t lba) const {
    return shards_[lba % kShards];
  }
  mutable std::array<Shard, kShards> shards_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace dpc::ssd
