// Local NVMe SSD model (Huawei ES3600P V5 of Table 1) backing the Ext4
// baseline.
//
// Functional layer: a sparse, thread-safe 4 KB block store so the Ext4-like
// file system above it really round-trips bytes. Timing layer: per-op
// service times (88 µs read / 14 µs write) with bounded channel parallelism
// — the reason local Ext4 stops scaling past 32 threads in Fig. 7 — plus
// sequential-bandwidth caps for Table 2.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/thread_annotations.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::ssd {

inline constexpr std::uint32_t kBlockSize = 4096;

class SsdModel {
 public:
  SsdModel() = default;

  /// Reads one 4 KB block. Unwritten blocks read as zeros.
  void read_block(std::uint64_t lba, std::span<std::byte> dst) const;
  /// Writes one 4 KB block.
  void write_block(std::uint64_t lba, std::span<const std::byte> src);
  /// Discards a block (TRIM).
  void trim_block(std::uint64_t lba);

  std::uint64_t blocks_written() const;

  // ---- timing model -------------------------------------------------
  /// Service time of one random I/O of `bytes` (rounded up to blocks).
  static sim::Nanos random_service(bool is_read, std::uint32_t bytes);
  /// Channel counts for the MVA station.
  static int channels(bool is_read) {
    return is_read ? sim::calib::kSsdReadChannels
                   : sim::calib::kSsdWriteChannels;
  }
  /// Time for `bytes` of sequential transfer at the drive's streaming rate.
  static sim::Nanos sequential_transfer(bool is_read, std::uint64_t bytes);

 private:
  struct Block {
    std::vector<std::byte> data;
  };
  // Sharded by low LBA bits to keep concurrent threads off one lock.
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable sim::AnnotatedSharedMutex mu{"ssd.shard",
                                         sim::LockRank::kDevice};
    std::unordered_map<std::uint64_t, Block> blocks GUARDED_BY(mu);
  };
  Shard& shard_for(std::uint64_t lba) const {
    return shards_[lba % kShards];
  }
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace dpc::ssd
