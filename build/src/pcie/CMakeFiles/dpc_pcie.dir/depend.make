# Empty dependencies file for dpc_pcie.
# This may be replaced when dependencies are built.
