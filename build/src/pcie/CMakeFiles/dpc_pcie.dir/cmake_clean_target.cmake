file(REMOVE_RECURSE
  "libdpc_pcie.a"
)
