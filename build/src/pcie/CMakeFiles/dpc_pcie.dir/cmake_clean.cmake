file(REMOVE_RECURSE
  "CMakeFiles/dpc_pcie.dir/dma.cpp.o"
  "CMakeFiles/dpc_pcie.dir/dma.cpp.o.d"
  "CMakeFiles/dpc_pcie.dir/memory.cpp.o"
  "CMakeFiles/dpc_pcie.dir/memory.cpp.o.d"
  "libdpc_pcie.a"
  "libdpc_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
