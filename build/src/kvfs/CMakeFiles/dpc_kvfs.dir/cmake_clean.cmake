file(REMOVE_RECURSE
  "CMakeFiles/dpc_kvfs.dir/fsck.cpp.o"
  "CMakeFiles/dpc_kvfs.dir/fsck.cpp.o.d"
  "CMakeFiles/dpc_kvfs.dir/kvfs.cpp.o"
  "CMakeFiles/dpc_kvfs.dir/kvfs.cpp.o.d"
  "CMakeFiles/dpc_kvfs.dir/types.cpp.o"
  "CMakeFiles/dpc_kvfs.dir/types.cpp.o.d"
  "libdpc_kvfs.a"
  "libdpc_kvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_kvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
