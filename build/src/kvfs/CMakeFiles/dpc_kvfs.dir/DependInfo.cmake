
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvfs/fsck.cpp" "src/kvfs/CMakeFiles/dpc_kvfs.dir/fsck.cpp.o" "gcc" "src/kvfs/CMakeFiles/dpc_kvfs.dir/fsck.cpp.o.d"
  "/root/repo/src/kvfs/kvfs.cpp" "src/kvfs/CMakeFiles/dpc_kvfs.dir/kvfs.cpp.o" "gcc" "src/kvfs/CMakeFiles/dpc_kvfs.dir/kvfs.cpp.o.d"
  "/root/repo/src/kvfs/types.cpp" "src/kvfs/CMakeFiles/dpc_kvfs.dir/types.cpp.o" "gcc" "src/kvfs/CMakeFiles/dpc_kvfs.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kv/CMakeFiles/dpc_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
