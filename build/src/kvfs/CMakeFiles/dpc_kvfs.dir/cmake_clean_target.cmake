file(REMOVE_RECURSE
  "libdpc_kvfs.a"
)
