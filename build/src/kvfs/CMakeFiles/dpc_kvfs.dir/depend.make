# Empty dependencies file for dpc_kvfs.
# This may be replaced when dependencies are built.
