# Empty compiler generated dependencies file for dpc_kvfs.
# This may be replaced when dependencies are built.
