file(REMOVE_RECURSE
  "CMakeFiles/dpc_cache.dir/control_plane.cpp.o"
  "CMakeFiles/dpc_cache.dir/control_plane.cpp.o.d"
  "CMakeFiles/dpc_cache.dir/host_plane.cpp.o"
  "CMakeFiles/dpc_cache.dir/host_plane.cpp.o.d"
  "CMakeFiles/dpc_cache.dir/layout.cpp.o"
  "CMakeFiles/dpc_cache.dir/layout.cpp.o.d"
  "CMakeFiles/dpc_cache.dir/page_cache.cpp.o"
  "CMakeFiles/dpc_cache.dir/page_cache.cpp.o.d"
  "CMakeFiles/dpc_cache.dir/policy.cpp.o"
  "CMakeFiles/dpc_cache.dir/policy.cpp.o.d"
  "libdpc_cache.a"
  "libdpc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
