# Empty compiler generated dependencies file for dpc_cache.
# This may be replaced when dependencies are built.
