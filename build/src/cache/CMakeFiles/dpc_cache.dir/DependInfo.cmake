
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/control_plane.cpp" "src/cache/CMakeFiles/dpc_cache.dir/control_plane.cpp.o" "gcc" "src/cache/CMakeFiles/dpc_cache.dir/control_plane.cpp.o.d"
  "/root/repo/src/cache/host_plane.cpp" "src/cache/CMakeFiles/dpc_cache.dir/host_plane.cpp.o" "gcc" "src/cache/CMakeFiles/dpc_cache.dir/host_plane.cpp.o.d"
  "/root/repo/src/cache/layout.cpp" "src/cache/CMakeFiles/dpc_cache.dir/layout.cpp.o" "gcc" "src/cache/CMakeFiles/dpc_cache.dir/layout.cpp.o.d"
  "/root/repo/src/cache/page_cache.cpp" "src/cache/CMakeFiles/dpc_cache.dir/page_cache.cpp.o" "gcc" "src/cache/CMakeFiles/dpc_cache.dir/page_cache.cpp.o.d"
  "/root/repo/src/cache/policy.cpp" "src/cache/CMakeFiles/dpc_cache.dir/policy.cpp.o" "gcc" "src/cache/CMakeFiles/dpc_cache.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/dpc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/dpc_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/dpc_dpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
