file(REMOVE_RECURSE
  "libdpc_cache.a"
)
