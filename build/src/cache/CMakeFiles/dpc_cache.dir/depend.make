# Empty dependencies file for dpc_cache.
# This may be replaced when dependencies are built.
