file(REMOVE_RECURSE
  "libdpc_ssd.a"
)
