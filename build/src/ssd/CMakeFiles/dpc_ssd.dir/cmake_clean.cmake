file(REMOVE_RECURSE
  "CMakeFiles/dpc_ssd.dir/ssd.cpp.o"
  "CMakeFiles/dpc_ssd.dir/ssd.cpp.o.d"
  "libdpc_ssd.a"
  "libdpc_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
