# Empty compiler generated dependencies file for dpc_ssd.
# This may be replaced when dependencies are built.
