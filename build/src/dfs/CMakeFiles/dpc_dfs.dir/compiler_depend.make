# Empty compiler generated dependencies file for dpc_dfs.
# This may be replaced when dependencies are built.
