file(REMOVE_RECURSE
  "libdpc_dfs.a"
)
