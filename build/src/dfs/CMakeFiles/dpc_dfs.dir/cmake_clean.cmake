file(REMOVE_RECURSE
  "CMakeFiles/dpc_dfs.dir/backend.cpp.o"
  "CMakeFiles/dpc_dfs.dir/backend.cpp.o.d"
  "CMakeFiles/dpc_dfs.dir/client.cpp.o"
  "CMakeFiles/dpc_dfs.dir/client.cpp.o.d"
  "libdpc_dfs.a"
  "libdpc_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
