
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/backend.cpp" "src/dfs/CMakeFiles/dpc_dfs.dir/backend.cpp.o" "gcc" "src/dfs/CMakeFiles/dpc_dfs.dir/backend.cpp.o.d"
  "/root/repo/src/dfs/client.cpp" "src/dfs/CMakeFiles/dpc_dfs.dir/client.cpp.o" "gcc" "src/dfs/CMakeFiles/dpc_dfs.dir/client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ec/CMakeFiles/dpc_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/dpc_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
