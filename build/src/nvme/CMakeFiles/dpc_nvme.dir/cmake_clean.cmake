file(REMOVE_RECURSE
  "CMakeFiles/dpc_nvme.dir/ini.cpp.o"
  "CMakeFiles/dpc_nvme.dir/ini.cpp.o.d"
  "CMakeFiles/dpc_nvme.dir/queue_pair.cpp.o"
  "CMakeFiles/dpc_nvme.dir/queue_pair.cpp.o.d"
  "CMakeFiles/dpc_nvme.dir/spec.cpp.o"
  "CMakeFiles/dpc_nvme.dir/spec.cpp.o.d"
  "CMakeFiles/dpc_nvme.dir/tgt.cpp.o"
  "CMakeFiles/dpc_nvme.dir/tgt.cpp.o.d"
  "libdpc_nvme.a"
  "libdpc_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
