# Empty compiler generated dependencies file for dpc_nvme.
# This may be replaced when dependencies are built.
