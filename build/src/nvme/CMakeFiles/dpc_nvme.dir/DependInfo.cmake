
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvme/ini.cpp" "src/nvme/CMakeFiles/dpc_nvme.dir/ini.cpp.o" "gcc" "src/nvme/CMakeFiles/dpc_nvme.dir/ini.cpp.o.d"
  "/root/repo/src/nvme/queue_pair.cpp" "src/nvme/CMakeFiles/dpc_nvme.dir/queue_pair.cpp.o" "gcc" "src/nvme/CMakeFiles/dpc_nvme.dir/queue_pair.cpp.o.d"
  "/root/repo/src/nvme/spec.cpp" "src/nvme/CMakeFiles/dpc_nvme.dir/spec.cpp.o" "gcc" "src/nvme/CMakeFiles/dpc_nvme.dir/spec.cpp.o.d"
  "/root/repo/src/nvme/tgt.cpp" "src/nvme/CMakeFiles/dpc_nvme.dir/tgt.cpp.o" "gcc" "src/nvme/CMakeFiles/dpc_nvme.dir/tgt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/dpc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
