file(REMOVE_RECURSE
  "libdpc_nvme.a"
)
