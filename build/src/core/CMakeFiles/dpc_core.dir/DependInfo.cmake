
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dpc_system.cpp" "src/core/CMakeFiles/dpc_core.dir/dpc_system.cpp.o" "gcc" "src/core/CMakeFiles/dpc_core.dir/dpc_system.cpp.o.d"
  "/root/repo/src/core/dpfs_system.cpp" "src/core/CMakeFiles/dpc_core.dir/dpfs_system.cpp.o" "gcc" "src/core/CMakeFiles/dpc_core.dir/dpfs_system.cpp.o.d"
  "/root/repo/src/core/fileproto.cpp" "src/core/CMakeFiles/dpc_core.dir/fileproto.cpp.o" "gcc" "src/core/CMakeFiles/dpc_core.dir/fileproto.cpp.o.d"
  "/root/repo/src/core/io_dispatch.cpp" "src/core/CMakeFiles/dpc_core.dir/io_dispatch.cpp.o" "gcc" "src/core/CMakeFiles/dpc_core.dir/io_dispatch.cpp.o.d"
  "/root/repo/src/core/virtual_client.cpp" "src/core/CMakeFiles/dpc_core.dir/virtual_client.cpp.o" "gcc" "src/core/CMakeFiles/dpc_core.dir/virtual_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvme/CMakeFiles/dpc_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/dpc_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dpc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/kvfs/CMakeFiles/dpc_kvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/dpc_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/dpc_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/dpc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/dpc_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/dpc_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
