file(REMOVE_RECURSE
  "CMakeFiles/dpc_core.dir/dpc_system.cpp.o"
  "CMakeFiles/dpc_core.dir/dpc_system.cpp.o.d"
  "CMakeFiles/dpc_core.dir/dpfs_system.cpp.o"
  "CMakeFiles/dpc_core.dir/dpfs_system.cpp.o.d"
  "CMakeFiles/dpc_core.dir/fileproto.cpp.o"
  "CMakeFiles/dpc_core.dir/fileproto.cpp.o.d"
  "CMakeFiles/dpc_core.dir/io_dispatch.cpp.o"
  "CMakeFiles/dpc_core.dir/io_dispatch.cpp.o.d"
  "CMakeFiles/dpc_core.dir/virtual_client.cpp.o"
  "CMakeFiles/dpc_core.dir/virtual_client.cpp.o.d"
  "libdpc_core.a"
  "libdpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
