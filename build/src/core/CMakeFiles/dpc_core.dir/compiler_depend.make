# Empty compiler generated dependencies file for dpc_core.
# This may be replaced when dependencies are built.
