file(REMOVE_RECURSE
  "CMakeFiles/dpc_sim.dir/histogram.cpp.o"
  "CMakeFiles/dpc_sim.dir/histogram.cpp.o.d"
  "CMakeFiles/dpc_sim.dir/mva.cpp.o"
  "CMakeFiles/dpc_sim.dir/mva.cpp.o.d"
  "CMakeFiles/dpc_sim.dir/table.cpp.o"
  "CMakeFiles/dpc_sim.dir/table.cpp.o.d"
  "CMakeFiles/dpc_sim.dir/workload.cpp.o"
  "CMakeFiles/dpc_sim.dir/workload.cpp.o.d"
  "libdpc_sim.a"
  "libdpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
