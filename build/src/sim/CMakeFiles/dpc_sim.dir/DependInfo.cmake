
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/histogram.cpp" "src/sim/CMakeFiles/dpc_sim.dir/histogram.cpp.o" "gcc" "src/sim/CMakeFiles/dpc_sim.dir/histogram.cpp.o.d"
  "/root/repo/src/sim/mva.cpp" "src/sim/CMakeFiles/dpc_sim.dir/mva.cpp.o" "gcc" "src/sim/CMakeFiles/dpc_sim.dir/mva.cpp.o.d"
  "/root/repo/src/sim/table.cpp" "src/sim/CMakeFiles/dpc_sim.dir/table.cpp.o" "gcc" "src/sim/CMakeFiles/dpc_sim.dir/table.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/dpc_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/dpc_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
