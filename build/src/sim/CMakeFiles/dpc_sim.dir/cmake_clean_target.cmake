file(REMOVE_RECURSE
  "libdpc_sim.a"
)
