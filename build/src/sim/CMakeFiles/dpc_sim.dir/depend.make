# Empty dependencies file for dpc_sim.
# This may be replaced when dependencies are built.
