
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virtio/fuse.cpp" "src/virtio/CMakeFiles/dpc_virtio.dir/fuse.cpp.o" "gcc" "src/virtio/CMakeFiles/dpc_virtio.dir/fuse.cpp.o.d"
  "/root/repo/src/virtio/virtio_fs.cpp" "src/virtio/CMakeFiles/dpc_virtio.dir/virtio_fs.cpp.o" "gcc" "src/virtio/CMakeFiles/dpc_virtio.dir/virtio_fs.cpp.o.d"
  "/root/repo/src/virtio/virtqueue.cpp" "src/virtio/CMakeFiles/dpc_virtio.dir/virtqueue.cpp.o" "gcc" "src/virtio/CMakeFiles/dpc_virtio.dir/virtqueue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/dpc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
