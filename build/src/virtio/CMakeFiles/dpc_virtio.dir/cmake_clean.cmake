file(REMOVE_RECURSE
  "CMakeFiles/dpc_virtio.dir/fuse.cpp.o"
  "CMakeFiles/dpc_virtio.dir/fuse.cpp.o.d"
  "CMakeFiles/dpc_virtio.dir/virtio_fs.cpp.o"
  "CMakeFiles/dpc_virtio.dir/virtio_fs.cpp.o.d"
  "CMakeFiles/dpc_virtio.dir/virtqueue.cpp.o"
  "CMakeFiles/dpc_virtio.dir/virtqueue.cpp.o.d"
  "libdpc_virtio.a"
  "libdpc_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
