file(REMOVE_RECURSE
  "libdpc_virtio.a"
)
