# Empty dependencies file for dpc_virtio.
# This may be replaced when dependencies are built.
