
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/crc32c.cpp" "src/ec/CMakeFiles/dpc_ec.dir/crc32c.cpp.o" "gcc" "src/ec/CMakeFiles/dpc_ec.dir/crc32c.cpp.o.d"
  "/root/repo/src/ec/gf256.cpp" "src/ec/CMakeFiles/dpc_ec.dir/gf256.cpp.o" "gcc" "src/ec/CMakeFiles/dpc_ec.dir/gf256.cpp.o.d"
  "/root/repo/src/ec/reed_solomon.cpp" "src/ec/CMakeFiles/dpc_ec.dir/reed_solomon.cpp.o" "gcc" "src/ec/CMakeFiles/dpc_ec.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
