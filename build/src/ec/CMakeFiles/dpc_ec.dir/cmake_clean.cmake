file(REMOVE_RECURSE
  "CMakeFiles/dpc_ec.dir/crc32c.cpp.o"
  "CMakeFiles/dpc_ec.dir/crc32c.cpp.o.d"
  "CMakeFiles/dpc_ec.dir/gf256.cpp.o"
  "CMakeFiles/dpc_ec.dir/gf256.cpp.o.d"
  "CMakeFiles/dpc_ec.dir/reed_solomon.cpp.o"
  "CMakeFiles/dpc_ec.dir/reed_solomon.cpp.o.d"
  "libdpc_ec.a"
  "libdpc_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
