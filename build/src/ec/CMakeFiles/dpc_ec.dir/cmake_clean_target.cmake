file(REMOVE_RECURSE
  "libdpc_ec.a"
)
