# Empty compiler generated dependencies file for dpc_ec.
# This may be replaced when dependencies are built.
