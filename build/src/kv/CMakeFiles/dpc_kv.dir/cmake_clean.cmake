file(REMOVE_RECURSE
  "CMakeFiles/dpc_kv.dir/kv_store.cpp.o"
  "CMakeFiles/dpc_kv.dir/kv_store.cpp.o.d"
  "CMakeFiles/dpc_kv.dir/remote.cpp.o"
  "CMakeFiles/dpc_kv.dir/remote.cpp.o.d"
  "libdpc_kv.a"
  "libdpc_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
