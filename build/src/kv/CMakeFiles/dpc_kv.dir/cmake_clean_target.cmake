file(REMOVE_RECURSE
  "libdpc_kv.a"
)
