# Empty dependencies file for dpc_kv.
# This may be replaced when dependencies are built.
