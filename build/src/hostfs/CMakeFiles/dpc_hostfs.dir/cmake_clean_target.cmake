file(REMOVE_RECURSE
  "libdpc_hostfs.a"
)
