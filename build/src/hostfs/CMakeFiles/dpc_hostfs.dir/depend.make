# Empty dependencies file for dpc_hostfs.
# This may be replaced when dependencies are built.
