file(REMOVE_RECURSE
  "CMakeFiles/dpc_hostfs.dir/ext4like.cpp.o"
  "CMakeFiles/dpc_hostfs.dir/ext4like.cpp.o.d"
  "libdpc_hostfs.a"
  "libdpc_hostfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_hostfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
