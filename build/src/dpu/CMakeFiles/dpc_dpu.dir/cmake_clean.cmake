file(REMOVE_RECURSE
  "CMakeFiles/dpc_dpu.dir/compress.cpp.o"
  "CMakeFiles/dpc_dpu.dir/compress.cpp.o.d"
  "CMakeFiles/dpc_dpu.dir/dpu.cpp.o"
  "CMakeFiles/dpc_dpu.dir/dpu.cpp.o.d"
  "CMakeFiles/dpc_dpu.dir/worker_pool.cpp.o"
  "CMakeFiles/dpc_dpu.dir/worker_pool.cpp.o.d"
  "libdpc_dpu.a"
  "libdpc_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
