file(REMOVE_RECURSE
  "libdpc_dpu.a"
)
