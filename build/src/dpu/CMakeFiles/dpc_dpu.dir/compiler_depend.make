# Empty compiler generated dependencies file for dpc_dpu.
# This may be replaced when dependencies are built.
