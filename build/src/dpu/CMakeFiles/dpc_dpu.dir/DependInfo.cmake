
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpu/compress.cpp" "src/dpu/CMakeFiles/dpc_dpu.dir/compress.cpp.o" "gcc" "src/dpu/CMakeFiles/dpc_dpu.dir/compress.cpp.o.d"
  "/root/repo/src/dpu/dpu.cpp" "src/dpu/CMakeFiles/dpc_dpu.dir/dpu.cpp.o" "gcc" "src/dpu/CMakeFiles/dpc_dpu.dir/dpu.cpp.o.d"
  "/root/repo/src/dpu/worker_pool.cpp" "src/dpu/CMakeFiles/dpc_dpu.dir/worker_pool.cpp.o" "gcc" "src/dpu/CMakeFiles/dpc_dpu.dir/worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/dpc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/dpc_ec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
