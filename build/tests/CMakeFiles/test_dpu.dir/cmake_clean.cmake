file(REMOVE_RECURSE
  "CMakeFiles/test_dpu.dir/test_dpu.cpp.o"
  "CMakeFiles/test_dpu.dir/test_dpu.cpp.o.d"
  "test_dpu"
  "test_dpu.pdb"
  "test_dpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
