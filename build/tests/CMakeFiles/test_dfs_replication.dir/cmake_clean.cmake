file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_replication.dir/test_dfs_replication.cpp.o"
  "CMakeFiles/test_dfs_replication.dir/test_dfs_replication.cpp.o.d"
  "test_dfs_replication"
  "test_dfs_replication.pdb"
  "test_dfs_replication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
