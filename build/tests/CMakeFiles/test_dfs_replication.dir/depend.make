# Empty dependencies file for test_dfs_replication.
# This may be replaced when dependencies are built.
