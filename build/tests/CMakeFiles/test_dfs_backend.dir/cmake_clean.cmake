file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_backend.dir/test_dfs_backend.cpp.o"
  "CMakeFiles/test_dfs_backend.dir/test_dfs_backend.cpp.o.d"
  "test_dfs_backend"
  "test_dfs_backend.pdb"
  "test_dfs_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
