# Empty compiler generated dependencies file for test_dfs_backend.
# This may be replaced when dependencies are built.
