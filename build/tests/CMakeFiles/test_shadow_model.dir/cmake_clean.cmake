file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_model.dir/test_shadow_model.cpp.o"
  "CMakeFiles/test_shadow_model.dir/test_shadow_model.cpp.o.d"
  "test_shadow_model"
  "test_shadow_model.pdb"
  "test_shadow_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
