# Empty dependencies file for test_multimount.
# This may be replaced when dependencies are built.
