file(REMOVE_RECURSE
  "CMakeFiles/test_multimount.dir/test_multimount.cpp.o"
  "CMakeFiles/test_multimount.dir/test_multimount.cpp.o.d"
  "test_multimount"
  "test_multimount.pdb"
  "test_multimount[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multimount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
