# Empty dependencies file for test_sim_table.
# This may be replaced when dependencies are built.
