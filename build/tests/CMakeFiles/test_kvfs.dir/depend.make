# Empty dependencies file for test_kvfs.
# This may be replaced when dependencies are built.
