file(REMOVE_RECURSE
  "CMakeFiles/test_kvfs.dir/test_kvfs.cpp.o"
  "CMakeFiles/test_kvfs.dir/test_kvfs.cpp.o.d"
  "test_kvfs"
  "test_kvfs.pdb"
  "test_kvfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
