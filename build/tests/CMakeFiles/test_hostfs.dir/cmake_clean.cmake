file(REMOVE_RECURSE
  "CMakeFiles/test_hostfs.dir/test_hostfs.cpp.o"
  "CMakeFiles/test_hostfs.dir/test_hostfs.cpp.o.d"
  "test_hostfs"
  "test_hostfs.pdb"
  "test_hostfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hostfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
