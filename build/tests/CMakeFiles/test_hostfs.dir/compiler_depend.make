# Empty compiler generated dependencies file for test_hostfs.
# This may be replaced when dependencies are built.
