# Empty dependencies file for test_cache_policy.
# This may be replaced when dependencies are built.
