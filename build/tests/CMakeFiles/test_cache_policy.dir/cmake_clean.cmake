file(REMOVE_RECURSE
  "CMakeFiles/test_cache_policy.dir/test_cache_policy.cpp.o"
  "CMakeFiles/test_cache_policy.dir/test_cache_policy.cpp.o.d"
  "test_cache_policy"
  "test_cache_policy.pdb"
  "test_cache_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
