# Empty dependencies file for test_nvme_queue.
# This may be replaced when dependencies are built.
