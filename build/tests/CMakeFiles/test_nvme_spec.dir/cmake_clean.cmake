file(REMOVE_RECURSE
  "CMakeFiles/test_nvme_spec.dir/test_nvme_spec.cpp.o"
  "CMakeFiles/test_nvme_spec.dir/test_nvme_spec.cpp.o.d"
  "test_nvme_spec"
  "test_nvme_spec.pdb"
  "test_nvme_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvme_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
