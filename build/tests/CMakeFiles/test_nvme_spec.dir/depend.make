# Empty dependencies file for test_nvme_spec.
# This may be replaced when dependencies are built.
