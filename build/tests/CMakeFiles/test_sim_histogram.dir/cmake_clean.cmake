file(REMOVE_RECURSE
  "CMakeFiles/test_sim_histogram.dir/test_sim_histogram.cpp.o"
  "CMakeFiles/test_sim_histogram.dir/test_sim_histogram.cpp.o.d"
  "test_sim_histogram"
  "test_sim_histogram.pdb"
  "test_sim_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
