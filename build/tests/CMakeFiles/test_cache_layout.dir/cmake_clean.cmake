file(REMOVE_RECURSE
  "CMakeFiles/test_cache_layout.dir/test_cache_layout.cpp.o"
  "CMakeFiles/test_cache_layout.dir/test_cache_layout.cpp.o.d"
  "test_cache_layout"
  "test_cache_layout.pdb"
  "test_cache_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
