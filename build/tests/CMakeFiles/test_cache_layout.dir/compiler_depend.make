# Empty compiler generated dependencies file for test_cache_layout.
# This may be replaced when dependencies are built.
