file(REMOVE_RECURSE
  "CMakeFiles/test_virtio_fs.dir/test_virtio_fs.cpp.o"
  "CMakeFiles/test_virtio_fs.dir/test_virtio_fs.cpp.o.d"
  "test_virtio_fs"
  "test_virtio_fs.pdb"
  "test_virtio_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtio_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
