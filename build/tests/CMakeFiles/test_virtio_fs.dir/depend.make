# Empty dependencies file for test_virtio_fs.
# This may be replaced when dependencies are built.
