file(REMOVE_RECURSE
  "CMakeFiles/test_cache_control.dir/test_cache_control.cpp.o"
  "CMakeFiles/test_cache_control.dir/test_cache_control.cpp.o.d"
  "test_cache_control"
  "test_cache_control.pdb"
  "test_cache_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
