# Empty compiler generated dependencies file for test_cache_control.
# This may be replaced when dependencies are built.
