# Empty compiler generated dependencies file for test_sim_mva.
# This may be replaced when dependencies are built.
