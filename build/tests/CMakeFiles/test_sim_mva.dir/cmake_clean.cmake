file(REMOVE_RECURSE
  "CMakeFiles/test_sim_mva.dir/test_sim_mva.cpp.o"
  "CMakeFiles/test_sim_mva.dir/test_sim_mva.cpp.o.d"
  "test_sim_mva"
  "test_sim_mva.pdb"
  "test_sim_mva[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_mva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
