# Empty compiler generated dependencies file for test_fsck.
# This may be replaced when dependencies are built.
