file(REMOVE_RECURSE
  "CMakeFiles/test_fsck.dir/test_fsck.cpp.o"
  "CMakeFiles/test_fsck.dir/test_fsck.cpp.o.d"
  "test_fsck"
  "test_fsck.pdb"
  "test_fsck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
