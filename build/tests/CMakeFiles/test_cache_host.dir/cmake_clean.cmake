file(REMOVE_RECURSE
  "CMakeFiles/test_cache_host.dir/test_cache_host.cpp.o"
  "CMakeFiles/test_cache_host.dir/test_cache_host.cpp.o.d"
  "test_cache_host"
  "test_cache_host.pdb"
  "test_cache_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
