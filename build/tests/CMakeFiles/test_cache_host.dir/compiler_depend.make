# Empty compiler generated dependencies file for test_cache_host.
# This may be replaced when dependencies are built.
