# Empty dependencies file for test_dpc_system.
# This may be replaced when dependencies are built.
