
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dpc_system.cpp" "tests/CMakeFiles/test_dpc_system.dir/test_dpc_system.cpp.o" "gcc" "tests/CMakeFiles/test_dpc_system.dir/test_dpc_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/dpc_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/hostfs/CMakeFiles/dpc_hostfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kvfs/CMakeFiles/dpc_kvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dpc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/dpc_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/dpc_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/dpc_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/dpc_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/dpc_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/dpc_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/dpc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
