file(REMOVE_RECURSE
  "CMakeFiles/test_dpc_system.dir/test_dpc_system.cpp.o"
  "CMakeFiles/test_dpc_system.dir/test_dpc_system.cpp.o.d"
  "test_dpc_system"
  "test_dpc_system.pdb"
  "test_dpc_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
