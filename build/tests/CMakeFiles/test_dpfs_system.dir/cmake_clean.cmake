file(REMOVE_RECURSE
  "CMakeFiles/test_dpfs_system.dir/test_dpfs_system.cpp.o"
  "CMakeFiles/test_dpfs_system.dir/test_dpfs_system.cpp.o.d"
  "test_dpfs_system"
  "test_dpfs_system.pdb"
  "test_dpfs_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpfs_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
