# Empty compiler generated dependencies file for test_mva_sim_crosscheck.
# This may be replaced when dependencies are built.
