file(REMOVE_RECURSE
  "CMakeFiles/test_mva_sim_crosscheck.dir/test_mva_sim_crosscheck.cpp.o"
  "CMakeFiles/test_mva_sim_crosscheck.dir/test_mva_sim_crosscheck.cpp.o.d"
  "test_mva_sim_crosscheck"
  "test_mva_sim_crosscheck.pdb"
  "test_mva_sim_crosscheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mva_sim_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
