# Empty dependencies file for test_fileproto.
# This may be replaced when dependencies are built.
