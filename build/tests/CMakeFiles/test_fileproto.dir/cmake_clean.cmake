file(REMOVE_RECURSE
  "CMakeFiles/test_fileproto.dir/test_fileproto.cpp.o"
  "CMakeFiles/test_fileproto.dir/test_fileproto.cpp.o.d"
  "test_fileproto"
  "test_fileproto.pdb"
  "test_fileproto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fileproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
