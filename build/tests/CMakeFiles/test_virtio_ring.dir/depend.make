# Empty dependencies file for test_virtio_ring.
# This may be replaced when dependencies are built.
