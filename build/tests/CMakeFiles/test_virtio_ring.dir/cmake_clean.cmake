file(REMOVE_RECURSE
  "CMakeFiles/test_virtio_ring.dir/test_virtio_ring.cpp.o"
  "CMakeFiles/test_virtio_ring.dir/test_virtio_ring.cpp.o.d"
  "test_virtio_ring"
  "test_virtio_ring.pdb"
  "test_virtio_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtio_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
