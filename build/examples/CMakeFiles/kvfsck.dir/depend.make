# Empty dependencies file for kvfsck.
# This may be replaced when dependencies are built.
