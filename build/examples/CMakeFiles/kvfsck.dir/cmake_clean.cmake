file(REMOVE_RECURSE
  "CMakeFiles/kvfsck.dir/kvfsck.cpp.o"
  "CMakeFiles/kvfsck.dir/kvfsck.cpp.o.d"
  "kvfsck"
  "kvfsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvfsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
