file(REMOVE_RECURSE
  "CMakeFiles/cache_prefetch.dir/cache_prefetch.cpp.o"
  "CMakeFiles/cache_prefetch.dir/cache_prefetch.cpp.o.d"
  "cache_prefetch"
  "cache_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
