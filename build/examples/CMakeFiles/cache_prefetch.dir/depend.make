# Empty dependencies file for cache_prefetch.
# This may be replaced when dependencies are built.
