file(REMOVE_RECURSE
  "CMakeFiles/dfs_workload.dir/dfs_workload.cpp.o"
  "CMakeFiles/dfs_workload.dir/dfs_workload.cpp.o.d"
  "dfs_workload"
  "dfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
