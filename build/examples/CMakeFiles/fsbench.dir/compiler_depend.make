# Empty compiler generated dependencies file for fsbench.
# This may be replaced when dependencies are built.
