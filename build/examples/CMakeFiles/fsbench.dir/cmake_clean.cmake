file(REMOVE_RECURSE
  "CMakeFiles/fsbench.dir/fsbench.cpp.o"
  "CMakeFiles/fsbench.dir/fsbench.cpp.o.d"
  "fsbench"
  "fsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
