# Empty dependencies file for diskless_server.
# This may be replaced when dependencies are built.
