file(REMOVE_RECURSE
  "CMakeFiles/diskless_server.dir/diskless_server.cpp.o"
  "CMakeFiles/diskless_server.dir/diskless_server.cpp.o.d"
  "diskless_server"
  "diskless_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskless_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
