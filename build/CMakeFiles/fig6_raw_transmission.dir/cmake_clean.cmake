file(REMOVE_RECURSE
  "CMakeFiles/fig6_raw_transmission.dir/bench/fig6_raw_transmission.cpp.o"
  "CMakeFiles/fig6_raw_transmission.dir/bench/fig6_raw_transmission.cpp.o.d"
  "bench/fig6_raw_transmission"
  "bench/fig6_raw_transmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_raw_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
