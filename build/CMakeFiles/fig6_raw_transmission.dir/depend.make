# Empty dependencies file for fig6_raw_transmission.
# This may be replaced when dependencies are built.
