file(REMOVE_RECURSE
  "CMakeFiles/fig7_standalone.dir/bench/fig7_standalone.cpp.o"
  "CMakeFiles/fig7_standalone.dir/bench/fig7_standalone.cpp.o.d"
  "bench/fig7_standalone"
  "bench/fig7_standalone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_standalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
