# Empty compiler generated dependencies file for fig7_standalone.
# This may be replaced when dependencies are built.
