file(REMOVE_RECURSE
  "CMakeFiles/fig2_fig4_dma_count.dir/bench/fig2_fig4_dma_count.cpp.o"
  "CMakeFiles/fig2_fig4_dma_count.dir/bench/fig2_fig4_dma_count.cpp.o.d"
  "bench/fig2_fig4_dma_count"
  "bench/fig2_fig4_dma_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fig4_dma_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
