# Empty dependencies file for fig2_fig4_dma_count.
# This may be replaced when dependencies are built.
