file(REMOVE_RECURSE
  "CMakeFiles/fig9_dfs.dir/bench/fig9_dfs.cpp.o"
  "CMakeFiles/fig9_dfs.dir/bench/fig9_dfs.cpp.o.d"
  "bench/fig9_dfs"
  "bench/fig9_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
