# Empty compiler generated dependencies file for fig9_dfs.
# This may be replaced when dependencies are built.
