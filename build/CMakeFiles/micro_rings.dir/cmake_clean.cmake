file(REMOVE_RECURSE
  "CMakeFiles/micro_rings.dir/bench/micro_rings.cpp.o"
  "CMakeFiles/micro_rings.dir/bench/micro_rings.cpp.o.d"
  "bench/micro_rings"
  "bench/micro_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
