file(REMOVE_RECURSE
  "CMakeFiles/fig8_hybrid_cache.dir/bench/fig8_hybrid_cache.cpp.o"
  "CMakeFiles/fig8_hybrid_cache.dir/bench/fig8_hybrid_cache.cpp.o.d"
  "bench/fig8_hybrid_cache"
  "bench/fig8_hybrid_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hybrid_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
