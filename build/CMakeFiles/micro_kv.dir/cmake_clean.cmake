file(REMOVE_RECURSE
  "CMakeFiles/micro_kv.dir/bench/micro_kv.cpp.o"
  "CMakeFiles/micro_kv.dir/bench/micro_kv.cpp.o.d"
  "bench/micro_kv"
  "bench/micro_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
