#!/usr/bin/env python3
"""dpc_lint — AST-free protocol linter for the DPC tree.

Checks invariants that neither the compiler nor clang-tidy can see because
they are conventions of this codebase, not of C++:

  raw-mutex         std::mutex / std::shared_mutex declared outside the
                    annotated wrappers (sim/thread_annotations.hpp). Raw
                    mutexes bypass both the Clang thread-safety annotations
                    and the runtime lock-rank detector.
  raw-guard         std::lock_guard / std::unique_lock / std::shared_lock /
                    std::scoped_lock outside the wrapper header. The sim::
                    guards carry the SCOPED_CAPABILITY annotations; the std
                    ones are invisible to the analysis.
  doorbell-fence    a doorbell MMIO (`->doorbell(`) with no preceding
                    publish in the lookback window — a plain or release
                    store / DMA write of the descriptor the doorbell
                    advertises. Producer-side doorbells that follow this
                    protocol are readable at a glance; consumer-side ones
                    (CQ head updates) must say so with a suppression.
  sqe-encode        writes to SQE fields outside the encode_*/decode_*
                    helpers in nvme/spec.cpp. All wire-format knowledge
                    lives in one file.
  hot-path-lookup   registry name-lookups fused with a record/add call
                    (`registry.histogram("x").record(...)`): each lookup
                    takes the registry's shared lock and hashes the name.
                    Hot paths must cache the instrument pointer at
                    construction. Recovery-only paths may suppress.
  wall-clock        std::chrono::system_clock / high_resolution_clock
                    anywhere (the simulation is Date-free; modelled time is
                    sim::Nanos), and steady_clock inside src/sim/ itself —
                    the time model must not read real clocks.
  checksum-stamp    inside the checksummed stores (ssd/ssd.cpp,
                    kv/kv_store.cpp, dfs/backend.cpp): a memcpy whose
                    *destination* is a stored object's payload (`….data`)
                    with no CRC restamp (`stamp_*_crc` / `.crc =`) within a
                    few lines. Mutating stored bytes without restamping
                    makes the integrity envelope read the write back as
                    bit-rot — every payload mutation goes through the stamp
                    helper.
  lockfree-mutex    a mutex acquisition (sim:: or std:: guard, or a bare
                    .lock()/lock_bucket() call) inside a region marked
                    `// dpc-lint: lockfree-begin(<tag>)` ...
                    `// dpc-lint: lockfree-end(<tag>)`. Those regions are
                    the converted seqlock read paths; reintroducing a lock
                    there silently reverts the optimization and can invert
                    lock ordering relative to the locked fallback below the
                    region.
  tenant-id         a default-constructed NvmeFsCmd / IniDriver::Request
                    with no `.tenant` assignment in the following lines.
                    Every nvme-fs command carries the issuing tenant in
                    DW10[31:24]; a site that forgets the stamp silently
                    bills its I/O to tenant 0 and escapes QoS accounting.
                    Deliberately single-tenant sites stamp `.tenant = 0`
                    with a comment (or suppress).
  wal-commit-order  inside src/nvm/: a `publish_commit_word(` call with no
                    `persist_fence(` in the preceding lines. The WAL's
                    crash-consistency contract is data-before-commit — the
                    payload must be fenced durable on the NVM device
                    *before* the commit word that validates it is written,
                    or a power cut can leave a committed frame whose bytes
                    never landed. The scan cannot detect that case (the
                    commit CRC covers what was fenced-in-DRAM, not what
                    reached media), so the ordering is enforced lexically.

Suppression: append `// dpc-lint: ok(<rule>) <reason>` to the offending
line, or place it on the line directly above.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Files that are allowed to spell std::mutex / std guards: the wrapper layer
# itself and the detector underneath it.
WRAPPER_FILES = {
    "src/sim/thread_annotations.hpp",
    "src/sim/lockrank.hpp",
    "src/sim/lockrank.cpp",
}

SUPPRESS_RE = re.compile(r"//\s*dpc-lint:\s*ok\((?P<rules>[\w ,-]+)\)")

RAW_MUTEX_RE = re.compile(r"\bstd::(?:recursive_)?(?:shared_|timed_)?mutex\b")
RAW_GUARD_RE = re.compile(
    r"\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b")
DOORBELL_RE = re.compile(r"(?:->|\.)doorbell\(")
# A "publish" before the doorbell: any store into host/guest memory, a
# release-ordered atomic store, or an explicit fence.
PUBLISH_RE = re.compile(
    r"\.store\(|\.store<|host\.write\(|write_host\(|atomic_thread_fence")
DOORBELL_LOOKBACK = 15
SQE_WRITE_RE = re.compile(r"\bsqe(?:\.|->)\w+\s*(?:[|&+-]?=)[^=]")
HOT_LOOKUP_RE = re.compile(
    r"\b(?:histogram|counter|gauge)\(\s*\"[^\"]*\"\s*\)\s*\.\s*"
    r"(?:record|add|inc|set)\s*\(")
WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system_clock|high_resolution_clock)\b")
SIM_STEADY_RE = re.compile(r"\bstd::chrono::steady_clock\b")

# The files whose stored payloads carry CRCs, and the restamp idioms.
CHECKSUM_STORE_FILES = {
    "src/ssd/ssd.cpp",
    "src/kv/kv_store.cpp",
    "src/dfs/backend.cpp",
}
MEMCPY_CALL_RE = re.compile(r"\bmemcpy\(\s*(?P<dest>[^,]*)")
STORED_PAYLOAD_RE = re.compile(r"\.\s*data\s*\.\s*data\s*\(")
STAMP_RE = re.compile(r"\bstamp_\w+_crc\b|\.crc\s*=")
STAMP_WINDOW = 4

# Lock-free region markers and what counts as "taking a lock" inside one:
# the annotated sim:: guards, the std:: guards (already flagged elsewhere,
# but doubly wrong here), and bare .lock()/lock_bucket()-style calls.
LOCKFREE_BEGIN_RE = re.compile(r"//\s*dpc-lint:\s*lockfree-begin\((?P<tag>[\w-]+)\)")
LOCKFREE_END_RE = re.compile(r"//\s*dpc-lint:\s*lockfree-end\((?P<tag>[\w-]+)\)")
LOCK_ACQUIRE_RE = re.compile(
    r"\bsim::(?:LockGuard|UniqueLock|SharedLockGuard)\b"
    r"|\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b"
    r"|(?:\.|->)lock\s*\(|\block_bucket\s*\(|\block_entry\s*\(")

# Default-constructed command/request objects that carry a tenant id on the
# wire. The stamp must appear within the window (the spec.cpp decode helper
# fills every field and lands its tenant line 15 rows below the decl).
TENANT_DECL_RE = re.compile(
    r"\b(?:nvme::)?(?:NvmeFsCmd|IniDriver::Request)\s+(?P<var>\w+)\s*;")
TENANT_WINDOW = 16

# WAL write-ahead ordering: a commit-word publish must follow a persist
# fence of the payload it validates. The lookbehind skips the method's own
# definition (`…::publish_commit_word(`); declarations (`bool publish_…`)
# are skipped by the `bool` guard at the check site.
WAL_COMMIT_RE = re.compile(r"(?<!:)\bpublish_commit_word\s*\(")
WAL_COMMIT_DECL_RE = re.compile(r"\bbool\s+publish_commit_word\b")
WAL_FENCE_RE = re.compile(r"\bpersist_fence\s*\(")
WAL_COMMIT_LOOKBACK = 15

ALL_RULES = (
    "raw-mutex",
    "raw-guard",
    "doorbell-fence",
    "sqe-encode",
    "hot-path-lookup",
    "wall-clock",
    "checksum-stamp",
    "lockfree-mutex",
    "tenant-id",
    "wal-commit-order",
)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def suppressed(lines: list[str], idx: int, rule: str) -> bool:
    """True if line `idx` (0-based) carries or follows an ok(<rule>)."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = SUPPRESS_RE.search(lines[probe])
        if m and rule in [r.strip() for r in m.group("rules").split(",")]:
            return True
    return False


def strip_comment(line: str) -> str:
    """Drops // comments so commented-out code is not linted."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def lint_file(path: Path, findings: list[Finding]) -> None:
    rel = str(path.relative_to(REPO))
    lines = path.read_text(encoding="utf-8").splitlines()
    in_wrapper = rel in WRAPPER_FILES
    in_sim = rel.startswith("src/sim/")
    lockfree_tag: str | None = None
    lockfree_open_line = 0

    for i, raw in enumerate(lines):
        line = strip_comment(raw)
        n = i + 1

        # Region tracking reads the *raw* line: the markers are comments.
        begin = LOCKFREE_BEGIN_RE.search(raw)
        end = LOCKFREE_END_RE.search(raw)
        if begin:
            if lockfree_tag is not None:
                findings.append(Finding(
                    path, n, "lockfree-mutex",
                    f"lockfree-begin({begin.group('tag')}) while "
                    f"{lockfree_tag!r} (opened line {lockfree_open_line}) "
                    "is still open — regions must not nest"))
            lockfree_tag = begin.group("tag")
            lockfree_open_line = n
        elif end:
            if lockfree_tag != end.group("tag"):
                findings.append(Finding(
                    path, n, "lockfree-mutex",
                    f"lockfree-end({end.group('tag')}) does not match the "
                    f"open region {lockfree_tag!r}"))
            lockfree_tag = None
        elif (lockfree_tag is not None and LOCK_ACQUIRE_RE.search(line)
                and not suppressed(lines, i, "lockfree-mutex")):
            findings.append(Finding(
                path, n, "lockfree-mutex",
                f"lock acquisition inside lockfree region "
                f"({lockfree_tag!r}, opened line {lockfree_open_line}) — "
                "the seqlock read path must stay lock-free; move the "
                "locked fallback below lockfree-end"))

        if not in_wrapper:
            if RAW_MUTEX_RE.search(line) and not suppressed(lines, i,
                                                            "raw-mutex"):
                findings.append(Finding(
                    path, n, "raw-mutex",
                    "raw std::mutex — use sim::AnnotatedMutex / "
                    "sim::AnnotatedSharedMutex so the thread-safety "
                    "annotations and the lock-rank detector see it"))
            if RAW_GUARD_RE.search(line) and not suppressed(lines, i,
                                                            "raw-guard"):
                findings.append(Finding(
                    path, n, "raw-guard",
                    "std guard — use sim::LockGuard / sim::UniqueLock / "
                    "sim::SharedLockGuard (SCOPED_CAPABILITY-annotated)"))

        if (rel != "src/pcie/dma.cpp" and DOORBELL_RE.search(line)
                and not suppressed(lines, i, "doorbell-fence")):
            lo = max(0, i - DOORBELL_LOOKBACK)
            window = [strip_comment(l) for l in lines[lo:i]]
            if not any(PUBLISH_RE.search(w) for w in window):
                findings.append(Finding(
                    path, n, "doorbell-fence",
                    "doorbell with no preceding publish (store / "
                    "release-store / DMA write) in the prior "
                    f"{DOORBELL_LOOKBACK} lines — the device may see the "
                    "ring update before the descriptor"))

        if (rel != "src/nvme/spec.cpp" and SQE_WRITE_RE.search(line)
                and not suppressed(lines, i, "sqe-encode")):
            findings.append(Finding(
                path, n, "sqe-encode",
                "SQE field written outside nvme/spec.cpp encode_*/decode_* "
                "helpers — wire-format knowledge lives in one file"))

        if (rel != "src/kvfs/fsck.cpp" and HOT_LOOKUP_RE.search(line)
                and not suppressed(lines, i, "hot-path-lookup")):
            findings.append(Finding(
                path, n, "hot-path-lookup",
                "registry name-lookup fused with record/add — cache the "
                "instrument pointer at construction (lookup takes the "
                "registry lock and hashes the name per call)"))

        if WALL_CLOCK_RE.search(line) and not suppressed(lines, i,
                                                         "wall-clock"):
            findings.append(Finding(
                path, n, "wall-clock",
                "wall-clock read — modelled time is sim::Nanos; real "
                "clocks make runs non-reproducible"))
        if in_sim and SIM_STEADY_RE.search(line) and not suppressed(
                lines, i, "wall-clock"):
            findings.append(Finding(
                path, n, "wall-clock",
                "steady_clock inside the time model — src/sim/ must be "
                "clock-free"))

        tenant_decl = TENANT_DECL_RE.search(line)
        if tenant_decl and not suppressed(lines, i, "tenant-id"):
            var = tenant_decl.group("var")
            stamp = re.compile(r"\b" + re.escape(var) + r"\s*\.\s*tenant\s*=")
            hi = min(len(lines), i + TENANT_WINDOW + 1)
            window = [strip_comment(l) for l in lines[i:hi]]
            if not any(stamp.search(w) for w in window):
                findings.append(Finding(
                    path, n, "tenant-id",
                    f"'{var}' is encoded/dispatched without a .tenant stamp "
                    f"within {TENANT_WINDOW} lines — the command will bill "
                    "to tenant 0 and dodge QoS accounting; stamp the "
                    "issuing tenant (or an explicit `.tenant = 0` for a "
                    "deliberately single-tenant site)"))

        if (rel.startswith("src/nvm/") and WAL_COMMIT_RE.search(line)
                and not WAL_COMMIT_DECL_RE.search(line)
                and not suppressed(lines, i, "wal-commit-order")):
            lo = max(0, i - WAL_COMMIT_LOOKBACK)
            window = [strip_comment(l) for l in lines[lo:i]]
            if not any(WAL_FENCE_RE.search(w) for w in window):
                findings.append(Finding(
                    path, n, "wal-commit-order",
                    "commit word published with no persist_fence in the "
                    f"prior {WAL_COMMIT_LOOKBACK} lines — the WAL contract "
                    "is data-before-commit: fence the payload durable "
                    "before writing the commit word that validates it"))

        if rel in CHECKSUM_STORE_FILES:
            m = MEMCPY_CALL_RE.search(line)
            if (m and STORED_PAYLOAD_RE.search(m.group("dest"))
                    and not suppressed(lines, i, "checksum-stamp")):
                lo = max(0, i - STAMP_WINDOW)
                hi = min(len(lines), i + STAMP_WINDOW + 1)
                window = [strip_comment(l) for l in lines[lo:hi]]
                if not any(STAMP_RE.search(w) for w in window):
                    findings.append(Finding(
                        path, n, "checksum-stamp",
                        "payload memcpy into a checksummed store with no "
                        f"CRC restamp within {STAMP_WINDOW} lines — route "
                        "the mutation through the stamp_*_crc helper or "
                        "the write path that calls it"))

    if lockfree_tag is not None:
        findings.append(Finding(
            path, lockfree_open_line, "lockfree-mutex",
            f"lockfree-begin({lockfree_tag}) never closed by a matching "
            "lockfree-end"))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0

    roots = [Path(p).resolve() for p in args.paths] if args.paths else [SRC]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))
        else:
            print(f"dpc_lint: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for f in files:
        lint_file(f, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"dpc_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"dpc_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
