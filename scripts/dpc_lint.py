#!/usr/bin/env python3
"""dpc_lint — protocol linter for the DPC tree (AST engine + regex fallback).

Checks invariants that neither the compiler nor clang-tidy can see because
they are conventions of this codebase, not of C++:

  raw-mutex         std::mutex / std::shared_mutex declared outside the
                    annotated wrappers (sim/thread_annotations.hpp). Raw
                    mutexes bypass both the Clang thread-safety annotations
                    and the runtime lock-rank detector.
  raw-guard         std::lock_guard / std::unique_lock / std::shared_lock /
                    std::scoped_lock outside the wrapper header. The sim::
                    guards carry the SCOPED_CAPABILITY annotations; the std
                    ones are invisible to the analysis.
  doorbell-fence    a doorbell MMIO (`->doorbell(`) with no preceding
                    publish in the lookback window — a plain or release
                    store / DMA write of the descriptor the doorbell
                    advertises. Producer-side doorbells that follow this
                    protocol are readable at a glance; consumer-side ones
                    (CQ head updates) must say so with a suppression.
  sqe-encode        writes to SQE fields outside the encode_*/decode_*
                    helpers in nvme/spec.cpp. All wire-format knowledge
                    lives in one file.
  hot-path-lookup   registry name-lookups fused with a record/add call
                    (`registry.histogram("x").record(...)`): each lookup
                    takes the registry's shared lock and hashes the name.
                    Hot paths must cache the instrument pointer at
                    construction. Recovery-only paths may suppress.
  wall-clock        std::chrono::system_clock / high_resolution_clock
                    anywhere (the simulation is Date-free; modelled time is
                    sim::Nanos), and steady_clock inside src/sim/ itself —
                    the time model must not read real clocks.
  checksum-stamp    inside the checksummed stores (ssd/ssd.cpp,
                    kv/kv_store.cpp, dfs/backend.cpp): a memcpy whose
                    *destination* is a stored object's payload (`….data`)
                    with no CRC restamp (`stamp_*_crc` / `.crc =`) within a
                    few lines. Mutating stored bytes without restamping
                    makes the integrity envelope read the write back as
                    bit-rot — every payload mutation goes through the stamp
                    helper.
  lockfree-mutex    a mutex acquisition (sim:: or std:: guard, or a bare
                    .lock()/lock_bucket() call) inside a region marked
                    `// dpc-lint: lockfree-begin(<tag>)` ...
                    `// dpc-lint: lockfree-end(<tag>)`. Those regions are
                    the converted seqlock read paths; reintroducing a lock
                    there silently reverts the optimization and can invert
                    lock ordering relative to the locked fallback below the
                    region.
  tenant-id         a default-constructed NvmeFsCmd / IniDriver::Request
                    with no `.tenant` assignment in the following lines.
                    Every nvme-fs command carries the issuing tenant in
                    DW10[31:24]; a site that forgets the stamp silently
                    bills its I/O to tenant 0 and escapes QoS accounting.
                    Deliberately single-tenant sites stamp `.tenant = 0`
                    with a comment (or suppress).
  wal-commit-order  inside src/nvm/: a `publish_commit_word(` call with no
                    `persist_fence(` in the preceding lines. The WAL's
                    crash-consistency contract is data-before-commit — the
                    payload must be fenced durable on the NVM device
                    *before* the commit word that validates it is written,
                    or a power cut can leave a committed frame whose bytes
                    never landed. The scan cannot detect that case (the
                    commit CRC covers what was fenced-in-DRAM, not what
                    reached media), so the ordering is enforced lexically.

Protocol rules with an AST implementation (libclang over the CMake compile
database) and a weaker regex fallback when libclang is absent:

  lock-across-wait  a sim:: lock guard held across a modelled-time wait —
                    IniDriver::wait(), a DMA transfer/read_host/write_host
                    burst. Those calls spin or charge modelled nanoseconds;
                    holding a lock across them serializes unrelated
                    threads behind a device-speed operation and (under the
                    checker) turns a bounded scenario into a livelock.
  wall-clock-reachable
                    [AST only] a function in modelled-time code (signature
                    carries sim::Nanos) that transitively reaches a
                    wall-clock read. The per-line wall-clock rule sees the
                    read itself; this one catches laundering it through a
                    helper in the same translation unit.
  sqe-tenant-drop   an SQE builder (a function named encode_* taking a
                    *Cmd parameter) whose body never references the
                    command's tenant field — the wire slot DW10[31:24]
                    silently encodes tenant 0 and QoS attribution is lost.
  persist-pair      within one function in src/nvm/: more
                    publish_commit_word() calls than persist_fence() calls.
                    Complements wal-commit-order (which is window-local):
                    a function that publishes two commit words over one
                    fence has an unfenced payload no matter how the lines
                    are arranged.

Meta rule:

  stale-suppression a `// dpc-lint: ok(<rule>)` comment that suppressed
                    nothing in this run — the offending code was fixed or
                    moved, and the suppression now only misleads readers.
                    (Only reported for rules the active engine fully
                    checks, so a regex-only run never calls an AST-rule
                    suppression stale.)

Suppression: append `// dpc-lint: ok(<rule>) <reason>` to the offending
line, or place it on the line directly above.

Self-test: `--selftest` lints the committed negative fixtures under
tests/lint_fixtures/ and requires that exactly the `// expect: <rule>`
(and, when the AST engine is active, `// expect-ast: <rule>`) annotations
fire — the linter proves its own teeth the same way dpc_check's mutation
tier does.

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "lint_fixtures"

# Files that are allowed to spell std::mutex / std guards: the wrapper layer
# itself and the detector underneath it.
WRAPPER_FILES = {
    "src/sim/thread_annotations.hpp",
    "src/sim/lockrank.hpp",
    "src/sim/lockrank.cpp",
}

SUPPRESS_RE = re.compile(r"//\s*dpc-lint:\s*ok\((?P<rules>[\w ,-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect(?P<ast>-ast)?:\s*(?P<rules>[\w ,-]+)")

RAW_MUTEX_RE = re.compile(r"\bstd::(?:recursive_)?(?:shared_|timed_)?mutex\b")
RAW_GUARD_RE = re.compile(
    r"\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b")
DOORBELL_RE = re.compile(r"(?:->|\.)doorbell\(")
# A "publish" before the doorbell: any store into host/guest memory, a
# release-ordered atomic store, or an explicit fence.
PUBLISH_RE = re.compile(
    r"\.store\(|\.store<|host\.write\(|write_host\(|atomic_thread_fence")
DOORBELL_LOOKBACK = 15
SQE_WRITE_RE = re.compile(r"\bsqe(?:\.|->)\w+\s*(?:[|&+-]?=)[^=]")
HOT_LOOKUP_RE = re.compile(
    r"\b(?:histogram|counter|gauge)\(\s*\"[^\"]*\"\s*\)\s*\.\s*"
    r"(?:record|add|inc|set)\s*\(")
WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system_clock|high_resolution_clock)\b")
SIM_STEADY_RE = re.compile(r"\bstd::chrono::steady_clock\b")

# The files whose stored payloads carry CRCs, and the restamp idioms.
CHECKSUM_STORE_FILES = {
    "src/ssd/ssd.cpp",
    "src/kv/kv_store.cpp",
    "src/dfs/backend.cpp",
}
MEMCPY_CALL_RE = re.compile(r"\bmemcpy\(\s*(?P<dest>[^,]*)")
STORED_PAYLOAD_RE = re.compile(r"\.\s*data\s*\.\s*data\s*\(")
STAMP_RE = re.compile(r"\bstamp_\w+_crc\b|\.crc\s*=")
STAMP_WINDOW = 4

# Lock-free region markers and what counts as "taking a lock" inside one:
# the annotated sim:: guards, the std:: guards (already flagged elsewhere,
# but doubly wrong here), and bare .lock()/lock_bucket()-style calls.
LOCKFREE_BEGIN_RE = re.compile(r"//\s*dpc-lint:\s*lockfree-begin\((?P<tag>[\w-]+)\)")
LOCKFREE_END_RE = re.compile(r"//\s*dpc-lint:\s*lockfree-end\((?P<tag>[\w-]+)\)")
LOCK_ACQUIRE_RE = re.compile(
    r"\bsim::(?:LockGuard|UniqueLock|SharedLockGuard)\b"
    r"|\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b"
    r"|(?:\.|->)lock\s*\(|\block_bucket\s*\(|\block_entry\s*\(")

# Default-constructed command/request objects that carry a tenant id on the
# wire. The stamp must appear within the window (the spec.cpp decode helper
# fills every field and lands its tenant line 15 rows below the decl).
TENANT_DECL_RE = re.compile(
    r"\b(?:nvme::)?(?:NvmeFsCmd|IniDriver::Request)\s+(?P<var>\w+)\s*;")
TENANT_WINDOW = 16

# WAL write-ahead ordering: a commit-word publish must follow a persist
# fence of the payload it validates. The lookbehind skips the method's own
# definition (`…::publish_commit_word(`); declarations (`bool publish_…`)
# are skipped by the `bool` guard at the check site.
WAL_COMMIT_RE = re.compile(r"(?<!:)\bpublish_commit_word\s*\(")
WAL_COMMIT_DECL_RE = re.compile(r"\bbool\s+publish_commit_word\b")
WAL_FENCE_RE = re.compile(r"\bpersist_fence\s*\(")
WAL_COMMIT_LOOKBACK = 15

# lock-across-wait (regex fallback): a sim:: guard declaration, then — while
# its scope is still open — a modelled-time wait: IniDriver::wait() or a DMA
# burst. Scope tracking is brace-depth from the declaration line; good
# enough for the straight-line guard blocks this tree writes.
GUARD_DECL_RE = re.compile(r"\bsim::(?:LockGuard|UniqueLock|SharedLockGuard)\b")
WAIT_CALL_RE = re.compile(
    r"(?:\.|->)\s*wait\s*\(|(?:\.|->)\s*(?:read_host|write_host|transfer)\s*\(")
LOCK_WAIT_WINDOW = 24

# persist-pair (regex fallback): per function (reset at each column-0 `}`),
# commit-word publishes must not outnumber persist fences. Calls only: the
# member-call syntax excludes definitions and declarations.
PERSIST_CALL_RE = re.compile(r"(?:\.|->)\s*persist_fence\s*\(")

# sqe-tenant-drop (regex fallback): an encode_* definition taking a *Cmd
# parameter whose body never mentions `tenant`.
ENCODE_DEF_RE = re.compile(r"\b(?P<name>encode_\w+)\s*\((?P<args>[^)]*)\)")
TENANT_REF_RE = re.compile(r"\btenant\b")

# fixed-deadline: the health-scored backends (src/dfs/, src/kv/) derive
# their waits from HealthBoard::deadline() — the scaled observed p99 — not
# from the fixed calib timeout constants, which can neither track a slow
# regime nor cut a gray-failing one short. The no-board fallback keeps the
# constant under an explicit `// dpc-lint: ok(fixed-deadline)`.
FIXED_DEADLINE_RE = re.compile(r"\bk(?:KvOp|NvmeCommand)Timeout\b")

ALL_RULES = (
    "raw-mutex",
    "raw-guard",
    "doorbell-fence",
    "sqe-encode",
    "hot-path-lookup",
    "wall-clock",
    "checksum-stamp",
    "lockfree-mutex",
    "tenant-id",
    "wal-commit-order",
    "lock-across-wait",
    "wall-clock-reachable",
    "sqe-tenant-drop",
    "persist-pair",
    "stale-suppression",
    "fixed-deadline",
)

# Rules the regex engine checks completely enough to judge a suppression
# stale. wall-clock-reachable is AST-only: its suppressions are only
# auditable when libclang is driving.
REGEX_COMPLETE_RULES = frozenset(ALL_RULES) - {"wall-clock-reachable"}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self) -> tuple[str, int, str]:
        return (str(self.path), self.line, self.rule)

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def in_fixtures(rel: str) -> bool:
    return rel.startswith("tests/lint_fixtures/")


def strip_comment(line: str) -> str:
    """Drops // comments so commented-out code is not linted."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


class FileCtx:
    """Per-file lint state: the lines, plus which suppressions earned their
    keep (for the stale-suppression rule)."""

    def __init__(self, path: Path, lines: list[str]):
        self.path = path
        self.lines = lines
        self.used: set[tuple[int, str]] = set()  # (0-based comment line, rule)

    def suppressed(self, idx: int, rule: str) -> bool:
        """True if line `idx` (0-based) carries or follows an ok(<rule>)."""
        for probe in (idx, idx - 1):
            if probe < 0:
                continue
            m = SUPPRESS_RE.search(self.lines[probe])
            if m and rule in [r.strip() for r in m.group("rules").split(",")]:
                self.used.add((probe, rule))
                return True
        return False


def lint_file(path: Path, findings: list[Finding],
              stale_rules: frozenset[str]) -> None:
    rel = str(path.relative_to(REPO))
    lines = path.read_text(encoding="utf-8").splitlines()
    ctx = FileCtx(path, lines)
    in_wrapper = rel in WRAPPER_FILES
    in_sim = rel.startswith("src/sim/")
    nvm_scope = rel.startswith("src/nvm/") or in_fixtures(rel)
    deadline_scope = (rel.startswith("src/dfs/") or rel.startswith("src/kv/")
                      or in_fixtures(rel))
    lockfree_tag: str | None = None
    lockfree_open_line = 0
    # persist-pair accumulators, reset at each column-0 closing brace.
    pp_publishes: list[int] = []  # 1-based lines of commit-word publishes
    pp_fences = 0

    def flush_persist_pair() -> None:
        nonlocal pp_publishes, pp_fences
        if (pp_publishes and len(pp_publishes) > pp_fences
                and not ctx.suppressed(pp_publishes[0] - 1, "persist-pair")):
            findings.append(Finding(
                path, pp_publishes[0], "persist-pair",
                f"{len(pp_publishes)} commit-word publish(es) over "
                f"{pp_fences} persist_fence call(s) in this function — "
                "each published commit word needs its payload fenced "
                "durable first; pair every publish with a fence"))
        pp_publishes = []
        pp_fences = 0

    for i, raw in enumerate(lines):
        line = strip_comment(raw)
        n = i + 1

        # Region tracking reads the *raw* line: the markers are comments.
        begin = LOCKFREE_BEGIN_RE.search(raw)
        end = LOCKFREE_END_RE.search(raw)
        if begin:
            if lockfree_tag is not None:
                findings.append(Finding(
                    path, n, "lockfree-mutex",
                    f"lockfree-begin({begin.group('tag')}) while "
                    f"{lockfree_tag!r} (opened line {lockfree_open_line}) "
                    "is still open — regions must not nest"))
            lockfree_tag = begin.group("tag")
            lockfree_open_line = n
        elif end:
            if lockfree_tag != end.group("tag"):
                findings.append(Finding(
                    path, n, "lockfree-mutex",
                    f"lockfree-end({end.group('tag')}) does not match the "
                    f"open region {lockfree_tag!r}"))
            lockfree_tag = None
        elif (lockfree_tag is not None and LOCK_ACQUIRE_RE.search(line)
                and not ctx.suppressed(i, "lockfree-mutex")):
            findings.append(Finding(
                path, n, "lockfree-mutex",
                f"lock acquisition inside lockfree region "
                f"({lockfree_tag!r}, opened line {lockfree_open_line}) — "
                "the seqlock read path must stay lock-free; move the "
                "locked fallback below lockfree-end"))

        if not in_wrapper:
            if RAW_MUTEX_RE.search(line) and not ctx.suppressed(i,
                                                                "raw-mutex"):
                findings.append(Finding(
                    path, n, "raw-mutex",
                    "raw std::mutex — use sim::AnnotatedMutex / "
                    "sim::AnnotatedSharedMutex so the thread-safety "
                    "annotations and the lock-rank detector see it"))
            if RAW_GUARD_RE.search(line) and not ctx.suppressed(i,
                                                                "raw-guard"):
                findings.append(Finding(
                    path, n, "raw-guard",
                    "std guard — use sim::LockGuard / sim::UniqueLock / "
                    "sim::SharedLockGuard (SCOPED_CAPABILITY-annotated)"))

        if (rel != "src/pcie/dma.cpp" and DOORBELL_RE.search(line)
                and not ctx.suppressed(i, "doorbell-fence")):
            lo = max(0, i - DOORBELL_LOOKBACK)
            window = [strip_comment(l) for l in lines[lo:i]]
            if not any(PUBLISH_RE.search(w) for w in window):
                findings.append(Finding(
                    path, n, "doorbell-fence",
                    "doorbell with no preceding publish (store / "
                    "release-store / DMA write) in the prior "
                    f"{DOORBELL_LOOKBACK} lines — the device may see the "
                    "ring update before the descriptor"))

        if (rel != "src/nvme/spec.cpp" and SQE_WRITE_RE.search(line)
                and not ctx.suppressed(i, "sqe-encode")):
            findings.append(Finding(
                path, n, "sqe-encode",
                "SQE field written outside nvme/spec.cpp encode_*/decode_* "
                "helpers — wire-format knowledge lives in one file"))

        if (rel != "src/kvfs/fsck.cpp" and HOT_LOOKUP_RE.search(line)
                and not ctx.suppressed(i, "hot-path-lookup")):
            findings.append(Finding(
                path, n, "hot-path-lookup",
                "registry name-lookup fused with record/add — cache the "
                "instrument pointer at construction (lookup takes the "
                "registry lock and hashes the name per call)"))

        if WALL_CLOCK_RE.search(line) and not ctx.suppressed(i, "wall-clock"):
            findings.append(Finding(
                path, n, "wall-clock",
                "wall-clock read — modelled time is sim::Nanos; real "
                "clocks make runs non-reproducible"))
        if in_sim and SIM_STEADY_RE.search(line) and not ctx.suppressed(
                i, "wall-clock"):
            findings.append(Finding(
                path, n, "wall-clock",
                "steady_clock inside the time model — src/sim/ must be "
                "clock-free"))

        if (deadline_scope and FIXED_DEADLINE_RE.search(line)
                and not ctx.suppressed(i, "fixed-deadline")):
            findings.append(Finding(
                path, n, "fixed-deadline",
                "fixed timeout constant on a health-scored backend path — "
                "cut retries at HealthBoard::deadline() (scaled observed "
                "p99) so the wait tracks the peer's actual regime; keep "
                "the calib constant only as the no-board fallback under an "
                "explicit ok(fixed-deadline)"))

        tenant_decl = TENANT_DECL_RE.search(line)
        if tenant_decl and not ctx.suppressed(i, "tenant-id"):
            var = tenant_decl.group("var")
            stamp = re.compile(r"\b" + re.escape(var) + r"\s*\.\s*tenant\s*=")
            hi = min(len(lines), i + TENANT_WINDOW + 1)
            window = [strip_comment(l) for l in lines[i:hi]]
            if not any(stamp.search(w) for w in window):
                findings.append(Finding(
                    path, n, "tenant-id",
                    f"'{var}' is encoded/dispatched without a .tenant stamp "
                    f"within {TENANT_WINDOW} lines — the command will bill "
                    "to tenant 0 and dodge QoS accounting; stamp the "
                    "issuing tenant (or an explicit `.tenant = 0` for a "
                    "deliberately single-tenant site)"))

        if (nvm_scope and WAL_COMMIT_RE.search(line)
                and not WAL_COMMIT_DECL_RE.search(line)):
            if not ctx.suppressed(i, "wal-commit-order"):
                lo = max(0, i - WAL_COMMIT_LOOKBACK)
                window = [strip_comment(l) for l in lines[lo:i]]
                if not any(WAL_FENCE_RE.search(w) for w in window):
                    findings.append(Finding(
                        path, n, "wal-commit-order",
                        "commit word published with no persist_fence in the "
                        f"prior {WAL_COMMIT_LOOKBACK} lines — the WAL "
                        "contract is data-before-commit: fence the payload "
                        "durable before writing the commit word that "
                        "validates it"))
            pp_publishes.append(n)
        if nvm_scope and PERSIST_CALL_RE.search(line):
            pp_fences += 1
        if nvm_scope and raw.startswith("}"):
            flush_persist_pair()

        if rel in CHECKSUM_STORE_FILES:
            m = MEMCPY_CALL_RE.search(line)
            if (m and STORED_PAYLOAD_RE.search(m.group("dest"))
                    and not ctx.suppressed(i, "checksum-stamp")):
                lo = max(0, i - STAMP_WINDOW)
                hi = min(len(lines), i + STAMP_WINDOW + 1)
                window = [strip_comment(l) for l in lines[lo:hi]]
                if not any(STAMP_RE.search(w) for w in window):
                    findings.append(Finding(
                        path, n, "checksum-stamp",
                        "payload memcpy into a checksummed store with no "
                        f"CRC restamp within {STAMP_WINDOW} lines — route "
                        "the mutation through the stamp_*_crc helper or "
                        "the write path that calls it"))

        # lock-across-wait fallback: from a sim:: guard declaration, scan
        # forward while its scope is open for a modelled-time wait.
        if (not in_wrapper and GUARD_DECL_RE.search(line)
                and not line.lstrip().startswith("class")):
            depth = line.count("{") - line.count("}")
            hi = min(len(lines), i + 1 + LOCK_WAIT_WINDOW)
            for j in range(i + 1, hi):
                body = strip_comment(lines[j])
                depth += body.count("{") - body.count("}")
                if depth < 0:
                    break  # the guard's scope closed
                if (WAIT_CALL_RE.search(body)
                        and not ctx.suppressed(j, "lock-across-wait")):
                    findings.append(Finding(
                        path, j + 1, "lock-across-wait",
                        "modelled-time wait (IniDriver::wait / DMA burst) "
                        f"with the lock from line {n} still held — the "
                        "wait spins or charges device-speed nanoseconds; "
                        "drop the guard (scope it) before waiting"))
                    break

        # sqe-tenant-drop fallback: an encode_* definition with a *Cmd
        # parameter must reference the tenant field somewhere in its body.
        enc = ENCODE_DEF_RE.search(line)
        if (enc and "Cmd" in enc.group("args")
                and not line.rstrip().endswith(";")
                and not ctx.suppressed(i, "sqe-tenant-drop")):
            depth = 0
            opened = False
            stamped = False
            for j in range(i, min(len(lines), i + 120)):
                body = strip_comment(lines[j])
                if opened and TENANT_REF_RE.search(body):
                    stamped = True
                    break
                depth += body.count("{") - body.count("}")
                if body.count("{"):
                    opened = True
                if opened and depth <= 0:
                    break
            if opened and not stamped:
                findings.append(Finding(
                    path, n, "sqe-tenant-drop",
                    f"SQE builder {enc.group('name')}() never references "
                    "the command's tenant field — DW10[31:24] encodes "
                    "tenant 0 and the I/O dodges QoS attribution"))

    if lockfree_tag is not None:
        findings.append(Finding(
            path, lockfree_open_line, "lockfree-mutex",
            f"lockfree-begin({lockfree_tag}) never closed by a matching "
            "lockfree-end"))
    if nvm_scope:
        flush_persist_pair()

    # stale-suppression: every ok(<rule>) must have earned its keep above.
    for i, raw in enumerate(lines):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        for rule in [r.strip() for r in m.group("rules").split(",")]:
            if rule not in ALL_RULES:
                if not ctx.suppressed(i, "stale-suppression"):
                    findings.append(Finding(
                        path, i + 1, "stale-suppression",
                        f"suppression names unknown rule '{rule}' — "
                        "typo, or the rule was removed"))
                continue
            if rule not in stale_rules:
                continue  # the active engine cannot judge this one
            if (i, rule) not in ctx.used and not ctx.suppressed(
                    i, "stale-suppression"):
                findings.append(Finding(
                    path, i + 1, "stale-suppression",
                    f"ok({rule}) suppressed nothing in this run — the "
                    "offending code was fixed or moved; delete the "
                    "suppression"))


# ---------------------------------------------------------------------------
# AST engine (libclang over the CMake compile database)

WAIT_FN_NAMES = frozenset({"wait", "transfer", "read_host", "write_host"})
WALL_CLOCK_NAMES = ("system_clock", "high_resolution_clock")


class AstEngine:
    """Deeper implementations of the protocol rules, driven by libclang
    cursors over the translation units in compile_commands.json. Every
    traversal is defensive: a parse failure degrades that file to the regex
    fallback instead of failing the lint run."""

    def __init__(self, compile_db_dir: Path):
        from clang import cindex  # raises ImportError when absent
        self.cindex = cindex
        self.db = cindex.CompilationDatabase.fromDirectory(str(compile_db_dir))
        self.index = cindex.Index.create()
        self.warned: set[str] = set()

    def _args_for(self, path: Path) -> list[str] | None:
        cmds = self.db.getCompileCommands(str(path))
        if not cmds:
            return None
        args = list(cmds[0].arguments)[1:]  # drop the compiler itself
        # Strip output/input operands; keep flags and -I/-D/-std.
        out: list[str] = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == str(path) or a.endswith(path.name):
                continue
            out.append(a)
        return out

    def lint(self, path: Path, findings: list[Finding],
             ctx: "FileCtx") -> bool:
        """Lints one TU. Returns False when the file is not in the compile
        db or failed to parse (caller falls back silently — headers and
        uncompiled files are expected misses)."""
        try:
            args = self._args_for(path)
            if args is None:
                return False
            tu = self.index.parse(str(path), args=args)
            if tu is None:
                return False
            self._lint_tu(tu, path, findings, ctx)
            return True
        except Exception as e:  # noqa: BLE001 — degrade, never crash the lint
            key = type(e).__name__
            if key not in self.warned:
                self.warned.add(key)
                print(f"dpc_lint: AST engine degraded on {path.name}: {e}",
                      file=sys.stderr)
            return False

    # -- rule bodies --------------------------------------------------------

    def _functions(self, tu, path: Path):
        ck = self.cindex.CursorKind
        fn_kinds = (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                    ck.FUNCTION_TEMPLATE)

        def walk(cur):
            for c in cur.get_children():
                loc = c.location
                if loc.file is not None and str(loc.file) != str(path):
                    continue
                if c.kind in fn_kinds and c.is_definition():
                    yield c
                else:
                    yield from walk(c)

        yield from walk(tu.cursor)

    def _lint_tu(self, tu, path: Path, findings: list[Finding],
                 ctx: "FileCtx") -> None:
        ck = self.cindex.CursorKind
        graph: dict[str, set[str]] = {}
        wall_readers: set[str] = set()
        modelled: dict[str, tuple[str, int]] = {}  # usr -> (name, line)

        for fn in self._functions(tu, path):
            usr = fn.get_usr() or fn.spelling
            sig = " ".join(t.spelling for t in
                           [fn.result_type] + [a.type for a in
                                               fn.get_arguments()])
            if "Nanos" in sig:
                modelled[usr] = (fn.spelling, fn.location.line)
            guards: list[int] = []
            publishes: list[int] = []
            fences = 0
            tenant_seen = False
            callees: set[str] = set()
            for c in fn.walk_preorder():
                if c.kind == ck.VAR_DECL and any(
                        g in c.type.spelling for g in
                        ("LockGuard", "UniqueLock", "SharedLockGuard")):
                    guards.append(c.location.line)
                elif c.kind == ck.CALL_EXPR:
                    name = c.spelling or ""
                    ref = c.referenced
                    callees.add((ref.get_usr() if ref is not None else "")
                                or name)
                    if name in WAIT_FN_NAMES and guards and \
                            c.location.line > guards[0]:
                        if not ctx.suppressed(c.location.line - 1,
                                              "lock-across-wait"):
                            findings.append(Finding(
                                path, c.location.line, "lock-across-wait",
                                "modelled-time wait with the lock from "
                                f"line {guards[0]} still held — drop the "
                                "guard before waiting"))
                    if name == "publish_commit_word":
                        publishes.append(c.location.line)
                    elif name == "persist_fence":
                        fences += 1
                elif c.kind in (ck.MEMBER_REF_EXPR, ck.MEMBER_REF,
                                ck.DECL_REF_EXPR):
                    if "tenant" in (c.spelling or ""):
                        tenant_seen = True
                    if any(w in (c.spelling or "") for w in WALL_CLOCK_NAMES):
                        wall_readers.add(usr)
                elif c.kind in (ck.TYPE_REF, ck.TEMPLATE_REF):
                    if any(w in (c.spelling or "") for w in WALL_CLOCK_NAMES):
                        wall_readers.add(usr)
            graph[usr] = callees
            if publishes and len(publishes) > fences and not ctx.suppressed(
                    publishes[0] - 1, "persist-pair"):
                findings.append(Finding(
                    path, publishes[0], "persist-pair",
                    f"{len(publishes)} commit-word publish(es) over "
                    f"{fences} persist_fence call(s) in "
                    f"{fn.spelling}() — pair every publish with a fence"))
            if (fn.spelling.startswith("encode_") and not tenant_seen
                    and any("Cmd" in a.type.spelling
                            for a in fn.get_arguments())
                    and not ctx.suppressed(fn.location.line - 1,
                                           "sqe-tenant-drop")):
                findings.append(Finding(
                    path, fn.location.line, "sqe-tenant-drop",
                    f"SQE builder {fn.spelling}() never references the "
                    "command's tenant field — DW10[31:24] encodes tenant 0"))

        # wall-clock-reachable: modelled-time functions that reach a
        # wall-clock reader transitively within this TU.
        reaches: set[str] = set(wall_readers)
        changed = True
        while changed:
            changed = False
            for usr, callees in graph.items():
                if usr not in reaches and callees & reaches:
                    reaches.add(usr)
                    changed = True
        for usr, (name, line) in modelled.items():
            if usr in reaches and not ctx.suppressed(line - 1,
                                                     "wall-clock-reachable"):
                findings.append(Finding(
                    path, line, "wall-clock-reachable",
                    f"{name}() is modelled-time (sim::Nanos in its "
                    "signature) but transitively reaches a wall-clock "
                    "read — modelled time must not depend on real clocks"))


def make_ast_engine(mode: str, db_dir: str) -> tuple[AstEngine | None, str]:
    """Returns (engine, note). engine is None when unavailable; note says
    why (empty when the engine loaded)."""
    if mode == "off":
        return None, ""
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return None, "python libclang bindings (clang.cindex) not importable"
    try:
        return AstEngine(Path(db_dir)), ""
    except Exception as e:  # noqa: BLE001
        return None, f"compile db unusable at {db_dir}: {e}"


# ---------------------------------------------------------------------------
# Driver

def collect_files(roots: list[Path]) -> list[Path] | None:
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))
        else:
            print(f"dpc_lint: no such path: {root}", file=sys.stderr)
            return None
    return files


def lint_paths(files: list[Path], ast: AstEngine | None) -> list[Finding]:
    stale_rules = (frozenset(ALL_RULES) if ast is not None
                   else REGEX_COMPLETE_RULES)
    findings: list[Finding] = []
    for f in files:
        lint_file(f, findings, stale_rules)
        if ast is not None and f.suffix == ".cpp":
            ctx = FileCtx(f, f.read_text(encoding="utf-8").splitlines())
            ast.lint(f, findings, ctx)
    # The AST rules overlap their regex fallbacks on purpose; report each
    # (file, line, rule) once.
    seen: set[tuple[str, int, str]] = set()
    out: list[Finding] = []
    for fi in sorted(findings, key=lambda x: x.key()):
        if fi.key() not in seen:
            seen.add(fi.key())
            out.append(fi)
    return out


def run_selftest(ast: AstEngine | None) -> int:
    """Lints the committed negative fixtures and requires exactly the
    annotated findings: every `// expect: <rule>` line must fire, nothing
    unannotated may. `// expect-ast:` lines only count when the AST engine
    is active."""
    if not FIXTURES.is_dir():
        print(f"dpc_lint: selftest: no fixtures at {FIXTURES}",
              file=sys.stderr)
        return 2
    files = sorted(FIXTURES.glob("*.cpp")) + sorted(FIXTURES.glob("*.hpp"))
    if not files:
        print("dpc_lint: selftest: fixtures directory is empty",
              file=sys.stderr)
        return 2

    expected: set[tuple[str, int, str]] = set()
    for f in files:
        for i, raw in enumerate(f.read_text(encoding="utf-8").splitlines()):
            m = EXPECT_RE.search(raw)
            if not m:
                continue
            if m.group("ast") and ast is None:
                continue  # AST-only expectation, regex engine running
            for rule in [r.strip() for r in m.group("rules").split(",")]:
                expected.add((str(f), i + 1, rule))

    actual = {fi.key(): fi for fi in lint_paths(files, ast)}
    missing = sorted(expected - set(actual))
    unexpected = sorted(set(actual) - expected)

    ok = True
    for path, line, rule in missing:
        rel = Path(path).relative_to(REPO)
        print(f"dpc_lint: selftest: {rel}:{line}: [{rule}] expected but "
              "did NOT fire — the rule lost its teeth", file=sys.stderr)
        ok = False
    for key in unexpected:
        print(f"dpc_lint: selftest: unexpected finding: {actual[key]}",
              file=sys.stderr)
        ok = False
    engine = "ast+regex" if ast is not None else "regex"
    if ok:
        print(f"dpc_lint: selftest ok ({engine}: {len(expected)} expected "
              f"finding(s) across {len(files)} fixture(s) all fired)")
        return 0
    print(f"dpc_lint: selftest FAILED ({engine})", file=sys.stderr)
    return 1


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--ast", choices=("auto", "on", "off"), default="auto",
                    help="AST engine: auto = use libclang when importable, "
                         "on = require it, off = regex only")
    ap.add_argument("--compile-db", default=str(REPO / "build"),
                    help="directory holding compile_commands.json "
                         "(default: build/)")
    ap.add_argument("--selftest", action="store_true",
                    help="lint tests/lint_fixtures/ and require exactly "
                         "the annotated findings")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0

    ast, note = make_ast_engine(args.ast, args.compile_db)
    if ast is None and args.ast == "on":
        print(f"dpc_lint: --ast on but the AST engine is unavailable: "
              f"{note}", file=sys.stderr)
        return 2
    if ast is None and args.ast == "auto" and note:
        print(f"dpc_lint: note: {note} — regex fallback only")

    if args.selftest:
        return run_selftest(ast)

    roots = [Path(p).resolve() for p in args.paths] if args.paths else [SRC]
    files = collect_files(roots)
    if files is None:
        return 2

    findings = lint_paths(files, ast)
    for f in findings:
        print(f)
    if findings:
        print(f"dpc_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    engine = "ast+regex" if ast is not None else "regex"
    print(f"dpc_lint: clean ({len(files)} files, {engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
