#!/usr/bin/env bash
# CI entry point.
#
# Stages, in order:
#   lint   — scripts/dpc_lint.py twice: a regex-tier smoke pass before the
#            build, then the authoritative AST pass (libclang over the
#            exported compile_commands.json) plus clang-tidy and the
#            clang-format check after it. Missing clang tooling FAILS the
#            run unless DPC_CI_ALLOW_MISSING_CLANG=1 explicitly accepts the
#            reduced regex-only pipeline.
#   plain  — RelWithDebInfo build + full test suite (lock-rank detector
#            compiled out; NDEBUG).
#   check  — deterministic model checker (src/check/dpc_check): the
#            exhaustive tier fully enumerates the small bounded scenarios,
#            and the mutation sweep arms each DPC_CHECK_MUTATE fence drop
#            and requires the checker to catch it with a replayable
#            schedule. The tsan leg adds an 8-seed PCT sweep.
#   regress— bench/regress: pinned micro-benches + figure-bench transport
#            counters gated against bench/baselines/. Runs looser than the
#            10% default because CI shares a single-core VM (see
#            EXPERIMENTS.md "Refreshing perf baselines").
#   tsan   — ThreadSanitizer build + full test suite. DPC_LOCKRANK defaults
#            on under TSan, so this leg also runs the runtime lock-order
#            detector across every test.
#   ubsan  — UndefinedBehaviorSanitizer build + full test suite.
#   chaos  — fault-injection tests swept over several seeds (plain + tsan).
#   crash  — crash-point chaos over a wider seed set (plain + tsan), plus
#            the crash-restart recovery bench (BENCH_crash_recovery.json).
#   scrub  — data-corruption sweep: the integrity-envelope chaos tests and
#            scrubber tests over several seeds (plain + tsan), plus the
#            corruption-recovery bench (BENCH_scrub_recovery.json with its
#            detected == repaired + unrecoverable invariant).
#   qos    — overload robustness: the per-tenant QoS tests (plain + tsan)
#            and the antagonist bench (BENCH_qos.json), which asserts the
#            isolation SLO internally: victim p99 ≤ 2× solo with isolation
#            on, ≥ 5× degradation with it off.
#   nvm    — NVM write-ahead durability tier: the WAL unit + system tests
#            (plain + tsan; the CrashChaosWal sweeps already ride the crash
#            stage) and the nvmlog bench (BENCH_nvmlog.json), which asserts
#            fsync p99(WAL off) ≥ 5× p99(WAL on) and graceful ring-full
#            degradation internally.
#   tail   — gray-failure tolerance tier: the fail-slow / health-scoreboard
#            / hedged-read tests swept over several seeds (plain + tsan) and
#            the tail_tolerance bench (BENCH_tail.json), which asserts the
#            tail SLO internally: limping-peer p99 ≤ 2× healthy with the
#            scoreboard on, ≥ 10× with it off.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
CHAOS_SEEDS=(1 7 1337)
CRASH_SEEDS=(1 2 3 5 7 11 13 1337)
SCRUB_SEEDS=(1 7 42 1337 90210)
TAIL_SEEDS=(1 7 1337)

# Fail fast when the clang toolchain is missing. Silently skipping the AST
# lint + tidy/format gates turns them into checks that only ever ran on the
# machines that happened to have clang — set DPC_CI_ALLOW_MISSING_CLANG=1 to
# opt a known-minimal container into the reduced (regex-lint-only) pipeline.
CLANG_MISSING=()
command -v clang-tidy >/dev/null 2>&1 || CLANG_MISSING+=(clang-tidy)
command -v clang-format >/dev/null 2>&1 || CLANG_MISSING+=(clang-format)
python3 -c 'import clang.cindex' >/dev/null 2>&1 \
  || CLANG_MISSING+=(python3-libclang)
if ((${#CLANG_MISSING[@]})); then
  if [[ "${DPC_CI_ALLOW_MISSING_CLANG:-0}" != 1 ]]; then
    echo "ci: missing clang tooling: ${CLANG_MISSING[*]}" >&2
    echo "ci: install clang-tidy, clang-format and the python3 libclang" >&2
    echo "ci: bindings, or set DPC_CI_ALLOW_MISSING_CLANG=1 to accept the" >&2
    echo "ci: reduced pipeline (regex dpc_lint; no tidy/format/AST lint)." >&2
    exit 2
  fi
  AST_MODE=auto   # reduced pipeline, explicitly opted into above
else
  AST_MODE=on     # clang present: the AST lint engine is required, not luck
fi

echo "=== lint stage (regex tier) ==="
# Pre-build smoke pass: the regex tier needs no compile db, so style/protocol
# slips fail before the ~full-build wait. The authoritative AST pass runs
# right after the plain configure exports compile_commands.json.
python3 scripts/dpc_lint.py --ast off --selftest
python3 scripts/dpc_lint.py --ast off

echo "=== plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== lint stage (AST tier) ==="
# Full compile-db pass: every rule, including the AST-only ones
# (wall-clock-reachable), over exactly what the build compiled. The fixture
# selftest re-runs too so the expect-ast annotations are exercised.
python3 scripts/dpc_lint.py --ast "$AST_MODE" --compile-db build --selftest
python3 scripts/dpc_lint.py --ast "$AST_MODE" --compile-db build

# clang-tidy wants compile_commands.json, which the plain configure exports.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "--- clang-tidy ---"
  mapfile -t TIDY_SRCS < <(find src -name '*.cpp' | sort)
  clang-tidy -p build --quiet "${TIDY_SRCS[@]}"
else
  echo "--- clang-tidy not installed; skipping (config: .clang-tidy) ---"
fi
if command -v clang-format >/dev/null 2>&1; then
  echo "--- clang-format check (src/sim + lint-era files) ---"
  clang-format --dry-run --Werror \
    src/sim/thread_annotations.hpp src/sim/lockrank.hpp \
    src/sim/lockrank.cpp tests/test_lockrank.cpp
else
  echo "--- clang-format not installed; skipping (config: .clang-format) ---"
fi

echo "=== check stage ==="
# Deterministic model checker (src/check). The exhaustive tier fully
# enumerates the small bounded scenarios on every build; the mutation sweep
# proves each scenario still CATCHES its paired protocol mutation — a
# passing checker that couldn't flag a broken fence would be worthless.
echo "--- dpc_check exhaustive tier ---"
./build/src/check/dpc_check --tier exhaustive
echo "--- dpc_check mutation sweep ---"
./build/src/check/dpc_check --mutate all

echo "=== regress stage ==="
# The CI box is a shared single-core VM with a wall-clock noise floor of
# roughly 25% even on best-of-repetitions, so the micro suites gate at 35%
# here instead of bench/regress's 10% default (which is meant for dedicated
# hardware). A deliberate 2x slowdown lands at +100% and still fails; the
# figure-suite counters are deterministic and unaffected by the threshold.
./bench/regress --threshold 0.35 --retries 2

echo "=== tsan build ==="
cmake -B build-tsan -S . -DDPC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
echo "--- dpc_check PCT sweep (tsan) ---"
# The randomized-priority tier under TSan: eight seeds per PCT scenario, so
# the big-bound scenarios get fresh schedules on every CI run with the data
# race detector watching the same interleavings the checker drives.
./build-tsan/src/check/dpc_check --tier pct --seeds 8

echo "=== ubsan build ==="
cmake -B build-ubsan -S . -DDPC_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$JOBS"
ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"

echo "=== chaos stage ==="
for seed in "${CHAOS_SEEDS[@]}"; do
  echo "--- chaos seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'Chaos|Fault'
  echo "--- chaos seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'Chaos|Fault'
done

echo "=== crash stage ==="
for seed in "${CRASH_SEEDS[@]}"; do
  echo "--- crash seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'CrashChaos'
  echo "--- crash seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'CrashChaos'
done
echo "--- crash-restart recovery bench ---"
(cd build && ./bench/chaos_recovery --csv >/dev/null)
test -f build/BENCH_crash_recovery.json

echo "=== scrub stage ==="
for seed in "${SCRUB_SEEDS[@]}"; do
  echo "--- scrub seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'Scrub|SilentCorruption'
  echo "--- scrub seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'Scrub|SilentCorruption'
done
test -f build/BENCH_scrub_recovery.json  # emitted by chaos_recovery above

echo "=== qos stage ==="
echo "--- qos tests (plain) ---"
ctest --test-dir build --output-on-failure -j "$JOBS" -R 'Qos'
echo "--- qos tests (tsan) ---"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R 'Qos'
echo "--- qos antagonist bench ---"
# The bench DPC_CHECKs its own isolation SLO (victim p99 ≤ 2× solo with
# QoS on, ≥ 5× degradation with it off) and aborts non-zero on violation.
(cd build && ./bench/qos_antagonist --csv >/dev/null)
test -f build/BENCH_qos.json

echo "=== nvm stage ==="
echo "--- nvm wal tests (plain) ---"
ctest --test-dir build --output-on-failure -j "$JOBS" -R 'NvmWal'
echo "--- nvm wal tests (tsan) ---"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R 'NvmWal'
echo "--- nvm log bench ---"
# The bench DPC_CHECKs its own durability SLO (fsync p99 ≥ 5× faster with
# the log on, ring-full pressure degrades without dropping an ack) and
# aborts non-zero on violation.
(cd build && ./bench/nvmlog --csv >/dev/null)
test -f build/BENCH_nvmlog.json

echo "=== tail stage ==="
for seed in "${TAIL_SEEDS[@]}"; do
  echo "--- tail seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'Tail|Hedge'
  echo "--- tail seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'Tail|Hedge'
done
echo "--- tail tolerance bench ---"
# The bench DPC_CHECKs its own tail SLO (limping-peer p99 ≤ 2× healthy with
# the health scoreboard + hedging on, ≥ 10× with them off; hedge budget
# respected; quarantine round-trips) and aborts non-zero on violation.
(cd build && ./bench/tail_tolerance --csv >/dev/null)
test -f build/BENCH_tail.json

echo "=== ci OK ==="
