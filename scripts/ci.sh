#!/usr/bin/env bash
# CI entry point: plain build + tests, then a ThreadSanitizer build + tests,
# then the chaos stage (fault-injection tests swept over several seeds in
# both builds — the schedules are deterministic per seed), then the crash
# stage: the crash-point chaos harness swept over a wider seed set in both
# builds, plus the crash-restart recovery bench emitting
# BENCH_crash_recovery.json.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
CHAOS_SEEDS=(1 7 1337)
CRASH_SEEDS=(1 2 3 5 7 11 13 1337)

echo "=== plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== tsan build ==="
cmake -B build-tsan -S . -DDPC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "=== chaos stage ==="
for seed in "${CHAOS_SEEDS[@]}"; do
  echo "--- chaos seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'Chaos|Fault'
  echo "--- chaos seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'Chaos|Fault'
done

echo "=== crash stage ==="
for seed in "${CRASH_SEEDS[@]}"; do
  echo "--- crash seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'CrashChaos'
  echo "--- crash seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'CrashChaos'
done
echo "--- crash-restart recovery bench ---"
(cd build && ./bench/chaos_recovery --csv >/dev/null)
test -f build/BENCH_crash_recovery.json

echo "=== ci OK ==="
