#!/usr/bin/env bash
# CI entry point.
#
# Stages, in order:
#   lint   — scripts/dpc_lint.py (protocol linter, always), then clang-tidy
#            and a clang-format check when the clang tools are installed
#            (they are optional in the build container; the configs in
#            .clang-tidy / .clang-format are authoritative where they run).
#   plain  — RelWithDebInfo build + full test suite (lock-rank detector
#            compiled out; NDEBUG).
#   regress— bench/regress: pinned micro-benches + figure-bench transport
#            counters gated against bench/baselines/. Runs looser than the
#            10% default because CI shares a single-core VM (see
#            EXPERIMENTS.md "Refreshing perf baselines").
#   tsan   — ThreadSanitizer build + full test suite. DPC_LOCKRANK defaults
#            on under TSan, so this leg also runs the runtime lock-order
#            detector across every test.
#   ubsan  — UndefinedBehaviorSanitizer build + full test suite.
#   chaos  — fault-injection tests swept over several seeds (plain + tsan).
#   crash  — crash-point chaos over a wider seed set (plain + tsan), plus
#            the crash-restart recovery bench (BENCH_crash_recovery.json).
#   scrub  — data-corruption sweep: the integrity-envelope chaos tests and
#            scrubber tests over several seeds (plain + tsan), plus the
#            corruption-recovery bench (BENCH_scrub_recovery.json with its
#            detected == repaired + unrecoverable invariant).
#   qos    — overload robustness: the per-tenant QoS tests (plain + tsan)
#            and the antagonist bench (BENCH_qos.json), which asserts the
#            isolation SLO internally: victim p99 ≤ 2× solo with isolation
#            on, ≥ 5× degradation with it off.
#   nvm    — NVM write-ahead durability tier: the WAL unit + system tests
#            (plain + tsan; the CrashChaosWal sweeps already ride the crash
#            stage) and the nvmlog bench (BENCH_nvmlog.json), which asserts
#            fsync p99(WAL off) ≥ 5× p99(WAL on) and graceful ring-full
#            degradation internally.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
CHAOS_SEEDS=(1 7 1337)
CRASH_SEEDS=(1 2 3 5 7 11 13 1337)
SCRUB_SEEDS=(1 7 42 1337 90210)

echo "=== lint stage ==="
python3 scripts/dpc_lint.py

echo "=== plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# clang-tidy wants compile_commands.json, which the plain configure exports.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "--- clang-tidy ---"
  mapfile -t TIDY_SRCS < <(find src -name '*.cpp' | sort)
  clang-tidy -p build --quiet "${TIDY_SRCS[@]}"
else
  echo "--- clang-tidy not installed; skipping (config: .clang-tidy) ---"
fi
if command -v clang-format >/dev/null 2>&1; then
  echo "--- clang-format check (src/sim + lint-era files) ---"
  clang-format --dry-run --Werror \
    src/sim/thread_annotations.hpp src/sim/lockrank.hpp \
    src/sim/lockrank.cpp tests/test_lockrank.cpp
else
  echo "--- clang-format not installed; skipping (config: .clang-format) ---"
fi

echo "=== regress stage ==="
# The CI box is a shared single-core VM with a wall-clock noise floor of
# roughly 25% even on best-of-repetitions, so the micro suites gate at 35%
# here instead of bench/regress's 10% default (which is meant for dedicated
# hardware). A deliberate 2x slowdown lands at +100% and still fails; the
# figure-suite counters are deterministic and unaffected by the threshold.
./bench/regress --threshold 0.35 --retries 2

echo "=== tsan build ==="
cmake -B build-tsan -S . -DDPC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "=== ubsan build ==="
cmake -B build-ubsan -S . -DDPC_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$JOBS"
ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"

echo "=== chaos stage ==="
for seed in "${CHAOS_SEEDS[@]}"; do
  echo "--- chaos seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'Chaos|Fault'
  echo "--- chaos seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'Chaos|Fault'
done

echo "=== crash stage ==="
for seed in "${CRASH_SEEDS[@]}"; do
  echo "--- crash seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'CrashChaos'
  echo "--- crash seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'CrashChaos'
done
echo "--- crash-restart recovery bench ---"
(cd build && ./bench/chaos_recovery --csv >/dev/null)
test -f build/BENCH_crash_recovery.json

echo "=== scrub stage ==="
for seed in "${SCRUB_SEEDS[@]}"; do
  echo "--- scrub seed $seed (plain) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'Scrub|SilentCorruption'
  echo "--- scrub seed $seed (tsan) ---"
  DPC_FAULT_SEED="$seed" ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'Scrub|SilentCorruption'
done
test -f build/BENCH_scrub_recovery.json  # emitted by chaos_recovery above

echo "=== qos stage ==="
echo "--- qos tests (plain) ---"
ctest --test-dir build --output-on-failure -j "$JOBS" -R 'Qos'
echo "--- qos tests (tsan) ---"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R 'Qos'
echo "--- qos antagonist bench ---"
# The bench DPC_CHECKs its own isolation SLO (victim p99 ≤ 2× solo with
# QoS on, ≥ 5× degradation with it off) and aborts non-zero on violation.
(cd build && ./bench/qos_antagonist --csv >/dev/null)
test -f build/BENCH_qos.json

echo "=== nvm stage ==="
echo "--- nvm wal tests (plain) ---"
ctest --test-dir build --output-on-failure -j "$JOBS" -R 'NvmWal'
echo "--- nvm wal tests (tsan) ---"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R 'NvmWal'
echo "--- nvm log bench ---"
# The bench DPC_CHECKs its own durability SLO (fsync p99 ≥ 5× faster with
# the log on, ring-full pressure degrades without dropping an ack) and
# aborts non-zero on violation.
(cd build && ./bench/nvmlog --csv >/dev/null)
test -f build/BENCH_nvmlog.json

echo "=== ci OK ==="
