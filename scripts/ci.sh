#!/usr/bin/env bash
# CI entry point: plain build + tests, then a ThreadSanitizer build + tests.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== tsan build ==="
cmake -B build-tsan -S . -DDPC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "=== ci OK ==="
