#include "kv/kv_store.hpp"
#include "kv/remote.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dpc::kv {
namespace {

Bytes b(std::string_view s) { return to_bytes(s); }

TEST(KvStore, PutGetErase) {
  KvStore kv;
  EXPECT_FALSE(kv.get("k").has_value());
  kv.put("k", b("v1"));
  EXPECT_EQ(kv.get("k"), b("v1"));
  kv.put("k", b("v2"));
  EXPECT_EQ(kv.get("k"), b("v2"));
  EXPECT_TRUE(kv.erase("k"));
  EXPECT_FALSE(kv.erase("k"));
  EXPECT_FALSE(kv.contains("k"));
}

TEST(KvStore, PutIfAbsentSemantics) {
  KvStore kv;
  EXPECT_TRUE(kv.put_if_absent("k", b("first")));
  EXPECT_FALSE(kv.put_if_absent("k", b("second")));
  EXPECT_EQ(kv.get("k"), b("first"));
}

TEST(KvStore, BinarySafeKeys) {
  KvStore kv;
  std::string key("\x00\x01\xFFkey", 6);
  kv.put(key, b("bin"));
  EXPECT_EQ(kv.get(key), b("bin"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, SubRangeReadWrite) {
  KvStore kv;
  kv.write_sub("big", 100, b("hello"));
  EXPECT_EQ(kv.value_size("big"), 105u);
  std::vector<std::byte> out(5);
  EXPECT_EQ(kv.read_sub("big", 100, out), 5u);
  EXPECT_EQ(out, b("hello"));
  // Leading gap reads as zeros.
  std::vector<std::byte> head(4);
  EXPECT_EQ(kv.read_sub("big", 0, head), 4u);
  EXPECT_EQ(head[0], std::byte{0});
  // In-place overwrite does not grow.
  kv.write_sub("big", 100, b("HELLO"));
  EXPECT_EQ(kv.value_size("big"), 105u);
  EXPECT_EQ(kv.read_sub("big", 100, out), 5u);
  EXPECT_EQ(out, b("HELLO"));
  // Beyond-EOF read is empty, missing key is nullopt.
  EXPECT_EQ(kv.read_sub("big", 1000, out), 0u);
  EXPECT_FALSE(kv.read_sub("nope", 0, out).has_value());
}

TEST(KvStore, PrefixScanOrdered) {
  KvStore kv(4);  // multiple shards: scan must merge in key order
  kv.put("dir/c", b("3"));
  kv.put("dir/a", b("1"));
  kv.put("dir/b", b("2"));
  kv.put("other/x", b("9"));
  std::vector<std::string> keys;
  const auto n = kv.scan_prefix("dir/", [&](std::string_view k, const Bytes&) {
    keys.emplace_back(k);
    return true;
  });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "dir/a");
  EXPECT_EQ(keys[1], "dir/b");
  EXPECT_EQ(keys[2], "dir/c");
}

TEST(KvStore, PrefixScanEarlyStop) {
  KvStore kv;
  for (int i = 0; i < 10; ++i) kv.put("p/" + std::to_string(i), b("v"));
  int seen = 0;
  kv.scan_prefix("p/", [&](std::string_view, const Bytes&) {
    return ++seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(KvStore, SizeAndBytes) {
  KvStore kv;
  kv.put("a", b("xy"));
  kv.put("bb", b("z"));
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.bytes_stored(), 1u + 2u + 2u + 1u);
}

TEST(KvStore, ConcurrentMixedOps) {
  KvStore kv;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&kv, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "/" + std::to_string(i % 50);
        kv.put(key, b("value"));
        auto v = kv.get(key);
        ASSERT_TRUE(v.has_value());
        if (i % 7 == 0) kv.erase(key);
      }
    });
  }
  for (auto& t : ts) t.join();
  // Each thread's keyspace is disjoint; no corruption and sane size.
  EXPECT_LE(kv.size(), static_cast<std::size_t>(kThreads) * 50);
}

TEST(RemoteKv, CostsAttachToOps) {
  KvStore kv;
  RemoteKv remote(kv);
  const auto put = remote.put("k", b("0123456789"));
  EXPECT_TRUE(put.value);
  EXPECT_GT(put.cost.ns, 0);
  const auto get = remote.get("k");
  ASSERT_TRUE(get.value.has_value());
  EXPECT_GT(get.cost.ns, 0);
  // Bigger payloads cost more.
  Bytes big(1 << 20, std::byte{1});
  const auto put_big = remote.put("big", big);
  EXPECT_GT(put_big.cost.ns, put.cost.ns);
}

TEST(RemoteKv, ReadCheaperPerByteThanWrite) {
  // Calib: KV read bandwidth > write bandwidth.
  const auto r = RemoteKv::op_cost(true, 1 << 20);
  const auto w = RemoteKv::op_cost(false, 1 << 20);
  EXPECT_LT(r.ns, w.ns);
}

TEST(RemoteKv, FunctionalParityWithLocal) {
  KvStore kv;
  RemoteKv remote(kv);
  remote.put("a", b("1"));
  remote.write_sub("a", 1, b("23"));
  std::vector<std::byte> out(3);
  EXPECT_EQ(remote.read_sub("a", 0, out).value, 3u);
  EXPECT_EQ(out, b("123"));
  EXPECT_EQ(remote.value_size("a").value, 3u);
  EXPECT_TRUE(remote.erase("a").value);
}

}  // namespace
}  // namespace dpc::kv
