#include "cache/page_cache.hpp"

#include <gtest/gtest.h>

#include <map>
#include <thread>

namespace dpc::cache {
namespace {

struct PageCacheFixture : ::testing::Test {
  PageCacheFixture() : pc(16, 4096, /*shards=*/1) {}

  PageCache::WritebackFn recorder() {
    return [this](std::uint64_t ino, std::uint64_t lpn,
                  std::span<const std::byte> data) {
      written[{ino, lpn}] = data[0];
    };
  }
  std::vector<std::byte> page(std::uint8_t fill) {
    return std::vector<std::byte>(4096, static_cast<std::byte>(fill));
  }

  PageCache pc;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::byte> written;
};

TEST_F(PageCacheFixture, MissThenHit) {
  std::vector<std::byte> out(4096);
  EXPECT_FALSE(pc.read(1, 0, out));
  EXPECT_EQ(pc.misses(), 1u);
  pc.write(1, 0, page(5), recorder());
  EXPECT_TRUE(pc.read(1, 0, out));
  EXPECT_EQ(out[0], std::byte{5});
  EXPECT_EQ(pc.hits(), 1u);
}

TEST_F(PageCacheFixture, FillInsertsClean) {
  pc.fill(1, 0, page(7), recorder());
  EXPECT_EQ(pc.flush(recorder()), 0u);  // clean pages don't flush
  std::vector<std::byte> out(4096);
  EXPECT_TRUE(pc.read(1, 0, out));
}

TEST_F(PageCacheFixture, FillNeverClobbersExisting) {
  pc.write(1, 0, page(1), recorder());
  pc.fill(1, 0, page(2), recorder());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(pc.read(1, 0, out));
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(pc.flush(recorder()), 1u);  // still dirty
}

TEST_F(PageCacheFixture, LruEvictionWritesBackDirty) {
  for (std::uint64_t lpn = 0; lpn < 16; ++lpn)
    pc.write(1, lpn, page(static_cast<std::uint8_t>(lpn)), recorder());
  EXPECT_EQ(pc.resident_pages(), 16u);
  // One more insert evicts lpn 0 (oldest) with writeback.
  pc.write(1, 100, page(99), recorder());
  EXPECT_EQ(pc.resident_pages(), 16u);
  ASSERT_TRUE(written.contains({1, 0}));
  EXPECT_EQ(written.at({1, 0}), (std::byte{0}));
  std::vector<std::byte> out(4096);
  EXPECT_FALSE(pc.read(1, 0, out));
}

TEST_F(PageCacheFixture, ReadPromotesAgainstEviction) {
  for (std::uint64_t lpn = 0; lpn < 16; ++lpn)
    pc.write(1, lpn, page(1), recorder());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(pc.read(1, 0, out));  // promote the oldest
  pc.write(1, 100, page(2), recorder());
  EXPECT_TRUE(pc.read(1, 0, out));    // survived
  EXPECT_FALSE(pc.read(1, 1, out));   // lpn 1 evicted instead
}

TEST_F(PageCacheFixture, FlushClearsDirtyBits) {
  pc.write(1, 0, page(3), recorder());
  EXPECT_EQ(pc.flush(recorder()), 1u);
  EXPECT_EQ(pc.flush(recorder()), 0u);
  EXPECT_EQ(written.at({1, 0}), (std::byte{3}));
}

TEST_F(PageCacheFixture, InvalidateInodeWritesBackAndDrops) {
  pc.write(1, 0, page(1), recorder());
  pc.write(1, 1, page(2), recorder());
  pc.write(2, 0, page(3), recorder());
  pc.invalidate_inode(1, recorder());
  EXPECT_EQ(pc.resident_pages(), 1u);
  EXPECT_EQ(written.size(), 2u);
  std::vector<std::byte> out(4096);
  EXPECT_TRUE(pc.read(2, 0, out));
}

TEST(PageCacheSharded, ConcurrentAccess) {
  PageCache pc(1024, 4096, 8);
  std::vector<std::thread> ts;
  std::atomic<int> errors{0};
  auto noop = [](std::uint64_t, std::uint64_t, std::span<const std::byte>) {};
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&pc, t, &errors, &noop] {
      std::vector<std::byte> out(4096);
      for (int i = 0; i < 2000; ++i) {
        const auto lpn = static_cast<std::uint64_t>(i % 64);
        pc.write(static_cast<std::uint64_t>(t), lpn,
                 std::vector<std::byte>(4096, static_cast<std::byte>(t)),
                 noop);
        if (pc.read(static_cast<std::uint64_t>(t), lpn, out) &&
            out[0] != static_cast<std::byte>(t))
          ++errors;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace dpc::cache
