#include "cache/policy.hpp"

#include <gtest/gtest.h>

namespace dpc::cache {
namespace {

std::vector<PageStatus> make_status(std::initializer_list<PageStatus> l) {
  return {l};
}

TEST(ClockEviction, PicksOnlyCleanPages) {
  ClockEviction clock;
  const auto status =
      make_status({PageStatus::kDirty, PageStatus::kClean, PageStatus::kFree,
                   PageStatus::kClean, PageStatus::kInvalid});
  std::vector<std::uint32_t> victims;
  clock.pick_victims(status, 10, victims);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 1u);
  EXPECT_EQ(victims[1], 3u);
}

TEST(ClockEviction, HandRotatesAcrossCalls) {
  ClockEviction clock;
  std::vector<PageStatus> status(8, PageStatus::kClean);
  std::vector<std::uint32_t> first, second;
  clock.pick_victims(status, 3, first);
  clock.pick_victims(status, 3, second);
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(first[0], 0u);
  EXPECT_EQ(second[0], 3u);  // continues where the hand stopped
}

TEST(ClockEviction, RespectsWantLimit) {
  ClockEviction clock;
  std::vector<PageStatus> status(100, PageStatus::kClean);
  std::vector<std::uint32_t> victims;
  clock.pick_victims(status, 7, victims);
  EXPECT_EQ(victims.size(), 7u);
}

TEST(ClockEviction, EmptyStatusNoVictims) {
  ClockEviction clock;
  std::vector<std::uint32_t> victims;
  clock.pick_victims({}, 5, victims);
  EXPECT_TRUE(victims.empty());
}

TEST(BucketPressureEviction, PrefersFullBuckets) {
  // Two buckets of 4: bucket 0 has 0 free, bucket 1 has 3 free.
  BucketPressureEviction policy(4);
  const auto status = make_status(
      {PageStatus::kClean, PageStatus::kClean, PageStatus::kClean,
       PageStatus::kDirty,  // bucket 0: no free
       PageStatus::kClean, PageStatus::kFree, PageStatus::kFree,
       PageStatus::kFree});  // bucket 1: 3 free
  std::vector<std::uint32_t> victims;
  policy.pick_victims(status, 2, victims);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_LT(victims[0], 4u);  // both victims from the pressured bucket
  EXPECT_LT(victims[1], 4u);
}

TEST(SequentialPrefetcher, RampWindowGrows) {
  SequentialPrefetcher pf(64);
  EXPECT_EQ(pf.on_miss(1, 0).pages, 0u);  // first touch
  const auto a2 = pf.on_miss(1, 1);
  ASSERT_GT(a2.pages, 0u);
  EXPECT_EQ(a2.start_lpn, 2u);
  // The advised window is consumed as hits; the next *miss* lands right
  // after it and must continue (and grow) the stream.
  const auto a3 = pf.on_miss(1, a2.start_lpn + a2.pages);
  EXPECT_GE(a3.pages, a2.pages);  // exponential ramp
  // Window capped at the maximum.
  SequentialPrefetcher::Advice last = a3;
  std::uint64_t next = a3.start_lpn + a3.pages;
  for (int i = 0; i < 10; ++i) {
    last = pf.on_miss(1, next);
    next = last.start_lpn + last.pages;
  }
  EXPECT_LE(last.pages, 64u);
  EXPECT_EQ(last.pages, 64u);
}

TEST(SequentialPrefetcher, OnHitExtendsNearWindowEnd) {
  SequentialPrefetcher pf(64);
  pf.on_miss(1, 0);
  const auto a = pf.on_miss(1, 1);  // prefetched [2, 2+w)
  ASSERT_GT(a.pages, 0u);
  // Hit early in the window: no extension yet.
  EXPECT_EQ(pf.on_hit(1, a.start_lpn).pages, 0u);
  // Hit in the trailing half: asynchronous extension from the window end.
  const auto ext = pf.on_hit(1, a.start_lpn + a.pages - 1);
  ASSERT_GT(ext.pages, 0u);
  EXPECT_EQ(ext.start_lpn, a.start_lpn + a.pages);
  // Unknown stream: nothing.
  EXPECT_EQ(pf.on_hit(99, 5).pages, 0u);
}

TEST(SequentialPrefetcher, BreakResetsRun) {
  SequentialPrefetcher pf(64);
  pf.on_miss(1, 0);
  ASSERT_GT(pf.on_miss(1, 1).pages, 0u);
  EXPECT_EQ(pf.on_miss(1, 1000).pages, 0u);  // jump breaks the stream
  EXPECT_GT(pf.on_miss(1, 1001).pages, 0u);  // new stream re-forms
}

TEST(SequentialPrefetcher, StreamsPerInodeIndependent) {
  SequentialPrefetcher pf(64);
  pf.on_miss(1, 0);
  pf.on_miss(2, 50);
  EXPECT_GT(pf.on_miss(1, 1).pages, 0u);
  EXPECT_GT(pf.on_miss(2, 51).pages, 0u);
}

TEST(SequentialPrefetcher, LruEvictsColdStreams) {
  SequentialPrefetcher pf(64, /*tracked_streams=*/2);
  pf.on_miss(1, 0);
  pf.on_miss(2, 0);
  pf.on_miss(3, 0);  // evicts inode 1's stream
  // Inode 1 must restart from scratch: its next sequential miss is a
  // first-touch again.
  EXPECT_EQ(pf.on_miss(1, 1).pages, 0u);
}

TEST(SequentialPrefetcher, ResetForgetsEverything) {
  SequentialPrefetcher pf(64);
  pf.on_miss(1, 0);
  pf.reset();
  EXPECT_EQ(pf.on_miss(1, 1).pages, 0u);
}

}  // namespace
}  // namespace dpc::cache
