#include "cache/control_plane.hpp"
#include "cache/host_plane.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>

namespace dpc::cache {
namespace {

/// In-memory backend that records flushed pages.
class MapBackend final : public CacheBackend {
 public:
  bool read_page(std::uint64_t inode, std::uint64_t lpn,
                 std::span<std::byte> dst, sim::Nanos&) override {
    std::lock_guard lock(mu_);
    const auto it = pages_.find({inode, lpn});
    if (it == pages_.end()) return false;
    std::copy(it->second.begin(), it->second.end(), dst.begin());
    return true;
  }
  bool write_page(std::uint64_t inode, std::uint64_t lpn,
                  std::span<const std::byte> src, sim::Nanos&) override {
    std::lock_guard lock(mu_);
    pages_[{inode, lpn}].assign(src.begin(), src.end());
    return true;
  }

  std::size_t count() const {
    std::lock_guard lock(mu_);
    return pages_.size();
  }
  std::optional<std::byte> first_byte(std::uint64_t inode,
                                      std::uint64_t lpn) const {
    std::lock_guard lock(mu_);
    const auto it = pages_.find({inode, lpn});
    if (it == pages_.end()) return std::nullopt;
    return it->second[0];
  }
  void preload(std::uint64_t inode, std::uint64_t lpn, std::byte fill) {
    std::lock_guard lock(mu_);
    pages_[{inode, lpn}].assign(4096, fill);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::byte>>
      pages_;
};

struct ControlFixture : ::testing::Test {
  ControlFixture()
      : host("host", 64 << 20),
        alloc(host),
        dpu("dpu", 1 << 20),
        dma(host, dpu),
        layout(CacheGeometry{4096, CacheMode::kWrite, 64, 8}, alloc),
        plane(host, layout),
        ctl(dma, layout, backend, std::make_unique<ClockEviction>(),
            ControlPlaneConfig{4, 8, true}) {}

  std::vector<std::byte> page(std::uint8_t fill) {
    return std::vector<std::byte>(4096, static_cast<std::byte>(fill));
  }

  pcie::MemoryRegion host;
  pcie::RegionAllocator alloc;
  pcie::MemoryRegion dpu;
  pcie::DmaEngine dma;
  CacheLayout layout;
  HostCachePlane plane;
  MapBackend backend;
  DpuCacheControl ctl;
};

TEST_F(ControlFixture, FlushWritesDirtyPagesToBackend) {
  ASSERT_EQ(plane.write(1, 0, page(0xAA)), HostCachePlane::WriteResult::kOk);
  ASSERT_EQ(plane.write(1, 1, page(0xBB)), HostCachePlane::WriteResult::kOk);
  const auto res = ctl.flush_pass();
  EXPECT_EQ(res.pages, 2);
  EXPECT_GT(res.cost.ns, 0);
  EXPECT_EQ(backend.count(), 2u);
  EXPECT_EQ(backend.first_byte(1, 0), std::byte{0xAA});
  EXPECT_EQ(backend.first_byte(1, 1), std::byte{0xBB});
  EXPECT_EQ(ctl.stats().dif_checksums, 2u);  // DIF ran per page

  // Pages are now clean: host hits still work, second flush is a no-op.
  std::vector<std::byte> out(4096);
  EXPECT_TRUE(plane.read(1, 0, out));
  EXPECT_EQ(ctl.flush_pass().pages, 0);
}

TEST_F(ControlFixture, FlushUsesPcieAtomicsForLocks) {
  ASSERT_EQ(plane.write(1, 0, page(1)), HostCachePlane::WriteResult::kOk);
  const auto atomics_before = dma.counters().ops(pcie::DmaClass::kAtomic);
  ctl.flush_pass();
  // Read-lock acquire + status update + unlock ≥ 3 atomics.
  EXPECT_GE(dma.counters().ops(pcie::DmaClass::kAtomic), atomics_before + 3);
}

TEST_F(ControlFixture, EvictReclaimsCleanOnly) {
  ASSERT_EQ(plane.write(1, 0, page(1)), HostCachePlane::WriteResult::kOk);
  ASSERT_EQ(plane.write(1, 1, page(2)), HostCachePlane::WriteResult::kOk);
  // Evicting before flush reclaims nothing (both dirty).
  EXPECT_EQ(ctl.evict(64).pages, 0);
  ctl.flush_pass();
  const auto res = ctl.evict(64);
  EXPECT_EQ(res.pages, 2);
  EXPECT_EQ(plane.free_pages(), 64u);
}

TEST_F(ControlFixture, PollServicesNeedEvictFlag) {
  // Fill one bucket to trigger the flag.
  const auto target = layout.bucket_of(1, 0);
  std::vector<std::uint64_t> lpns;
  for (std::uint64_t lpn = 0; lpns.size() < 9; ++lpn)
    if (layout.bucket_of(1, lpn) == target) lpns.push_back(lpn);
  for (std::size_t i = 0; i < 8; ++i)
    ASSERT_EQ(plane.write(1, lpns[i], page(1)),
              HostCachePlane::WriteResult::kOk);
  ASSERT_EQ(plane.write(1, lpns[8], page(1)),
            HostCachePlane::WriteResult::kNoFreeEntry);

  EXPECT_GT(ctl.poll(), 0);  // flushes + evicts
  // Flag acknowledged and retry succeeds.
  EXPECT_EQ(host.atomic_u32(layout.header_field(HeaderOffsets::kNeedEvict))
                .load(),
            0u);
  EXPECT_EQ(plane.write(1, lpns[8], page(1)),
            HostCachePlane::WriteResult::kOk);
}

TEST_F(ControlFixture, PrefetchPopulatesCleanPages) {
  backend.preload(9, 0, std::byte{0x10});
  backend.preload(9, 1, std::byte{0x11});
  backend.preload(9, 2, std::byte{0x12});
  const auto res = ctl.prefetch(9, 0, 3);
  EXPECT_EQ(res.pages, 3);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(plane.read(9, 1, out));
  EXPECT_EQ(out[0], std::byte{0x11});
  EXPECT_EQ(plane.free_pages(), 61u);
  // Prefetched pages are clean: nothing to flush.
  EXPECT_EQ(ctl.flush_pass().pages, 0);
}

TEST_F(ControlFixture, PrefetchSkipsPresentAndMissing) {
  backend.preload(9, 0, std::byte{1});
  ASSERT_EQ(plane.write(9, 0, page(0xFF)), HostCachePlane::WriteResult::kOk);
  // Page 0 cached (dirty), page 1 absent in backend.
  const auto res = ctl.prefetch(9, 0, 2);
  EXPECT_EQ(res.pages, 0);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(plane.read(9, 0, out));
  EXPECT_EQ(out[0], std::byte{0xFF});  // dirty copy untouched
}

TEST_F(ControlFixture, OnReadMissLearnsSequentialStream) {
  for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
    backend.preload(5, lpn, static_cast<std::byte>(lpn));
  // First miss: no prefetch yet. Second sequential miss: window opens.
  EXPECT_EQ(ctl.on_read_miss(5, 0).pages, 0);
  const auto res = ctl.on_read_miss(5, 1);
  EXPECT_GT(res.pages, 0);
  EXPECT_GT(ctl.stats().pages_prefetched, 0u);
  std::vector<std::byte> out(4096);
  EXPECT_TRUE(plane.read(5, 2, out));  // prefetched ahead of the reader
}

TEST_F(ControlFixture, RandomMissesNeverPrefetch) {
  for (std::uint64_t lpn = 0; lpn < 64; ++lpn)
    backend.preload(5, lpn, std::byte{1});
  EXPECT_EQ(ctl.on_read_miss(5, 10).pages, 0);
  EXPECT_EQ(ctl.on_read_miss(5, 3).pages, 0);
  EXPECT_EQ(ctl.on_read_miss(5, 40).pages, 0);
  EXPECT_EQ(ctl.stats().pages_prefetched, 0u);
}

TEST_F(ControlFixture, ConcurrentHostWritesDuringFlusher) {
  // The §3.3 consistency scenario: host writers mutate pages while the DPU
  // flushes. Locks must keep every flushed page internally consistent.
  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ctl.flush_pass();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([this, t] {
      for (int i = 0; i < 500; ++i) {
        const auto fill =
            static_cast<std::uint8_t>((t * 500 + i) % 251 + 1);
        while (plane.write(static_cast<std::uint64_t>(t), 0, page(fill)) !=
               HostCachePlane::WriteResult::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  flusher.join();
  ctl.flush_pass();  // final flush

  // Backend holds each inode's page with a uniform fill (no torn pages) —
  // and it must be the *last* value written.
  for (std::uint64_t t = 0; t < 4; ++t) {
    const auto fb = backend.first_byte(t, 0);
    ASSERT_TRUE(fb.has_value());
    const auto expect =
        static_cast<std::byte>((static_cast<int>(t) * 500 + 499) % 251 + 1);
    EXPECT_EQ(*fb, expect) << "inode " << t;
  }
}

TEST_F(ControlFixture, HostReadersNeverBlockFlushIndefinitely) {
  ASSERT_EQ(plane.write(2, 2, page(0x77)), HostCachePlane::WriteResult::kOk);
  // A host reader holds a read lock; the flusher's read lock can share it.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::vector<std::byte> out(4096);
    while (!stop.load()) plane.read(2, 2, out);
  });
  int flushed = 0;
  for (int i = 0; i < 100 && flushed == 0; ++i)
    flushed = ctl.flush_pass().pages;
  stop.store(true);
  reader.join();
  EXPECT_EQ(flushed, 1);
}

}  // namespace
}  // namespace dpc::cache
