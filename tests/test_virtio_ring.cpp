#include "virtio/virtqueue.hpp"

#include <gtest/gtest.h>

#include "dpu/dpu.hpp"

namespace dpc::virtio {
namespace {

struct RingFixture : ::testing::Test {
  RingFixture()
      : host("host", 4 << 20),
        halloc(host),
        dpu_dev(),
        dma(host, dpu_dev.bar()),
        layout(16, halloc, dpu_dev.bar_alloc()),
        guest(dma, layout),
        device(dma, layout) {}

  std::uint64_t alloc_buf(std::size_t n, std::byte fill) {
    const auto off = halloc.alloc(n, 4096);
    auto s = host.bytes(off, n);
    std::fill(s.begin(), s.end(), fill);
    return off;
  }

  pcie::MemoryRegion host;
  pcie::RegionAllocator halloc;
  dpu::Dpu dpu_dev;
  pcie::DmaEngine dma;
  VirtqueueLayout layout;
  VirtqueueGuest guest;
  VirtqueueDevice device;
};

TEST_F(RingFixture, EmptyQueuePopsNothing) {
  sim::Nanos cost{};
  EXPECT_FALSE(device.pop(&cost).has_value());
  // Kick gating: an idle poll costs no host-memory traffic.
  EXPECT_EQ(cost.ns, 0);
  EXPECT_EQ(dma.counters().total_ops(), 0u);
}

TEST_F(RingFixture, SingleSegmentRoundTrip) {
  const auto buf = alloc_buf(512, std::byte{0xAA});
  guest.add_chain({{buf, 512, false}});
  auto chain = device.pop(nullptr);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->segments.size(), 1u);
  EXPECT_EQ(chain->segments[0].addr, buf);
  EXPECT_EQ(chain->segments[0].len, 512u);
  EXPECT_FALSE(chain->segments[0].device_writable);

  std::vector<std::byte> payload;
  device.read_payload(*chain, payload);
  ASSERT_EQ(payload.size(), 512u);
  EXPECT_EQ(payload[0], std::byte{0xAA});

  device.push_used(chain->head, 0);
  const auto used = guest.poll_used();
  ASSERT_TRUE(used.has_value());
  EXPECT_EQ(used->id, chain->head);
}

TEST_F(RingFixture, ChainOrderPreserved) {
  const auto a = alloc_buf(64, std::byte{1});
  const auto b = alloc_buf(64, std::byte{2});
  const auto c = alloc_buf(64, std::byte{3});
  guest.add_chain({{a, 64, false}, {b, 64, false}, {c, 64, true}});
  auto chain = device.pop(nullptr);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->segments.size(), 3u);
  EXPECT_EQ(chain->segments[0].addr, a);
  EXPECT_EQ(chain->segments[1].addr, b);
  EXPECT_EQ(chain->segments[2].addr, c);
  EXPECT_TRUE(chain->segments[2].device_writable);
}

TEST_F(RingFixture, WritePayloadFillsWritableSegments) {
  const auto in = alloc_buf(64, std::byte{1});
  const auto out1 = alloc_buf(16, std::byte{0});
  const auto out2 = alloc_buf(4096, std::byte{0});
  guest.add_chain({{in, 64, false}, {out1, 16, true}, {out2, 4096, true}});
  auto chain = device.pop(nullptr);
  ASSERT_TRUE(chain.has_value());

  std::vector<std::byte> reply(16 + 100, std::byte{0x5C});
  const auto res = device.write_payload(*chain, reply);
  EXPECT_EQ(res.written, reply.size());
  // First 16 bytes land in out1, the rest in out2.
  EXPECT_EQ(host.bytes(out1, 1)[0], std::byte{0x5C});
  EXPECT_EQ(host.bytes(out2, 1)[0], std::byte{0x5C});
  EXPECT_EQ(host.bytes(out2, 101)[100], std::byte{0});
}

TEST_F(RingFixture, ContiguousReadSegmentsCoalesceIntoOneDma) {
  // Two descriptors over adjacent memory must burst as one data DMA.
  const auto hdr = halloc.alloc(80, 64);
  host.bytes(hdr, 80);
  guest.add_chain({{hdr, 40, false}, {hdr + 40, 40, false}});
  auto chain = device.pop(nullptr);
  ASSERT_TRUE(chain.has_value());
  const auto before = dma.counters().ops(pcie::DmaClass::kData);
  std::vector<std::byte> payload;
  device.read_payload(*chain, payload);
  EXPECT_EQ(payload.size(), 80u);
  EXPECT_EQ(dma.counters().ops(pcie::DmaClass::kData) - before, 1u);
}

TEST_F(RingFixture, NonContiguousSegmentsStaySeparateDmas) {
  const auto a = alloc_buf(64, std::byte{1});
  const auto b = alloc_buf(64, std::byte{2});  // page-aligned: gap from a
  guest.add_chain({{a, 64, false}, {b, 64, false}});
  auto chain = device.pop(nullptr);
  const auto before = dma.counters().ops(pcie::DmaClass::kData);
  std::vector<std::byte> payload;
  device.read_payload(*chain, payload);
  EXPECT_EQ(dma.counters().ops(pcie::DmaClass::kData) - before, 2u);
}

TEST_F(RingFixture, DescriptorsRecycled) {
  const auto buf = alloc_buf(64, std::byte{1});
  const auto free_before = guest.free_descriptors();
  const auto added = guest.add_chain({{buf, 64, false}, {buf, 64, true}});
  EXPECT_EQ(guest.free_descriptors(), free_before - 2);
  auto chain = device.pop(nullptr);
  device.push_used(chain->head, 0);
  guest.poll_used();
  guest.recycle(added.head);
  EXPECT_EQ(guest.free_descriptors(), free_before);
}

TEST_F(RingFixture, ManyChainsFifoOrder) {
  const auto buf = alloc_buf(4096, std::byte{1});
  std::vector<std::uint16_t> heads;
  for (int i = 0; i < 5; ++i)
    heads.push_back(guest.add_chain({{buf, 64, false}}).head);
  for (int i = 0; i < 5; ++i) {
    auto chain = device.pop(nullptr);
    ASSERT_TRUE(chain.has_value());
    EXPECT_EQ(chain->head, heads[static_cast<std::size_t>(i)]);
    device.push_used(chain->head, 0);
  }
  EXPECT_FALSE(device.pop(nullptr).has_value());
}

TEST_F(RingFixture, RingWrapsBeyondSize) {
  const auto buf = alloc_buf(64, std::byte{1});
  // 3 * size chains of 1 descriptor each.
  for (int i = 0; i < 48; ++i) {
    const auto added = guest.add_chain({{buf, 64, false}});
    auto chain = device.pop(nullptr);
    ASSERT_TRUE(chain.has_value());
    device.push_used(chain->head, 0);
    ASSERT_TRUE(guest.poll_used().has_value());
    guest.recycle(added.head);
  }
}

TEST_F(RingFixture, PopCostCountsPerDescriptor) {
  const auto buf = alloc_buf(4096, std::byte{1});
  guest.add_chain(
      {{buf, 64, false}, {buf, 64, false}, {buf, 64, false}, {buf, 64, true}});
  dma.counters().reset();
  sim::Nanos cost{};
  auto chain = device.pop(&cost);
  ASSERT_TRUE(chain.has_value());
  // ① avail idx + ② ring entry + ③④⑤⑥ one per descriptor = 6.
  EXPECT_EQ(dma.counters().ops(pcie::DmaClass::kDescriptor), 6u);
}

TEST_F(RingFixture, SuppressedNotifyDeliveredByNextKick) {
  // A chain published without a doorbell stays invisible to the kick-gated
  // device until any later kick arrives — then both chains surface.
  const auto buf = alloc_buf(64, std::byte{1});
  guest.add_chain({{buf, 64, false}}, /*notify=*/false);
  EXPECT_FALSE(device.pop(nullptr).has_value());
  guest.add_chain({{buf, 64, false}}, /*notify=*/true);
  EXPECT_TRUE(device.pop(nullptr).has_value());
  EXPECT_TRUE(device.pop(nullptr).has_value());
  EXPECT_FALSE(device.pop(nullptr).has_value());
}

TEST_F(RingFixture, BatchUnderOneKickPaysOneIdxRead) {
  const auto buf = alloc_buf(64, std::byte{1});
  guest.add_chain({{buf, 64, false}}, false);
  guest.add_chain({{buf, 64, false}}, false);
  guest.add_chain({{buf, 64, false}}, true);  // single kick for the batch
  dma.counters().reset();
  int popped = 0;
  while (device.pop(nullptr).has_value()) ++popped;
  EXPECT_EQ(popped, 3);
  // One avail-idx refresh covered all three chains (plus ring+desc reads).
  EXPECT_EQ(dma.counters().ops(pcie::DmaClass::kDescriptor),
            1u + 3u + 3u);  // idx + 3 ring entries + 3 descriptors
}

}  // namespace
}  // namespace dpc::virtio
