#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/check.hpp"

namespace dpc::sim {
namespace {

WorkloadSpec base_spec(Pattern p) {
  WorkloadSpec s;
  s.pattern = p;
  s.io_size = 8 * 1024;
  s.file_size = 1ULL << 30;
  return s;
}

TEST(Workload, RandReadProducesAlignedReads) {
  WorkloadGen gen(base_spec(Pattern::kRandRead), 0);
  for (int i = 0; i < 1000; ++i) {
    const IoOp op = gen.next();
    EXPECT_EQ(op.type, OpType::kRead);
    EXPECT_EQ(op.offset % op.length, 0u);
    EXPECT_LT(op.offset + op.length, (1ULL << 30) + 1);
  }
}

TEST(Workload, SeqWriteAdvancesAndWraps) {
  auto spec = base_spec(Pattern::kSeqWrite);
  spec.file_size = 4 * spec.io_size;
  WorkloadGen gen(spec, 0);
  std::vector<std::uint64_t> offs;
  for (int i = 0; i < 8; ++i) offs.push_back(gen.next().offset);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(offs[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i) * spec.io_size);
    EXPECT_EQ(offs[static_cast<std::size_t>(i + 4)],
              offs[static_cast<std::size_t>(i)]);  // wrapped
  }
}

TEST(Workload, MixedReadFraction) {
  auto spec = base_spec(Pattern::kMixed);
  spec.read_fraction = 0.7;  // the Fig. 1 mix
  WorkloadGen gen(spec, 1);
  int reads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    reads += gen.next().type == OpType::kRead ? 1 : 0;
  EXPECT_NEAR(reads, 70000, 1500);
}

TEST(Workload, LocalityHitsHotRegion) {
  auto spec = base_spec(Pattern::kRandRead);
  spec.locality = 0.9;
  spec.hot_fraction = 0.1;
  WorkloadGen gen(spec, 2);
  const std::uint64_t hot_end = static_cast<std::uint64_t>(
      static_cast<double>(spec.file_size) * spec.hot_fraction);
  int hot = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    hot += gen.next().offset < hot_end ? 1 : 0;
  // ≈ 0.9 + 0.1*0.1 = 91%
  EXPECT_NEAR(hot, 91000, 2000);
}

TEST(Workload, CreatesAreUniquePerStream) {
  auto spec = base_spec(Pattern::kCreate);
  WorkloadGen g0(spec, 0), g1(spec, 1);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ids.insert(g0.next().file_id).second);
    EXPECT_TRUE(ids.insert(g1.next().file_id).second);
  }
}

TEST(Workload, DeterministicPerStream) {
  auto spec = base_spec(Pattern::kRandWrite);
  WorkloadGen a(spec, 5), b(spec, 5);
  for (int i = 0; i < 100; ++i) {
    const IoOp oa = a.next(), ob = b.next();
    EXPECT_EQ(oa.offset, ob.offset);
    EXPECT_EQ(oa.file_id, ob.file_id);
  }
}

TEST(Workload, StreamsAreIndependent) {
  auto spec = base_spec(Pattern::kRandWrite);
  WorkloadGen a(spec, 0), b(spec, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next().offset == b.next().offset;
  EXPECT_LT(same, 5);
}

TEST(Workload, MultipleFilesCovered) {
  auto spec = base_spec(Pattern::kRandRead);
  spec.file_count = 8;
  WorkloadGen gen(spec, 0);
  std::set<std::uint64_t> files;
  for (int i = 0; i < 1000; ++i) files.insert(gen.next().file_id);
  EXPECT_EQ(files.size(), 8u);
}

TEST(Workload, RejectsBadSpec) {
  auto spec = base_spec(Pattern::kRandRead);
  spec.io_size = 0;
  EXPECT_THROW(WorkloadGen(spec, 0), CheckFailure);
  spec = base_spec(Pattern::kRandRead);
  spec.file_size = 4096;
  spec.io_size = 8192;
  EXPECT_THROW(WorkloadGen(spec, 0), CheckFailure);
}

TEST(Workload, DefaultSweepIsPowersOfTwo) {
  const auto sweep = default_thread_sweep(256);
  EXPECT_EQ(sweep.front(), 1);
  EXPECT_EQ(sweep.back(), 256);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_EQ(sweep[i], sweep[i - 1] * 2);
}

TEST(Workload, ToStringCoverage) {
  EXPECT_STREQ(to_string(OpType::kRead), "read");
  EXPECT_STREQ(to_string(Pattern::kMixed), "mixed");
  EXPECT_STREQ(to_string(Pattern::kCreate), "create");
}

}  // namespace
}  // namespace dpc::sim
