#include "nvme/spec.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace dpc::nvme {
namespace {

TEST(NvmeSpec, OpcodeBitLayoutMatchesPaper) {
  // §3.2: opcode 0xA3 = vendor bit (1b) | function 01000b | bidir 11b.
  NvmeFsCmd cmd;
  const Sqe sqe = encode_nvme_fs(cmd);
  const std::uint8_t opc = opcode_of(sqe);
  EXPECT_EQ(opc, 0xA3);
  EXPECT_EQ(opc & 0x3, 0x3);          // bits [1:0] = 11b (bidirectional)
  EXPECT_EQ((opc >> 2) & 0x1F, 0x8);  // bits [6:2] = 01000b
  EXPECT_EQ(opc >> 7, 1);             // bit 7 = vendor
}

TEST(NvmeSpec, DispatchBitIsDw0Bit10) {
  NvmeFsCmd cmd;
  cmd.target = DispatchTarget::kDistributed;
  const Sqe sqe = encode_nvme_fs(cmd);
  EXPECT_TRUE(sqe.dw0 & (1u << 10));
  cmd.target = DispatchTarget::kStandalone;
  EXPECT_FALSE(encode_nvme_fs(cmd).dw0 & (1u << 10));
}

TEST(NvmeSpec, PsdtBitsAre14And15) {
  NvmeFsCmd cmd;
  cmd.write_psdt = Psdt::kSgl;
  EXPECT_TRUE(encode_nvme_fs(cmd).dw0 & (1u << 14));
  cmd.write_psdt = Psdt::kPrp;
  cmd.read_psdt = Psdt::kSgl;
  EXPECT_TRUE(encode_nvme_fs(cmd).dw0 & (1u << 15));
  // Default is PRP on both (paper: "we use PRP as the default structure").
  NvmeFsCmd def;
  EXPECT_FALSE(encode_nvme_fs(def).dw0 & (3u << 14));
}

TEST(NvmeSpec, HeaderLensPackIntoDw13) {
  NvmeFsCmd cmd;
  cmd.write_hdr_len = 0x1234;
  cmd.read_hdr_len = 0xBEEF;
  const Sqe sqe = encode_nvme_fs(cmd);
  EXPECT_EQ(sqe.dw13 & 0xFFFF, 0x1234u);   // WH_len low
  EXPECT_EQ(sqe.dw13 >> 16, 0xBEEFu);      // RH_len high
}

TEST(NvmeSpec, DecodeRejectsForeignOpcode) {
  Sqe sqe;
  sqe.dw0 = 0x01;  // normal NVMe write opcode
  EXPECT_FALSE(is_nvme_fs(sqe));
  EXPECT_THROW(decode_nvme_fs(sqe), dpc::CheckFailure);
}

TEST(NvmeSpec, CqePhaseAndStatus) {
  const Cqe cqe = make_cqe(42, Status::kFsError, true, 1234, 7, 3);
  EXPECT_EQ(cqe.cid, 42);
  EXPECT_TRUE(phase_of(cqe));
  EXPECT_EQ(status_of(cqe), Status::kFsError);
  EXPECT_EQ(cqe.result, 1234u);
  EXPECT_EQ(cqe.sq_head, 7);
  EXPECT_EQ(cqe.sq_id, 3);
  const Cqe cqe2 = make_cqe(1, Status::kSuccess, false, 0, 0, 0);
  EXPECT_FALSE(phase_of(cqe2));
}

TEST(NvmeSpec, ErrorStatusesRoundTripThroughCqe) {
  // The failure model's two transient statuses survive encode/decode.
  const Cqe a = make_cqe(7, Status::kDataTransferError, true, 0, 0, 0);
  EXPECT_EQ(status_of(a), Status::kDataTransferError);
  const Cqe b = make_cqe(8, Status::kAbortedByRequest, true, 0, 0, 0);
  EXPECT_EQ(status_of(b), Status::kAbortedByRequest);
}

TEST(NvmeSpec, TenantPacksIntoDw10TopByte) {
  // DW10[31:24] carries the tenant id; Write_len keeps the low 24 bits
  // exactly — neither field bleeds into the other.
  NvmeFsCmd cmd;
  cmd.inline_op = InlineOp::kWrite;
  cmd.tenant = 0xA5;
  cmd.write_len = kMaxWriteLen;  // all 24 payload bits set
  const Sqe sqe = encode_nvme_fs(cmd);
  EXPECT_EQ(sqe.write_len >> 24, 0xA5u);
  EXPECT_EQ(tenant_of(sqe), 0xA5);
  const NvmeFsCmd back = decode_nvme_fs(sqe);
  EXPECT_EQ(back.tenant, 0xA5);
  EXPECT_EQ(back.write_len, kMaxWriteLen);
  EXPECT_TRUE(is_retryable(Status::kThrottled));
}

TEST(NvmeSpec, RetryableStatusClassification) {
  // Transient transport faults and host-initiated aborts are retryable;
  // success, FS-level errors, and malformed-command rejections are not.
  EXPECT_TRUE(is_retryable(Status::kDataTransferError));
  EXPECT_TRUE(is_retryable(Status::kAbortedByRequest));
  EXPECT_FALSE(is_retryable(Status::kSuccess));
  EXPECT_FALSE(is_retryable(Status::kFsError));
  EXPECT_FALSE(is_retryable(Status::kInvalidOpcode));
  EXPECT_FALSE(is_retryable(Status::kInvalidField));
}

using RoundTripParam =
    std::tuple<DispatchTarget, InlineOp, std::uint64_t, std::uint64_t>;

class NvmeFsRoundTrip : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(NvmeFsRoundTrip, EncodeDecodeIdentity) {
  const auto [target, op, inode, offset] = GetParam();
  NvmeFsCmd cmd;
  cmd.target = target;
  cmd.inline_op = op;
  cmd.cid = 0x7F1;
  cmd.inode = inode;
  cmd.offset = offset;
  cmd.prp_write1 = 0x1000;
  cmd.prp_write2 = 0x2000;
  cmd.prp_read1 = 0x3000;
  cmd.prp_read2 = 0x4000;
  cmd.write_len = 8192;
  cmd.read_len = 4096;
  cmd.write_hdr_len = 48;
  cmd.read_hdr_len = 300;

  const NvmeFsCmd back = decode_nvme_fs(encode_nvme_fs(cmd));
  EXPECT_EQ(back.target, cmd.target);
  EXPECT_EQ(back.inline_op, cmd.inline_op);
  EXPECT_EQ(back.cid, cmd.cid);
  EXPECT_EQ(back.inode, cmd.inode);
  EXPECT_EQ(back.offset, cmd.offset);
  EXPECT_EQ(back.prp_write1, cmd.prp_write1);
  EXPECT_EQ(back.prp_write2, cmd.prp_write2);
  EXPECT_EQ(back.prp_read1, cmd.prp_read1);
  EXPECT_EQ(back.prp_read2, cmd.prp_read2);
  EXPECT_EQ(back.write_len, cmd.write_len);
  EXPECT_EQ(back.read_len, cmd.read_len);
  EXPECT_EQ(back.write_hdr_len, cmd.write_hdr_len);
  EXPECT_EQ(back.read_hdr_len, cmd.read_hdr_len);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NvmeFsRoundTrip,
    ::testing::Combine(
        ::testing::Values(DispatchTarget::kStandalone,
                          DispatchTarget::kDistributed),
        ::testing::Values(InlineOp::kNone, InlineOp::kRead, InlineOp::kWrite,
                          InlineOp::kFsync, InlineOp::kTruncate),
        ::testing::Values(0ULL, 1ULL, 0xFFFFFFFFULL, 0x123456789ABCDEFULL),
        ::testing::Values(0ULL, 4096ULL, 0xFFFFFFFF0000ULL)));

}  // namespace
}  // namespace dpc::nvme
