// End-to-end chaos tests: the full DPC stack (and the DFS client on its
// own) must survive injected faults at every site with zero data
// corruption — recovery (NVMe retries, KV backoff, EC degraded reads,
// circuit breaking, flush re-queue) is exercised, and readback checksums
// are compared against goldens written by the application.
//
// The master seed comes from DPC_FAULT_SEED (CI sweeps several); every
// schedule is deterministic per seed.
#include "core/dpc_system.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <map>
#include <vector>

#include "fault/injector.hpp"
#include "sim/calib.hpp"
#include "sim/rng.hpp"

namespace dpc::core {
namespace {

std::uint64_t chaos_seed() {
  return fault::FaultInjector::seed_from_env(42);
}

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

DpcOptions chaos_opts(fault::FaultInjector* fi) {
  DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 64, 8};
  o.cache_ctl.evict_low_water = 4;
  o.cache_ctl.evict_batch = 8;
  o.with_dfs = false;
  o.fault = fi;
  o.nvme_retry.max_attempts = 6;
  o.kv_retry.max_attempts = 6;
  // Faults come in bursts under high rates; keep the breaker out of the way
  // for the workload phases (the blackout test exercises it on purpose).
  o.kv_breaker.failure_threshold = 64;
  return o;
}

/// App-level retry: a transient failure after the stack's own bounded
/// retries is still retryable from the application.
std::uint64_t create_with_retry(DpcSystem& sys, const std::string& name) {
  for (int i = 0; i < 50; ++i) {
    const auto c = sys.create(kvfs::kRootIno, name);
    if (c.ok()) return c.ino;
    if (c.err == EEXIST) {
      // A previous attempt died after inserting the dentry: the file is
      // there, recover its ino.
      const auto l = sys.lookup(kvfs::kRootIno, name);
      if (l.ok()) return l.ino;
    }
  }
  return 0;
}

bool write_with_retry(DpcSystem& sys, std::uint64_t ino, std::uint64_t off,
                      std::span<const std::byte> src, bool direct) {
  for (int i = 0; i < 50; ++i)
    if (sys.write(ino, off, src, direct).ok()) return true;
  return false;
}

bool read_with_retry(DpcSystem& sys, std::uint64_t ino, std::uint64_t off,
                     std::span<std::byte> dst, bool direct) {
  for (int i = 0; i < 50; ++i)
    if (sys.read(ino, off, dst, direct).ok()) return true;
  return false;
}

void run_chaos_workload(DpcSystem& sys, fault::FaultInjector& fi,
                        std::uint64_t seed, int files) {
  // Golden copy of every file, updated only when the app-level write
  // succeeded — what the file system must hold, bit for bit.
  std::map<std::uint64_t, std::vector<std::byte>> golden;
  std::vector<std::uint64_t> inos;
  for (int i = 0; i < files; ++i) {
    const auto ino = create_with_retry(sys, "chaos" + std::to_string(i));
    ASSERT_NE(ino, 0u) << "create exhausted app-level retries";
    // Mix: small files, big files (>8 KB promotes to the big-file KV), and
    // direct-IO files; buffered files use whole 4K pages so the cache view
    // stays exact.
    const bool direct = i % 3 == 0;
    const std::size_t size = (i % 4 == 0) ? 16384 : 4096;
    const auto data = bytes(size, seed ^ static_cast<std::uint64_t>(i));
    ASSERT_TRUE(write_with_retry(sys, ino, 0, data, direct));
    golden[ino] = data;
    inos.push_back(ino);
  }

  // Overwrite a few files mid-chaos (in-place big-file updates).
  for (std::size_t i = 0; i < inos.size(); i += 5) {
    auto& g = golden[inos[i]];
    const auto patch = bytes(4096, seed ^ (0xbeef + i));
    ASSERT_TRUE(write_with_retry(sys, inos[i], 0, patch, i % 3 == 0));
    std::copy(patch.begin(), patch.end(), g.begin());
  }

  // fsync under chaos: flush failures re-queue dirty pages, never drop them.
  for (const auto ino : inos) {
    for (int t = 0; t < 50; ++t)
      if (sys.fsync(ino).ok()) break;
  }

  // Readback under chaos (cache-coherent view): zero corruption.
  for (const auto ino : inos) {
    auto& g = golden[ino];
    std::vector<std::byte> out(g.size());
    ASSERT_TRUE(read_with_retry(sys, ino, 0, out, /*direct=*/false));
    ASSERT_EQ(out, g) << "corruption under chaos, ino " << ino;
  }

  // Quiesce: disarm everything, flush the re-queued dirty pages, and verify
  // durability with direct reads (bypassing the cache entirely).
  fi.disarm(nvme::kFaultTgtDropCqe);
  fi.disarm(nvme::kFaultTgtErrorCqe);
  fi.disarm(kv::RemoteKv::kFaultSite);
  fi.disarm(cache::kFaultFlushWritePage);
  for (const auto ino : inos) ASSERT_TRUE(sys.fsync(ino).ok());
  for (const auto ino : inos) {
    auto& g = golden[ino];
    std::vector<std::byte> out(g.size());
    ASSERT_TRUE(read_with_retry(sys, ino, 0, out, /*direct=*/true));
    ASSERT_EQ(out, g) << "post-recovery divergence, ino " << ino;
  }
}

TEST(ChaosIntegration, KvfsSurvivesFaultsAtEverySitePumpMode) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed(), &fault_reg);
  DpcSystem sys(chaos_opts(&fi));
  // Arm only after construction so mkfs/root setup runs clean. Dropped
  // CQEs are wall-clock-free in pump mode (SQ-drain loss detection), so a
  // beefy rate is fine — and guarantees the abort path runs per seed.
  fi.arm(nvme::kFaultTgtDropCqe, 0.05);
  fi.arm(nvme::kFaultTgtErrorCqe, 0.02);
  fi.arm(kv::RemoteKv::kFaultSite, 0.03);
  fi.arm(cache::kFaultFlushWritePage, 0.2);

  run_chaos_workload(sys, fi, chaos_seed(), 24);

  // The chaos actually happened and recovery actually ran.
  EXPECT_GT(fault_reg.counter("fault/injected").value(), 0u);
  EXPECT_GT(sys.metrics().counter("retry/attempts").value(), 0u);
  EXPECT_GT(sys.metrics().counter("cache.ctl/flush_fails").value(), 0u);
  // Dropped CQEs were detected and the CIDs reclaimed via abort.
  EXPECT_GT(sys.metrics().counter("nvme.ini/timeouts").value(), 0u);
}

TEST(ChaosIntegration, KvfsSurvivesFaultsWorkerMode) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0x777, &fault_reg);
  auto opts = chaos_opts(&fi);
  opts.dpu_workers = 2;
  // Real wall-clock deadline per command: keep it short so dropped CQEs
  // cost ~20 ms each, not the 100 ms production default.
  opts.nvme_timeout_ms = 20;
  DpcSystem sys(opts);
  sys.start_dpu();
  fi.arm(nvme::kFaultTgtDropCqe, 0.02);
  fi.arm(nvme::kFaultTgtErrorCqe, 0.02);
  fi.arm(kv::RemoteKv::kFaultSite, 0.02);

  run_chaos_workload(sys, fi, chaos_seed(), 12);
  sys.stop_dpu();

  EXPECT_GT(fault_reg.counter("fault/injected").value(), 0u);
  EXPECT_GT(sys.metrics().counter("retry/attempts").value(), 0u);
}

// ---------------------------------------------------- data corruption ---
//
// Bit-rot, torn writes and in-flight payload damage at every checksummed
// site. The integrity envelope's contract: every readback either matches
// the application's golden copy bit-for-bit or comes back as a *typed* EIO
// — silent corruption is the one outcome that must never happen.

void arm_corruption_sites(fault::FaultInjector& fi) {
  fi.arm(kv::kFaultKvBitRot, 0.02);
  fi.arm(kv::kFaultKvTornWrite, 0.01);
  fi.arm(nvme::kFaultTgtCorruptWrite, 0.01);
  fi.arm(nvme::kFaultTgtCorruptRead, 0.02);
  fi.arm(cache::kFaultFlushCorruptPage, 0.05);
}

void disarm_corruption_sites(fault::FaultInjector& fi) {
  fi.disarm(kv::kFaultKvBitRot);
  fi.disarm(kv::kFaultKvTornWrite);
  fi.disarm(nvme::kFaultTgtCorruptWrite);
  fi.disarm(nvme::kFaultTgtCorruptRead);
  fi.disarm(cache::kFaultFlushCorruptPage);
}

void run_corruption_workload(DpcSystem& sys, std::uint64_t seed, int files) {
  // Golden copies of the files whose every write was acknowledged. A file
  // whose create/write exhausted app-level retries (its metadata or data
  // keys rotted mid-op) is skipped — typed failure, not corruption.
  std::map<std::uint64_t, std::vector<std::byte>> golden;
  for (int i = 0; i < files; ++i) {
    const auto ino = create_with_retry(sys, "rot" + std::to_string(i));
    if (ino == 0) continue;
    const bool direct = i % 3 == 0;
    const auto data = bytes(4096, seed ^ static_cast<std::uint64_t>(i));
    if (!write_with_retry(sys, ino, 0, data, direct)) continue;
    golden[ino] = data;
  }
  ASSERT_FALSE(golden.empty()) << "every single write rotted away";

  int clean = 0, eio = 0;
  for (const auto& [ino, g] : golden) {
    std::vector<std::byte> out(g.size());
    Io last;
    bool got = false;
    for (int t = 0; t < 50 && !got; ++t) {
      last = sys.read(ino, 0, out, /*direct=*/false);
      got = last.ok();
    }
    if (!got) {
      // Persistent rot in the value at rest: detected, surfaced as EIO.
      EXPECT_EQ(last.err, EIO) << "untyped failure, ino " << ino;
      ++eio;
      continue;
    }
    ASSERT_EQ(out, g) << "SILENT corruption, ino " << ino;
    ++clean;
  }
  // The envelope must let most traffic through (transient in-flight damage
  // is retried clean); rot at rest may legitimately EIO.
  EXPECT_GT(clean, 0);
}

TEST(ChaosIntegration, ZeroSilentCorruptionUnderBitRotPumpMode) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0xc0, &fault_reg);
  auto opts = chaos_opts(&fi);
  opts.enable_scrubber = true;
  opts.scrub.items_per_pass = 256;
  DpcSystem sys(opts);
  arm_corruption_sites(fi);

  run_corruption_workload(sys, chaos_seed(), 24);

  // The chaos really fired…
  EXPECT_GT(fault_reg.counter("fault/injected").value(), 0u);
  // …and at least one checksum layer caught damage in the act.
  auto& m = sys.metrics();
  const auto caught = m.counter("nvme.host/integrity_errors").value() +
                      m.counter("nvme.tgt/integrity_errors").value() +
                      m.counter("kv.remote/corrupt_reads").value() +
                      m.counter("cache.ctl/flush_integrity_fails").value();
  EXPECT_GT(caught, 0u);

  // Quiesce, then let the scrubber sweep what rotted at rest: everything
  // it detects must be accounted repaired or unrecoverable.
  disarm_corruption_sites(fi);
  ASSERT_NE(sys.scrubber(), nullptr);
  sys.scrubber()->scrub_all();
  const auto t = sys.scrubber()->totals();
  EXPECT_EQ(t.detected, t.repaired + t.unrecoverable);

  // Post-scrub readback sees the same contract: exact bytes or EIO.
  run_corruption_workload(sys, chaos_seed() ^ 1, 6);
}

TEST(ChaosIntegration, ZeroSilentCorruptionWorkerMode) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0xc1, &fault_reg);
  auto opts = chaos_opts(&fi);
  opts.dpu_workers = 2;
  opts.nvme_timeout_ms = 20;
  opts.enable_scrubber = true;
  opts.scrub.items_per_pass = 64;
  opts.scrub.pace = sim::micros(200.0);
  DpcSystem sys(opts);
  sys.start_dpu();
  arm_corruption_sites(fi);

  run_corruption_workload(sys, chaos_seed() ^ 2, 12);

  disarm_corruption_sites(fi);
  sys.stop_dpu();
  EXPECT_GT(fault_reg.counter("fault/injected").value(), 0u);
  // Whatever the background scrubber saw, the books balance.
  auto& m = sys.metrics();
  EXPECT_EQ(m.counter("scrub/detected").value(),
            m.counter("scrub/repaired").value() +
                m.counter("scrub/unrecoverable").value());
}

TEST(ChaosIntegration, BreakerOpensUnderBlackoutAndRecovers) {
  obs::Registry reg;
  fault::FaultInjector fi(chaos_seed(), &reg);
  kv::KvStore store(4);
  fault::CircuitBreaker::Config bcfg;
  bcfg.failure_threshold = 8;
  bcfg.probe_interval = 16;
  kv::RemoteKv rkv(store, &fi, &reg, {}, bcfg);

  const auto payload = bytes(64, 1);

  // Total KV blackout: every op times out; the breaker must open and
  // convert hammering into fast-fails.
  fi.arm(kv::RemoteKv::kFaultSite, 1.0);
  int until_open = 0;
  while (rkv.breaker_state() != fault::CircuitBreaker::State::kOpen) {
    const auto r = rkv.put("blackout", payload);
    EXPECT_FALSE(r.ok());
    ASSERT_LT(++until_open, 100) << "breaker never opened";
  }
  EXPECT_GT(reg.counter("breaker/opens").value(), 0u);
  EXPECT_GT(reg.counter("retry/attempts").value(), 0u);

  // Fast-fail while open: no injector draws consumed, kUnavailable out.
  const auto draws_before = fi.draws(kv::RemoteKv::kFaultSite);
  const auto r = rkv.put("blackout", payload);
  EXPECT_EQ(r.err, kv::RemoteErr::kUnavailable);
  EXPECT_EQ(fi.draws(kv::RemoteKv::kFaultSite), draws_before);

  // Backend heals: the periodic probe closes the breaker and ops flow.
  fi.arm(kv::RemoteKv::kFaultSite, 0.0);
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i)
    recovered = rkv.put("healed", payload).ok();
  EXPECT_TRUE(recovered);
  EXPECT_EQ(rkv.breaker_state(), fault::CircuitBreaker::State::kClosed);
  EXPECT_GT(reg.counter("breaker/probes").value(), 0u);
  EXPECT_GT(reg.counter("breaker/closes").value(), 0u);
  EXPECT_TRUE(rkv.get("healed").ok());
}

TEST(ChaosIntegration, EcDegradedReadsReconstructThroughClient) {
  obs::Registry reg;
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, nullptr, &reg);
  dfs::DfsClient client(1, mds, ds, dfs::ClientConfig::optimized(), &reg);

  const auto c = client.create("/ec-file", 64 * 1024);
  ASSERT_TRUE(c.ok());
  const auto data = bytes(64 * 1024, chaos_seed());
  ASSERT_TRUE(client.write(c.ino, 0, data).ok());

  // Knock out each data server in turn: every read must still return the
  // exact bytes, reconstructing from survivors when the failed server held
  // one of the stripe's shards.
  for (int s = 0; s < sim::calib::kDataServers; ++s) {
    ds.fail_server(s);
    std::vector<std::byte> out(data.size());
    const auto r = client.read(c.ino, 0, out);
    ASSERT_TRUE(r.ok()) << "degraded read failed, server " << s;
    ASSERT_EQ(out, data) << "degraded read corrupt, server " << s;
    ds.heal_server(s);
  }
  EXPECT_GT(reg.counter("ec/degraded_reads").value(), 0u);
  EXPECT_GT(reg.counter("dfs.ds/failed_reads").value(), 0u);

  // Healed cluster serves normally again.
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(client.read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(ChaosIntegration, EcDegradedReadsUnderInjectedShardFaults) {
  obs::Registry reg;
  fault::FaultInjector fi(chaos_seed(), &reg);
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, &fi, &reg);
  dfs::DfsClient client(1, mds, ds, dfs::ClientConfig::optimized(), &reg);

  const auto c = client.create("/flaky", 256 * 1024);
  ASSERT_TRUE(c.ok());
  const auto data = bytes(256 * 1024, chaos_seed() ^ 0xf1a);
  ASSERT_TRUE(client.write(c.ino, 0, data).ok());

  // Transient per-shard read faults: the client absorbs them via
  // reconstruction (and bounded retries when >m shards fault at once).
  fi.arm(dfs::kFaultDsReadShard, 0.05);
  int ok_reads = 0;
  for (int i = 0; i < 40; ++i) {
    std::vector<std::byte> out(data.size());
    const auto r = client.read(c.ino, 0, out);
    if (!r.ok()) {
      EXPECT_TRUE(r.retryable());
      continue;
    }
    ASSERT_EQ(out, data) << "corrupt read under shard faults";
    ++ok_reads;
  }
  EXPECT_GT(ok_reads, 0);
  fi.disarm(dfs::kFaultDsReadShard);

  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(client.read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(ChaosIntegration, DelegationContentionRetriesThenYieldsBusy) {
  obs::Registry reg;
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, nullptr, &reg);

  // Holder refuses recall (delegation_recall = false): the writer's retry
  // loop runs dry and surfaces a *typed* transient EAGAIN.
  auto holder_cfg = dfs::ClientConfig::optimized();
  holder_cfg.delegation_recall = false;
  dfs::DfsClient holder(1, mds, ds, holder_cfg, &reg);

  auto writer_cfg = dfs::ClientConfig::optimized();
  writer_cfg.retry.max_attempts = 3;
  dfs::DfsClient writer(2, mds, ds, writer_cfg, &reg);

  const auto c = holder.create("/contended", 16 * 1024);
  ASSERT_TRUE(c.ok());
  const auto data = bytes(4096, 3);
  ASSERT_TRUE(holder.write(c.ino, 0, data).ok());
  ASSERT_TRUE(holder.holds_delegation(c.ino));

  const auto w = writer.write(c.ino, 0, data);
  EXPECT_EQ(w.err, EAGAIN);
  EXPECT_EQ(w.transient, fault::Transient::kBusy);
  EXPECT_TRUE(w.retryable());
  EXPECT_GT(reg.counter("dfs.client/delegation_retries").value(), 0u);

  // A lease-abiding holder hands the delegation back on recall: the same
  // contended write now succeeds within the retry budget.
  auto polite_cfg = dfs::ClientConfig::optimized();
  polite_cfg.delegation_recall = true;
  dfs::DfsClient polite(3, mds, ds, polite_cfg, &reg);
  const auto c2 = polite.create("/recallable", 16 * 1024);
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(polite.write(c2.ino, 0, data).ok());
  ASSERT_TRUE(polite.holds_delegation(c2.ino));
  EXPECT_TRUE(writer.write(c2.ino, 0, data).ok());
}

}  // namespace
}  // namespace dpc::core
