#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace dpc {
namespace {

TEST(ObsRegistry, CounterGetOrCreateIsStable) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x/ops");
  obs::Counter& b = reg.counter("x/ops");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.load(), 3u);
}

TEST(ObsRegistry, CounterIsAtomicDropIn) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("x/ops");
  c.fetch_add(2, std::memory_order_relaxed);
  ++c;
  c += 4;
  EXPECT_EQ(c.load(std::memory_order_relaxed), 7u);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 7u);
  c = 0;
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, ConcurrentIncrementsDontLose) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&reg] {
      // Each thread resolves the instrument itself: exercises the
      // shared-lock fast path racing the exclusive-create path.
      obs::Counter& c = reg.counter("race/hits");
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.counter("race/hits").load(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, GaugeTracksSignedValues) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("q/depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.load(), 7);
}

TEST(ObsRegistry, HistogramPercentiles) {
  obs::Registry reg;
  sim::Histogram& h = reg.histogram("lat_ns");
  for (int i = 1; i <= 1000; ++i) h.record(sim::Nanos{i * 1000});
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucketed percentiles are approximate: p50 within a bucket of 500us.
  const auto p50 = h.percentile(50).ns;
  EXPECT_GE(p50, 250 * 1000);
  EXPECT_LE(p50, 1000 * 1000);
  EXPECT_GE(h.percentile(99).ns, h.percentile(50).ns);
}

TEST(ObsRegistry, ResetZeroesButKeepsNames) {
  obs::Registry reg;
  reg.counter("a").add(5);
  reg.histogram("h").record(sim::Nanos{100});
  reg.reset();
  EXPECT_EQ(reg.counter("a").load(), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
}

TEST(ObsRegistry, JsonSnapshotShape) {
  obs::Registry reg;
  reg.counter("nvme.ini/submits").add(2);
  reg.gauge("cache/free_pages").set(7);
  reg.histogram("trace/submit_to_reap_ns").record(sim::Nanos{1234});
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"nvme.ini/submits\":2"), std::string::npos);
  EXPECT_NE(j.find("\"cache/free_pages\":7"), std::string::npos);
  EXPECT_NE(j.find("\"trace/submit_to_reap_ns\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"p99_ns\""), std::string::npos);
  // Balanced braces (cheap well-formedness check without a JSON parser).
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
}

TEST(ObsRegistry, JsonEscapesStrings) {
  obs::Registry reg;
  reg.counter("weird\"name\\x").add(1);
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("weird\\\"name\\\\x"), std::string::npos);
}

TEST(ObsTrace, StagesProduceSpans) {
  obs::Registry reg;
  obs::QueueTraces traces(reg, /*depth=*/4);
  const std::uint16_t cid = 2;
  traces.stamp(cid, obs::Stage::kHostSubmit);
  traces.stamp(cid, obs::Stage::kTgtFetch);
  traces.stamp(cid, obs::Stage::kDispatch);
  traces.stamp(cid, obs::Stage::kBackendDone);
  traces.stamp(cid, obs::Stage::kCqePost);
  traces.stamp(cid, obs::Stage::kHostReap);
  traces.finish(cid);
  EXPECT_EQ(reg.histogram("trace/submit_to_reap_ns").count(), 1u);
  EXPECT_EQ(reg.histogram("trace/dispatch_to_backend_ns").count(), 1u);
  // finish() clears the slot: a second finish records nothing.
  traces.finish(cid);
  EXPECT_EQ(reg.histogram("trace/submit_to_reap_ns").count(), 1u);
}

TEST(ObsTrace, PartialStampsRecordOnlyCompleteSpans) {
  obs::Registry reg;
  obs::QueueTraces traces(reg, 4);
  traces.stamp(1, obs::Stage::kHostSubmit);
  traces.stamp(1, obs::Stage::kHostReap);  // no DPU-side stamps
  traces.finish(1);
  EXPECT_EQ(reg.histogram("trace/submit_to_reap_ns").count(), 1u);
  EXPECT_EQ(reg.histogram("trace/submit_to_fetch_ns").count(), 0u);
  EXPECT_EQ(reg.histogram("trace/dispatch_to_backend_ns").count(), 0u);
}

TEST(ObsTrace, OutOfRangeCidIsDropped) {
  obs::Registry reg;
  obs::QueueTraces traces(reg, 2);
  traces.stamp(9, obs::Stage::kHostSubmit);  // beyond depth: no-op
  traces.finish(9);
  EXPECT_EQ(reg.histogram("trace/submit_to_reap_ns").count(), 0u);
}

}  // namespace
}  // namespace dpc
