// Concurrency tests for the lock-free & sharded hot paths:
//
//   * a seqlock torn-read unit test that forces the retry/fallback path by
//     planting an odd (writer-in-flight) generation word,
//   * TSan-clean reader/writer stress on the cache hash table asserting no
//     torn page is ever observed,
//   * sharded-KvStore concurrent stress,
//   * doorbell/burst-coalescing assertions on the batched NVMe submit path,
//     and a two-submitter liveness test for the queue-full prefix publish.
//
// All of these run under every ci.sh sanitizer leg; the TSan leg is the one
// that proves the seqlock protocol race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cache/host_plane.hpp"
#include "cache/layout.hpp"
#include "core/virtual_client.hpp"
#include "kv/kv_store.hpp"
#include "pcie/dma.hpp"

namespace dpc {
namespace {

using cache::CacheGeometry;
using cache::CacheLayout;
using cache::CacheMode;
using cache::HostCachePlane;

std::vector<std::byte> page(std::uint8_t fill) {
  return std::vector<std::byte>(4096, static_cast<std::byte>(fill));
}

struct CacheRig {
  CacheRig()
      : host("host", 64 << 20),
        alloc(host),
        layout(CacheGeometry{4096, CacheMode::kWrite, 64, 8}, alloc),
        plane(host, layout) {}

  /// Walks the bucket chain to the entry holding <inode, lpn>.
  std::uint32_t entry_of(std::uint64_t inode, std::uint64_t lpn) {
    const std::uint32_t bucket = layout.bucket_of(inode, lpn);
    std::uint32_t idx = layout.bucket_head_entry(bucket);
    while (idx != cache::kEndOfList) {
      using EF = CacheLayout::EntryField;
      if (host.load<std::uint64_t>(layout.entry_field_off(idx, EF::kInode)) ==
              inode &&
          host.load<std::uint64_t>(layout.entry_field_off(idx, EF::kLpn)) ==
              lpn) {
        return idx;
      }
      idx = host.load<std::uint32_t>(layout.entry_field_off(idx, EF::kNext));
    }
    ADD_FAILURE() << "entry not found for inode=" << inode << " lpn=" << lpn;
    return cache::kEndOfList;
  }

  std::atomic_ref<std::uint32_t> seq_word(std::uint32_t entry) {
    return host.atomic_u32(
        layout.entry_field_off(entry, CacheLayout::EntryField::kSeq));
  }

  pcie::MemoryRegion host;
  pcie::RegionAllocator alloc;
  CacheLayout layout;
  HostCachePlane plane;
};

// Mirrors kLockFreeReadAttempts in host_plane.cpp: the number of lock-free
// probes before the read takes the locked fallback.
constexpr std::uint64_t kReadAttempts = 4;

TEST(SeqlockTornRead, OddSeqForcesRetryThenLockedFallback) {
  CacheRig rig;
  ASSERT_EQ(rig.plane.write(1, 0, page(0xAB)), HostCachePlane::WriteResult::kOk);
  const std::uint32_t entry = rig.entry_of(1, 0);
  ASSERT_NE(entry, cache::kEndOfList);

  // Plant an odd generation word: to a reader this is a writer caught
  // mid-mutation, so every lock-free probe must refuse the copy.
  const std::uint32_t even = rig.seq_word(entry).load();
  ASSERT_EQ(even % 2, 0u) << "entry seq must be stable after write()";
  rig.seq_word(entry).store(even + 1);

  rig.plane.reset_stats();
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(rig.plane.read(1, 0, out));  // served by the locked fallback
  EXPECT_EQ(out[0], std::byte{0xAB});
  EXPECT_EQ(rig.plane.stats().seqlock_retries.load(), kReadAttempts);
  EXPECT_EQ(rig.plane.stats().locked_fallbacks.load(), 1u);
  EXPECT_EQ(rig.plane.stats().lockfree_hits.load(), 0u);

  // Writer "finishes": the word returns to even and the lock-free path
  // serves the very next read without touching a lock word.
  rig.seq_word(entry).store(even + 2);
  rig.plane.reset_stats();
  ASSERT_TRUE(rig.plane.read(1, 0, out));
  EXPECT_EQ(rig.plane.stats().lockfree_hits.load(), 1u);
  EXPECT_EQ(rig.plane.stats().locked_fallbacks.load(), 0u);
}

TEST(SeqlockTornRead, SeqChangeBetweenProbesRetries) {
  CacheRig rig;
  ASSERT_EQ(rig.plane.write(1, 0, page(0x5A)), HostCachePlane::WriteResult::kOk);
  const std::uint32_t entry = rig.entry_of(1, 0);

  // A full writer generation (seq += 2) between the reader's two fence
  // loads also invalidates the copy; here the entry is stable before the
  // read, so the read must succeed lock-free in one probe and the bumped
  // generation must not be mistaken for instability.
  rig.seq_word(entry).store(rig.seq_word(entry).load() + 2);
  rig.plane.reset_stats();
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(rig.plane.read(1, 0, out));
  EXPECT_EQ(out[0], std::byte{0x5A});
  EXPECT_EQ(rig.plane.stats().seqlock_retries.load(), 0u);
  EXPECT_EQ(rig.plane.stats().lockfree_hits.load(), 1u);
}

TEST(CacheHashStress, ConcurrentReadersAndWritersSeeNoTornPages) {
  CacheRig rig;
  constexpr std::uint64_t kPages = 8;  // all land in a few buckets
  for (std::uint64_t lpn = 0; lpn < kPages; ++lpn)
    ASSERT_EQ(rig.plane.write(1, lpn, page(1)),
              HostCachePlane::WriteResult::kOk);

  constexpr int kWriterRounds = 400;
  constexpr int kReaderRounds = 1200;
  std::atomic<bool> torn{false};

  std::thread writer([&] {
    for (int i = 0; i < kWriterRounds; ++i) {
      const auto fill = static_cast<std::uint8_t>(1 + (i % 250));
      rig.plane.write(1, static_cast<std::uint64_t>(i) % kPages, page(fill));
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::vector<std::byte> out(4096);
      for (int i = 0; i < kReaderRounds; ++i) {
        const std::uint64_t lpn =
            static_cast<std::uint64_t>(i + t * 3) % kPages;
        if (!rig.plane.read(1, lpn, out)) continue;  // mid-eviction
        const std::byte first = out[0];
        for (const std::byte b : out) {
          if (b != first) {
            torn.store(true);
            return;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  EXPECT_FALSE(torn.load()) << "a reader observed a half-written page";
  // The stress must actually have exercised the lock-free path.
  EXPECT_GT(rig.plane.stats().lockfree_hits.load(), 0u);
}

TEST(ShardedKvStress, ConcurrentPutGetScanKeepsValuesIntact) {
  kv::KvStore kv(8);
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  constexpr int kKeysPerThread = 32;
  std::atomic<bool> bad{false};

  auto value_for = [](int t, int round) {
    std::vector<std::byte> v(64 + round % 7,
                             static_cast<std::byte>(0x10 + t));
    return v;
  };

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "/k" + std::to_string(i % kKeysPerThread);
        kv.put(key, value_for(t, i));
        const auto got = kv.get(key);
        // Keys are per-thread, so the readback must be one of this
        // thread's own values: right fill byte, plausible length.
        if (!got || got->empty() ||
            (*got)[0] != static_cast<std::byte>(0x10 + t)) {
          bad.store(true);
          return;
        }
      }
    });
  }
  std::thread scanner([&] {
    for (int i = 0; i < 50; ++i) {
      kv.scan_prefix("t0/", [](std::string_view, const kv::Bytes&) {
        return true;
      });
    }
  });
  for (auto& w : workers) w.join();
  scanner.join();

  EXPECT_FALSE(bad.load());
  EXPECT_EQ(kv.size(),
            static_cast<std::size_t>(kThreads) * kKeysPerThread);
}

TEST(NvmeBatchSubmit, CoalescesToOneDoorbellEachWayPerBatch) {
  core::NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 32;
  o.max_io = 1 << 16;
  core::NvmeRawHarness h(o);
  const std::vector<std::byte> payload(4096, std::byte{0x77});

  obs::Counter& sq_dbs = h.metrics().counter("nvme.ini/sq_doorbells");
  obs::Counter& fetch_bursts = h.metrics().counter("nvme.tgt/sqe_fetch_bursts");
  obs::Counter& cqe_bursts = h.metrics().counter("nvme.tgt/cqe_post_bursts");

  const std::uint64_t db0 = h.counters().ops(pcie::DmaClass::kDoorbell);
  const std::uint64_t sq0 = sq_dbs.load();
  const std::uint64_t fb0 = fetch_bursts.load();
  const std::uint64_t cb0 = cqe_bursts.load();

  ASSERT_TRUE(h.do_write_batch(0, 16, payload));

  // One SQ doorbell publishes all 16 SQEs; the TGT fetches them in one
  // descriptor burst and posts all 16 CQEs as one coalesced transaction;
  // the INI acknowledges the whole reap with one CQ-head doorbell. Net:
  // exactly two doorbell MMIOs for the entire batch, both directions.
  EXPECT_EQ(sq_dbs.load() - sq0, 1u);
  EXPECT_EQ(fetch_bursts.load() - fb0, 1u);
  EXPECT_EQ(cqe_bursts.load() - cb0, 1u);
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kDoorbell) - db0, 2u);
}

TEST(NvmeBatchSubmit, SingleOpDmaBudgetUnchangedByBatching) {
  // The Fig-4 invariant the batching must not disturb: a lone 8 KiB write
  // still costs exactly 3 descriptor DMAs and 1 data DMA (the same pinned
  // numbers as test_nvme_queue's EightKWriteCostsExactlyFourDmas).
  core::NvmeRawHarness h(core::NvmeRawHarness::Options{1, 16, 1 << 16});
  const std::vector<std::byte> payload(8192, std::byte{0x33});
  const std::uint64_t desc0 = h.counters().ops(pcie::DmaClass::kDescriptor);
  const std::uint64_t data0 = h.counters().ops(pcie::DmaClass::kData);
  ASSERT_TRUE(h.do_write_batch(0, 1, payload));
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kDescriptor) - desc0, 3u);
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kData) - data0, 1u);
}

TEST(NvmeBatchSubmit, BatchWiderThanQueuePublishesPrefixAndStaysLive) {
  // A 40-command batch on a depth-32 queue (31 usable cids) cannot be in
  // flight all at once: submit_batch must hit the queue-full wait with
  // SQEs already produced. Its prefix-publish-before-wait keeps those
  // drainable; a completer thread pumps the TGT and releases completions —
  // the role the DPU-side completion context plays in a real driver. If
  // the prefix were not published before blocking, nothing would ever
  // complete and this test would hang.
  core::NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 32;
  o.max_io = 1 << 16;
  core::NvmeRawHarness h(o);
  const std::vector<std::byte> payload(4096, std::byte{0x44});
  constexpr int kTotal = 40;

  obs::Counter& sq_dbs = h.metrics().counter("nvme.ini/sq_doorbells");
  const std::uint64_t sq0 = sq_dbs.load();

  std::atomic<int> completed{0};
  std::atomic<int> bad_status{0};
  std::thread completer([&] {
    nvme::IniDriver& ini = h.ini(0);
    while (completed.load() < kTotal) {
      h.pump(0);
      for (std::uint16_t cid = 0; cid < o.depth; ++cid) {
        if (auto c = ini.try_take(cid)) {
          if (c->status != nvme::Status::kSuccess) bad_status.fetch_add(1);
          ini.release(cid);
          completed.fetch_add(1);
        }
      }
      std::this_thread::yield();
    }
  });

  nvme::IniDriver::Request r;
  r.inline_op = nvme::InlineOp::kWrite;
  r.write_data = payload;
  const std::vector<nvme::IniDriver::Request> reqs(kTotal, r);
  const auto sub = h.ini(0).submit_batch(reqs);
  completer.join();

  EXPECT_EQ(sub.cids.size(), static_cast<std::size_t>(kTotal));
  EXPECT_EQ(completed.load(), kTotal);
  EXPECT_EQ(bad_status.load(), 0);
  // At least two SQ doorbells: one mid-batch prefix publish at the full
  // queue, one final — and far fewer than one per command.
  const std::uint64_t dbs = sq_dbs.load() - sq0;
  EXPECT_GE(dbs, 2u);
  EXPECT_LT(dbs, static_cast<std::uint64_t>(kTotal));
}

}  // namespace
}  // namespace dpc
