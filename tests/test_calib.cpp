// Internal-consistency checks on the calibration constants — relationships
// the whole reproduction leans on. If someone retunes calib.hpp and breaks
// a paper-level invariant, this is the test that names it.
#include <gtest/gtest.h>

#include "sim/calib.hpp"
#include "ssd/ssd.hpp"

namespace dpc::sim::calib {
namespace {

TEST(Calib, PcieTransferLinearAndAnchored) {
  EXPECT_EQ(pcie_transfer(0).ns, 0);
  // 15.7 GB/s: 1 MB ≈ 66.8 µs.
  EXPECT_NEAR(pcie_transfer(1 << 20).us(), 66.8, 0.5);
  EXPECT_NEAR(pcie_transfer(2 << 20).us(), 2 * pcie_transfer(1 << 20).us(),
              0.01);
}

TEST(Calib, WireEfficienciesBracketRaw) {
  // Efficiency-adjusted wire time must exceed the raw transfer, and the
  // upstream (host→DPU) direction is the less efficient one.
  const auto raw = pcie_transfer(1 << 20);
  const auto up = pcie_wire_demand(1 << 20, true);
  const auto down = pcie_wire_demand(1 << 20, false);
  EXPECT_GT(up.ns, raw.ns);
  EXPECT_GT(down.ns, raw.ns);
  EXPECT_GT(up.ns, down.ns);
  // The §4.1 bandwidth anchors fall out of these efficiencies.
  EXPECT_NEAR(kPcieGBps * kPcieUpEfficiency, 14.3, 0.1);
  EXPECT_NEAR(kPcieGBps * kPcieDownEfficiency, 15.1, 0.1);
}

TEST(Calib, SsdIopsCapsMatchFig7) {
  const double read_cap =
      kSsdReadChannels / (static_cast<double>(kSsdReadLat.ns) / 1e9);
  const double write_cap =
      kSsdWriteChannels / (static_cast<double>(kSsdWriteLat.ns) / 1e9);
  // Fig. 7: Ext4 read ~355K / write ~250K with the 8K second-block stream.
  EXPECT_NEAR(read_cap, 364e3, 5e3);
  EXPECT_NEAR(write_cap, 286e3, 5e3);
  // 8K service > 4K service (streaming term).
  EXPECT_GT(ssd::SsdModel::random_service(true, 8192).ns,
            ssd::SsdModel::random_service(true, 4096).ns);
}

TEST(Calib, DpuKvfsCapsMatchFig7Latency) {
  // X_max = cores / demand; Fig. 7's 256-thread latencies are N / X_max.
  const double read_cap =
      kDpuCores / (static_cast<double>(kDpuKvfsReadOp.ns) / 1e9);
  const double write_cap =
      kDpuCores / (static_cast<double>(kDpuKvfsWriteOp.ns) / 1e9);
  EXPECT_NEAR(256.0 / read_cap * 1e6, 363.0, 5.0);   // µs
  EXPECT_NEAR(256.0 / write_cap * 1e6, 411.0, 5.0);
}

TEST(Calib, OffloadMovesWorkOffHostOrdering) {
  // The whole paper in three inequalities.
  EXPECT_LT((kSyscallVfs + kFsAdapterOp + kHostNvmeCompletion).ns,
            (kSyscallVfs + kFuseLayerOp + kVirtioCompletion).ns)
      << "fs-adapter must be cheaper than the FUSE path";
  EXPECT_LT((kSyscallVfs + kFsAdapterOp + kHostNvmeCompletion +
             kHostDataPathOp)
                .ns,
            kNfsClientOp.ns)
      << "DPC host data path must undercut the kernel NFS stack";
  EXPECT_LT(kDpuEcNsPerByte, kHostEcNsPerByte)
      << "the DPU EC engine must beat host software EC";
}

TEST(Calib, KvBackendSlowerButWider) {
  // KVFS loses at low concurrency (latency) and wins at high (parallelism):
  // needs kv access latency > SSD latency, kv IOPS capacity > SSD capacity.
  EXPECT_GT(kKvReadLatency.ns, kSsdReadLat.ns);
  const double kv_cap =
      kKvServers / (static_cast<double>(kKvServerOp.ns) / 1e9);
  const double ssd_cap =
      kSsdReadChannels / (static_cast<double>(kSsdReadLat.ns) / 1e9);
  EXPECT_GT(kv_cap, ssd_cap);
}

TEST(Calib, Table2CapsOrdering) {
  // KVFS sequential caps (the KV store) must exceed the local drive's.
  EXPECT_GT(kKvReadGBps, kSsdSeqReadGBps);
  EXPECT_GT(kKvWriteGBps, kSsdSeqWriteGBps);
  // And stay under the PCIe link, or the transport would bottleneck first.
  EXPECT_LT(kKvReadGBps, kPcieGBps);
}

TEST(Calib, SchedulingSweetSpotIsThirtyTwo) {
  EXPECT_EQ(kDpuSchedSweetSpot, 32);  // "peak performance … at 32 threads"
}

}  // namespace
}  // namespace dpc::sim::calib
