// Multi-threaded IniDriver stress: cid exhaustion (the condition-variable
// queue-full path), CQ phase wrap, doorbell coalescing, and counter
// accounting under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/virtual_client.hpp"
#include "fault/injector.hpp"
#include "nvme/ini.hpp"
#include "nvme/queue_pair.hpp"
#include "nvme/tgt.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pcie/dma.hpp"

namespace dpc {
namespace {

using core::NvmeRawHarness;

/// Deterministic cv-path check: fill every cid, show a third submitter
/// blocks (queue_full_waits ticks) and only returns once release() frees a
/// slot.
TEST(NvmeIniStress, SubmitBlocksOnCidExhaustionUntilRelease) {
  pcie::MemoryRegion host("host", 8 << 20);
  pcie::RegionAllocator halloc(host);
  pcie::MemoryRegion dpu("dpu", 1 << 20);
  pcie::RegionAllocator dalloc(dpu);
  pcie::DmaEngine dma(host, dpu);

  nvme::QpConfig qc;
  qc.depth = 3;  // NVMe convention: depth-1 = 2 usable cids
  nvme::QueuePair qp(qc, halloc, dalloc);
  obs::Registry reg;
  obs::QueueTraces traces(reg, qc.depth);
  nvme::IniDriver ini(dma, qp, &traces);
  nvme::TgtDriver tgt(dma, qp,
                      [](const nvme::NvmeFsCmd&, std::span<const std::byte>,
                         std::span<std::byte>) {
                        return nvme::HandlerResult{};
                      },
                      &traces);

  nvme::IniDriver::Request req;
  req.inline_op = nvme::InlineOp::kFsync;
  const auto s1 = ini.submit(req);
  const auto s2 = ini.submit(req);
  ASSERT_EQ(ini.inflight(), 2);

  obs::Counter& waits = reg.counter("nvme.ini/queue_full_waits");
  std::atomic<bool> got3{false};
  std::uint16_t cid3 = 0;
  std::thread blocked([&] {
    const auto s3 = ini.submit(req);  // all cids busy: must block
    cid3 = s3.cid;
    got3.store(true, std::memory_order_release);
  });

  // The waiter announces itself via the counter before sleeping on the cv.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (waits.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GE(waits.load(), 1u) << "submitter never hit the queue-full path";
  EXPECT_FALSE(got3.load(std::memory_order_acquire));

  tgt.process_available();
  ini.wait(s1.cid);
  ini.release(s1.cid);  // wakes the blocked submitter
  blocked.join();
  EXPECT_TRUE(got3.load());

  tgt.process_available();
  ini.wait(s2.cid);
  ini.release(s2.cid);
  ini.wait(cid3);
  ini.release(cid3);
  EXPECT_EQ(ini.inflight(), 0);
  EXPECT_EQ(reg.counter("nvme.ini/submits").load(), 3u);
  EXPECT_EQ(reg.counter("nvme.ini/reaps").load(), 3u);
}

/// Controller reset with commands in every state: completed-unreleased,
/// in-flight without a CQE, and free. reset() must abort exactly the
/// in-flight ones, never clobber a recorded completion, leak no cid, and
/// leave the rings usable (phase protocol restarts cleanly at slot 0).
TEST(NvmeIniStress, ResetAbortsInflightAndRingsRestartClean) {
  pcie::MemoryRegion host("host", 8 << 20);
  pcie::RegionAllocator halloc(host);
  pcie::MemoryRegion dpu("dpu", 1 << 20);
  pcie::RegionAllocator dalloc(dpu);
  pcie::DmaEngine dma(host, dpu);

  nvme::QpConfig qc;
  qc.depth = 4;  // 3 usable cids
  nvme::QueuePair qp(qc, halloc, dalloc);
  obs::Registry reg;
  obs::QueueTraces traces(reg, qc.depth);
  nvme::IniDriver ini(dma, qp, &traces);
  nvme::TgtDriver tgt(dma, qp,
                      [](const nvme::NvmeFsCmd&, std::span<const std::byte>,
                         std::span<std::byte>) {
                        return nvme::HandlerResult{};
                      },
                      &traces);

  nvme::IniDriver::Request req;
  req.inline_op = nvme::InlineOp::kFsync;
  const auto s1 = ini.submit(req);
  const auto s2 = ini.submit(req);
  const auto s3 = ini.submit(req);
  tgt.process_available(1);  // only s1's SQE is consumed and completed
  const auto done1 = ini.wait(s1.cid);
  EXPECT_EQ(done1.status, nvme::Status::kSuccess);

  // "DPU power-cycle": TGT rewinds first, then the host side aborts.
  tgt.reset();
  EXPECT_EQ(ini.reset(), 2) << "exactly the two unacked commands abort";
  EXPECT_EQ(reg.counter("nvme.ini/resets").load(), 1u);

  // s1's recorded completion survived the reset unclobbered.
  const auto after1 = ini.try_take(s1.cid);
  ASSERT_TRUE(after1.has_value());
  EXPECT_EQ(after1->status, nvme::Status::kSuccess);
  for (const std::uint16_t cid : {s2.cid, s3.cid}) {
    const auto c = ini.try_take(cid);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->status, nvme::Status::kAbortedByRequest);
    EXPECT_TRUE(nvme::is_retryable(c->status));
  }
  ini.release(s1.cid);
  ini.release(s2.cid);
  ini.release(s3.cid);
  EXPECT_EQ(ini.inflight(), 0) << "no leaked cids after reset";

  // The reset rings serve fresh traffic: every cid usable, completions
  // land, and no stale CQE is mistaken for a new one.
  for (int round = 0; round < 6; ++round) {
    const auto s = ini.submit(req);
    tgt.process_available();
    const auto c = ini.wait(s.cid);
    EXPECT_EQ(c.status, nvme::Status::kSuccess) << "round " << round;
    ini.release(s.cid);
  }
  EXPECT_EQ(reg.counter("nvme.ini/late_cqes").load(), 0u);
}

/// 8 threads hammer one depth-4 queue: cid starvation is constant, the CQ
/// phase bit wraps hundreds of times, and every op must still complete
/// correctly with exact counter accounting.
TEST(NvmeIniStress, ThreadsHammerTinyQueue) {
  NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 4;
  o.max_io = 16 * 1024;
  NvmeRawHarness h(o);

  constexpr int kThreads = 8;
  constexpr int kOps = 200;  // write+read each → 3200 submissions total
  std::atomic<int> failures{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t, &failures] {
      std::vector<std::byte> data(4096, static_cast<std::byte>(t + 1));
      std::vector<std::byte> dst(4096);
      for (int i = 0; i < kOps; ++i) {
        if (!h.do_write(0, data)) ++failures;
        if (!h.do_read(0, dst)) ++failures;
        // The virtual client serves reads from its pattern buffer.
        for (std::size_t b = 0; b < dst.size(); b += 509) {
          if (dst[b] != static_cast<std::byte>((b * 131) & 0xFF)) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);

  obs::Registry& reg = h.metrics();
  const std::uint64_t total = 2ULL * kThreads * kOps;
  EXPECT_EQ(reg.counter("nvme.ini/submits").load(), total);
  EXPECT_EQ(reg.counter("nvme.ini/reaps").load(), total);
  // 8 threads vs 4 cids: the queue-full cv path must have been exercised.
  EXPECT_GT(reg.counter("nvme.ini/queue_full_waits").load(), 0u);
  // Doorbell coalescing: one CQ-head ring per drained batch, never more
  // than one per reaped completion.
  const auto doorbells = reg.counter("nvme.ini/cq_doorbells").load();
  EXPECT_GE(doorbells, 1u);
  EXPECT_LE(doorbells, total);
  // Every completed op traced end-to-end.
  EXPECT_EQ(reg.histogram("trace/submit_to_reap_ns").count(), total);
}

/// submit_batch racing abort(): a batch wider than the free-cid pool parks
/// on free_cv_; an abort + release of an older command hands its cid to the
/// batch mid-flight. The aborted command's synthetic completion must not be
/// clobbered, a CQE that lands after an abort is discarded (late_cqes), and
/// every cid stays reusable afterwards.
TEST(NvmeIniStress, BatchSubmitRacesAbortKeepsCidsClean) {
  pcie::MemoryRegion host("host", 8 << 20);
  pcie::RegionAllocator halloc(host);
  pcie::MemoryRegion dpu("dpu", 1 << 20);
  pcie::RegionAllocator dalloc(dpu);
  pcie::DmaEngine dma(host, dpu);

  nvme::QpConfig qc;
  qc.depth = 4;  // 3 usable cids
  nvme::QueuePair qp(qc, halloc, dalloc);
  obs::Registry reg;
  obs::QueueTraces traces(reg, qc.depth);
  fault::FaultInjector fi(0x1234, &reg);
  nvme::IniDriver ini(dma, qp, &traces);
  nvme::TgtDriver tgt(dma, qp,
                      [](const nvme::NvmeFsCmd&, std::span<const std::byte>,
                         std::span<std::byte>) {
                        return nvme::HandlerResult{};
                      },
                      &traces, &fi);

  nvme::IniDriver::Request req;
  req.inline_op = nvme::InlineOp::kFsync;

  // s1's CQE is dropped on the floor (the only way a command times out
  // here), so abort() must synthesize its completion.
  fi.arm(nvme::kFaultTgtDropCqe, 1.0);
  const auto s1 = ini.submit(req);
  tgt.process_available(1);
  fi.disarm(nvme::kFaultTgtDropCqe);
  // Fill the remaining cids so the batch below starts with zero free.
  const auto s2 = ini.submit(req);
  const auto s3 = ini.submit(req);
  ASSERT_EQ(ini.inflight(), 3);

  obs::Counter& waits = reg.counter("nvme.ini/queue_full_waits");
  const std::uint64_t waits_before = waits.load();
  nvme::IniDriver::BatchSubmitted batch;
  std::atomic<bool> batch_done{false};
  std::thread batcher([&] {
    const std::vector<nvme::IniDriver::Request> reqs(2, req);
    batch = ini.submit_batch(reqs);  // no free cid: parks on free_cv_
    batch_done.store(true, std::memory_order_release);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (waits.load() == waits_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GT(waits.load(), waits_before) << "batch never hit queue-full";
  EXPECT_FALSE(batch_done.load(std::memory_order_acquire));

  // Abort the timed-out s1 while the batch is parked. Its cid flows to the
  // batch's first request via release(); the batch still needs one more.
  const auto aborted = ini.abort(s1.cid);
  EXPECT_EQ(aborted.status, nvme::Status::kAbortedByRequest);
  EXPECT_TRUE(nvme::is_retryable(aborted.status));
  const auto still = ini.try_take(s1.cid);
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->status, nvme::Status::kAbortedByRequest)
      << "abort record clobbered before release";
  ini.release(s1.cid);

  // Complete s2/s3; releasing s2 frees the batch's second cid.
  tgt.process_available();
  EXPECT_EQ(ini.wait(s2.cid).status, nvme::Status::kSuccess);
  ini.release(s2.cid);
  batcher.join();
  EXPECT_TRUE(batch_done.load());
  ASSERT_EQ(batch.cids.size(), 2u);
  // The free list is LIFO and s2's release may land before the parked
  // batcher wakes, so cid order is interleaving-dependent — what matters
  // is that the aborted cid was reissued to the batch at all.
  EXPECT_TRUE(batch.cids[0] == s1.cid || batch.cids[1] == s1.cid)
      << "aborted cid never reissued to the batch";

  EXPECT_EQ(ini.wait(s3.cid).status, nvme::Status::kSuccess);
  ini.release(s3.cid);
  tgt.process_available();
  for (const std::uint16_t cid : batch.cids) {
    EXPECT_EQ(ini.wait(cid).status, nvme::Status::kSuccess)
        << "batch command on recycled cid " << cid;
    ini.release(cid);
  }
  EXPECT_EQ(ini.inflight(), 0);
  EXPECT_EQ(reg.counter("nvme.ini/late_cqes").load(), 0u)
      << "dropped CQE can never arrive late";

  // Now the documented race the late-CQE guard exists for: abort() lands
  // while the CQE is still in flight (SQE consumed after the abort). The
  // late CQE must be discarded, not delivered as the abort's completion.
  const auto s4 = ini.submit(req);
  const auto aborted4 = ini.abort(s4.cid);  // before the TGT runs
  EXPECT_EQ(aborted4.status, nvme::Status::kAbortedByRequest);
  tgt.process_available();  // posts the real CQE for s4's cid
  const auto after = ini.try_take(s4.cid);  // drains → discards late CQE
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, nvme::Status::kAbortedByRequest)
      << "late CQE clobbered the abort record";
  EXPECT_EQ(reg.counter("nvme.ini/late_cqes").load(), 1u);
  ini.release(s4.cid);

  // The queue still serves fresh traffic on every cid, no cross-talk.
  for (int round = 0; round < 6; ++round) {
    const auto s = ini.submit(req);
    tgt.process_available();
    EXPECT_EQ(ini.wait(s.cid).status, nvme::Status::kSuccess)
        << "round " << round;
    ini.release(s.cid);
  }
  EXPECT_EQ(reg.counter("nvme.ini/late_cqes").load(), 1u);
}

/// Single-threaded soak on a depth-4 queue: 400 ops force ~100 full ring
/// wraps, flipping the CQ phase tag every wrap.
TEST(NvmeIniStress, PhaseTagSurvivesManyWraps) {
  NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 4;
  o.max_io = 16 * 1024;
  NvmeRawHarness h(o);
  std::vector<std::byte> data(4096, std::byte{0x3C});
  std::vector<std::byte> dst(4096);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(h.do_write(0, data)) << "op " << i;
    ASSERT_TRUE(h.do_read(0, dst)) << "op " << i;
  }
  EXPECT_EQ(h.metrics().counter("nvme.ini/reaps").load(), 400u);
}

}  // namespace
}  // namespace dpc
