#include "dpu/dpu.hpp"
#include "dpu/worker_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>

#include "sim/check.hpp"

namespace dpc::dpu {
namespace {

TEST(Dpu, DefaultsMatchTable1) {
  Dpu dpu;
  EXPECT_EQ(dpu.cores(), 24);  // QingTian: 24 TaiShan cores
  EXPECT_GT(dpu.bar().size(), 0u);
}

TEST(Dpu, SchedOverheadKicksInPastSweetSpot) {
  EXPECT_EQ(Dpu::sched_overhead(1).ns, 0);
  EXPECT_EQ(Dpu::sched_overhead(32).ns, 0);  // peak at 32 threads (§4.1)
  EXPECT_GT(Dpu::sched_overhead(33).ns, 0);
  EXPECT_GT(Dpu::sched_overhead(64).ns, Dpu::sched_overhead(48).ns);
}

TEST(WorkerPool, RunsPollersUntilStopped) {
  WorkerPool pool;
  std::atomic<int> count{0};
  pool.add_poller([&count] {
    count.fetch_add(1);
    return 1;
  });
  pool.start(2);
  while (count.load() < 100) std::this_thread::yield();
  pool.stop();
  EXPECT_FALSE(pool.running());
  const int after = count.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(count.load(), after);  // nothing runs after stop
}

TEST(WorkerPool, PollersPartitionedAcrossWorkers) {
  WorkerPool pool;
  std::array<std::atomic<std::thread::id>, 4> owner;
  std::array<std::atomic<int>, 4> hits{};
  for (int p = 0; p < 4; ++p) {
    pool.add_poller([&owner, &hits, p] {
      const auto me = std::this_thread::get_id();
      auto& slot = owner[static_cast<std::size_t>(p)];
      std::thread::id expected{};
      // First visit claims the poller; later visits must be the same worker
      // (single-consumer guarantee).
      if (!slot.compare_exchange_strong(expected, me)) {
        EXPECT_EQ(slot.load(), me) << "poller " << p << " migrated";
      }
      hits[static_cast<std::size_t>(p)].fetch_add(1);
      return 0;
    });
  }
  pool.start(2);
  for (const auto& h : hits) {
    while (h.load() < 10) std::this_thread::yield();
  }
  pool.stop();
}

TEST(WorkerPool, IdleBackoffStillMakesProgress) {
  WorkerPool pool;
  std::atomic<int> calls{0};
  pool.add_poller([&calls] {
    calls.fetch_add(1);
    return 0;  // always idle
  });
  pool.start(1);
  while (calls.load() < 200) std::this_thread::yield();
  pool.stop();
}

TEST(WorkerPool, GuardsMisuse) {
  WorkerPool pool;
  EXPECT_THROW(pool.start(1), dpc::CheckFailure);  // no pollers
  pool.add_poller([] { return 0; });
  EXPECT_THROW(pool.add_poller(nullptr), dpc::CheckFailure);
  pool.start(1);
  EXPECT_THROW(pool.add_poller([] { return 0; }), dpc::CheckFailure);
  pool.stop();
}

TEST(WorkerPool, StopIsIdempotent) {
  WorkerPool pool;
  std::atomic<int> count{0};
  pool.add_poller([&count] {
    count.fetch_add(1);
    return 1;
  });
  pool.start(2);
  while (count.load() < 10) std::this_thread::yield();
  pool.stop();
  pool.stop();  // second stop is a no-op, not a crash/deadlock
  pool.stop();
  EXPECT_FALSE(pool.running());
}

TEST(WorkerPool, ConcurrentStopsRaceSafely) {
  WorkerPool pool;
  std::atomic<int> count{0};
  pool.add_poller([&count] {
    count.fetch_add(1);
    return 1;
  });
  pool.start(4);
  while (count.load() < 10) std::this_thread::yield();
  std::array<std::thread, 4> stoppers;
  for (auto& t : stoppers) t = std::thread([&pool] { pool.stop(); });
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(pool.running());
}

TEST(WorkerPool, RestartableAfterStop) {
  WorkerPool pool;
  std::atomic<int> count{0};
  pool.add_poller([&count] {
    count.fetch_add(1);
    return 1;
  });
  pool.start(2);
  while (count.load() < 10) std::this_thread::yield();
  pool.stop();
  const int between = count.load();

  pool.start(2);  // pollers retained across the stop
  EXPECT_TRUE(pool.running());
  while (count.load() < between + 10) std::this_thread::yield();
  pool.stop();
  EXPECT_FALSE(pool.running());
  EXPECT_GE(count.load(), between + 10);
}

TEST(WorkerPool, DestructorJoins) {
  std::atomic<int> count{0};
  {
    WorkerPool pool;
    pool.add_poller([&count] {
      count.fetch_add(1);
      return 1;
    });
    pool.start(4);
    while (count.load() < 10) std::this_thread::yield();
  }  // destructor stops + joins without UAF
  SUCCEED();
}

}  // namespace
}  // namespace dpc::dpu
