#include "dpu/compress.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "sim/rng.hpp"

namespace dpc::dpu {
namespace {

std::vector<std::byte> roundtrip(std::span<const std::byte> src) {
  std::vector<std::byte> packed, unpacked;
  lz_compress(src, packed);
  const auto n = lz_decompress(packed, unpacked, src.size() + 1);
  EXPECT_TRUE(n.has_value());
  EXPECT_EQ(*n, src.size());
  return unpacked;
}

TEST(Compress, EmptyInput) {
  std::vector<std::byte> packed, unpacked;
  EXPECT_EQ(lz_compress({}, packed), 0u);
  EXPECT_EQ(lz_decompress(packed, unpacked, 100), 0u);
}

TEST(Compress, ShortLiteralOnly) {
  const char msg[] = "abc";
  const auto out = roundtrip(std::as_bytes(std::span{msg, 3}));
  EXPECT_EQ(std::memcmp(out.data(), msg, 3), 0);
}

TEST(Compress, RepetitiveDataShrinks) {
  std::vector<std::byte> src(4096, std::byte{0x55});
  std::vector<std::byte> packed;
  const auto n = lz_compress(src, packed);
  EXPECT_LT(n, src.size() / 10);  // RLE-style overlap match
  EXPECT_EQ(roundtrip(src), src);
}

TEST(Compress, TextLikeDataShrinks) {
  std::string text;
  for (int i = 0; i < 200; ++i)
    text += "the quick brown fox jumps over the lazy dog ";
  std::vector<std::byte> src(text.size());
  std::memcpy(src.data(), text.data(), text.size());
  std::vector<std::byte> packed;
  EXPECT_LT(lz_compress(src, packed), src.size() / 4);
  EXPECT_EQ(roundtrip(src), src);
}

TEST(Compress, RandomDataBoundedExpansion) {
  sim::Rng rng(1);
  std::vector<std::byte> src(8192);
  for (auto& b : src) b = static_cast<std::byte>(rng.next_below(256));
  std::vector<std::byte> packed;
  const auto n = lz_compress(src, packed);
  // Incompressible data: tolerate tokenization overhead but no blow-up.
  EXPECT_LT(n, src.size() + src.size() / 64 + 32);
  EXPECT_EQ(roundtrip(src), src);
}

class CompressRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressRoundTrip, MixedContent) {
  // Property: arbitrary mixtures of runs, patterns and noise round-trip.
  sim::Rng rng(GetParam());
  std::vector<std::byte> src;
  while (src.size() < 32 * 1024) {
    switch (rng.next_below(3)) {
      case 0: {  // run
        const auto b = static_cast<std::byte>(rng.next_below(256));
        src.insert(src.end(), rng.next_below(500) + 1, b);
        break;
      }
      case 1: {  // repeated phrase
        const char* phrase = "metadata-view-routing";
        for (std::uint64_t k = 0; k < rng.next_below(20) + 1; ++k)
          for (const char* p = phrase; *p; ++p)
            src.push_back(static_cast<std::byte>(*p));
        break;
      }
      default: {  // noise
        for (std::uint64_t k = 0; k < rng.next_below(300); ++k)
          src.push_back(static_cast<std::byte>(rng.next_below(256)));
      }
    }
  }
  EXPECT_EQ(roundtrip(src), src);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(Compress, MalformedInputRejected) {
  std::vector<std::byte> out;
  // Unknown token.
  std::vector<std::byte> bad{std::byte{0x7F}};
  EXPECT_FALSE(lz_decompress(bad, out, 100).has_value());
  // Truncated literal.
  bad = {std::byte{0x00}, std::byte{50}, std::byte{'a'}};
  EXPECT_FALSE(lz_decompress(bad, out, 100).has_value());
  // Match with impossible distance.
  bad = {std::byte{0x01}, std::byte{4}, std::byte{200}};
  EXPECT_FALSE(lz_decompress(bad, out, 100).has_value());
  // Output-bound respected.
  std::vector<std::byte> src(1000, std::byte{1});
  std::vector<std::byte> packed;
  lz_compress(src, packed);
  EXPECT_FALSE(lz_decompress(packed, out, 10).has_value());
}

TEST(Compress, CostModelFavorsDpu) {
  EXPECT_LT(dpu_compress_cost(1 << 20).ns, host_compress_cost(1 << 20).ns);
}

}  // namespace
}  // namespace dpc::dpu
