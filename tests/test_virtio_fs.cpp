#include "core/virtual_client.hpp"
#include "virtio/virtio_fs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace dpc {
namespace {

using core::VirtioRawHarness;

VirtioRawHarness::Options small_opts() {
  VirtioRawHarness::Options o;
  o.queue_size = 64;
  o.request_slots = 8;
  o.max_io = 64 * 1024;
  return o;
}

TEST(VirtioFs, WriteEcho) {
  VirtioRawHarness h(small_opts());
  std::vector<std::byte> data(8192, std::byte{0x11});
  EXPECT_TRUE(h.do_write(data));
}

TEST(VirtioFs, ReadReturnsPattern) {
  VirtioRawHarness h(small_opts());
  std::vector<std::byte> dst(8192);
  ASSERT_TRUE(h.do_read(dst));
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], static_cast<std::byte>((i * 131) & 0xFF)) << i;
}

TEST(VirtioFs, EightKWriteCostsExactlyElevenDmas) {
  // The Fig. 2(b) claim: "the number of DMA operations involved in
  // virtio-fs reaches up to unbearable 11" for an 8 KB write:
  //   ① avail idx, ② ring entry, ③–⑥ four descriptors, ⑦ command
  //   (in-header + write-in, contiguous), ⑧ data, ⑨ response,
  //   ⑩ used elem, ⑪ used idx.
  VirtioRawHarness h(small_opts());
  std::vector<std::byte> data(8192, std::byte{1});
  h.counters().reset();
  ASSERT_TRUE(h.do_write(data));
  const auto descriptor = h.counters().ops(pcie::DmaClass::kDescriptor);
  const auto payload = h.counters().ops(pcie::DmaClass::kData);
  EXPECT_EQ(descriptor + payload, 11u)
      << "descriptor=" << descriptor << " data=" << payload;
  EXPECT_EQ(payload, 3u);     // command read, data read, response write
  EXPECT_EQ(descriptor, 8u);  // idx, ring, 4 desc, used elem, used idx
}

TEST(VirtioFs, EightKReadAlsoElevenDmas) {
  VirtioRawHarness h(small_opts());
  std::vector<std::byte> dst(8192);
  h.counters().reset();
  ASSERT_TRUE(h.do_read(dst));
  const auto total = h.counters().ops(pcie::DmaClass::kDescriptor) +
                     h.counters().ops(pcie::DmaClass::kData);
  EXPECT_EQ(total, 11u);
}

TEST(VirtioFs, NvmeFsMovesFarFewerDmasThanVirtio) {
  // Cross-check the motivating ratio (2–3× more DMA ops in virtio-fs).
  VirtioRawHarness v(small_opts());
  core::NvmeRawHarness::Options no;
  no.queues = 1;
  no.depth = 8;
  no.max_io = 64 * 1024;
  core::NvmeRawHarness n(no);

  std::vector<std::byte> data(8192, std::byte{1});
  v.counters().reset();
  ASSERT_TRUE(v.do_write(data));
  n.counters().reset();
  ASSERT_TRUE(n.do_write(0, data));

  const auto virtio_ops = v.counters().ops(pcie::DmaClass::kDescriptor) +
                          v.counters().ops(pcie::DmaClass::kData);
  const auto nvme_ops = n.counters().ops(pcie::DmaClass::kDescriptor) +
                        n.counters().ops(pcie::DmaClass::kData);
  EXPECT_EQ(virtio_ops, 11u);
  EXPECT_EQ(nvme_ops, 4u);
  EXPECT_GE(static_cast<double>(virtio_ops) / nvme_ops, 2.0);
}

TEST(VirtioFs, UnknownOpcodeReturnsEnosys) {
  VirtioRawHarness h(small_opts());
  auto& guest = h.guest();
  const auto sub = h.guest().submit(virtio::FuseOpcode::kDestroy, 1, {}, {}, 0);
  virtio::FuseReplyView reply;
  while (!guest.try_wait(sub.ticket, &reply)) h.pump();
  EXPECT_EQ(reply.error, -38);
  guest.release(sub.ticket);
}

TEST(VirtioFs, SlotsRecycleUnderSustainedLoad) {
  VirtioRawHarness h(small_opts());  // only 8 slots
  std::vector<std::byte> data(4096, std::byte{5});
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(h.do_write(data)) << i;
}

TEST(VirtioFs, ConcurrentGuestsSingleHal) {
  VirtioRawHarness::Options o;
  o.queue_size = 256;
  o.request_slots = 32;
  o.max_io = 16 * 1024;
  VirtioRawHarness h(o);
  constexpr int kThreads = 8;
  constexpr int kOps = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, &failures, t] {
      std::vector<std::byte> data(8192, static_cast<std::byte>(t));
      std::vector<std::byte> dst(8192);
      for (int i = 0; i < kOps; ++i) {
        if (!h.do_write(data)) ++failures;
        if (!h.do_read(dst)) ++failures;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace dpc
