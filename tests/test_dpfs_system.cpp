#include "core/dpfs_system.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <thread>

#include "sim/rng.hpp"

namespace dpc::core {
namespace {

DpfsOptions small_opts() {
  DpfsOptions o;
  o.queue_size = 128;
  o.request_slots = 16;
  o.max_io = 128 * 1024;
  return o;
}

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

TEST(DpfsSystem, CreateLookupGetattr) {
  DpfsSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "file");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(sys.lookup(kvfs::kRootIno, "file").ino, c.ino);
  EXPECT_EQ(sys.lookup(kvfs::kRootIno, "ghost").err, ENOENT);
  kvfs::Attr attr;
  ASSERT_TRUE(sys.getattr(c.ino, &attr).ok());
  EXPECT_EQ(attr.ino, c.ino);
}

TEST(DpfsSystem, WriteReadThroughFuse) {
  DpfsSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "data");
  const auto data = bytes(64 * 1024, 1);
  const auto w = sys.write(c.ino, 0, data);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes, data.size());
  std::vector<std::byte> out(data.size());
  const auto r = sys.read(c.ino, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, data.size());
  EXPECT_EQ(out, data);
}

TEST(DpfsSystem, MkdirUnlinkFsync) {
  DpfsSystem sys(small_opts());
  const auto d = sys.mkdir(kvfs::kRootIno, "dir");
  ASSERT_TRUE(d.ok());
  const auto f = sys.create(d.ino, "f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(sys.fsync(f.ino).ok());
  ASSERT_TRUE(sys.unlink(d.ino, "f").ok());
  EXPECT_EQ(sys.lookup(d.ino, "f").err, ENOENT);
}

TEST(DpfsSystem, ErrorsMapToErrno) {
  DpfsSystem sys(small_opts());
  std::vector<std::byte> out(4096);
  EXPECT_EQ(sys.read(999, 0, out).err, ENOENT);
  EXPECT_EQ(sys.write(999, 0, bytes(16, 2)).err, ENOENT);
  ASSERT_TRUE(sys.create(kvfs::kRootIno, "dup").ok());
  EXPECT_EQ(sys.create(kvfs::kRootIno, "dup").err, EEXIST);
}

TEST(DpfsSystem, HalThreadMode) {
  DpfsSystem sys(small_opts());
  sys.start_hal();
  const auto c = sys.create(kvfs::kRootIno, "hal");
  ASSERT_TRUE(c.ok());
  const auto data = bytes(8192, 3);
  ASSERT_TRUE(sys.write(c.ino, 0, data).ok());
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(sys.read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
  sys.stop_hal();
}

TEST(DpfsSystem, ConcurrentClientsSerializeBehindOneHal) {
  DpfsSystem sys(small_opts());
  sys.start_hal();
  constexpr int kThreads = 6;
  std::atomic<int> errors{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&sys, t, &errors] {
      const auto c = sys.create(kvfs::kRootIno, "t" + std::to_string(t));
      if (!c.ok()) {
        ++errors;
        return;
      }
      const auto data = bytes(8192, static_cast<std::uint64_t>(t));
      std::vector<std::byte> out(8192);
      for (int i = 0; i < 30; ++i) {
        if (!sys.write(c.ino, 0, data).ok()) ++errors;
        if (!sys.read(c.ino, 0, out).ok() || out != data) ++errors;
      }
    });
  }
  for (auto& t : ts) t.join();
  sys.stop_hal();
  EXPECT_EQ(errors.load(), 0);
}

TEST(DpfsSystem, DmaTrafficDwarfsNvmeFsForSameWork) {
  // The motivating comparison (§2 M2): same KVFS op sequence, far more
  // link transactions through virtio-fs than nvme-fs would need (11 vs 4
  // per 8 KB op, measured end-to-end here).
  DpfsSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "traffic");
  sys.dma_counters().reset();
  const auto data = bytes(8192, 4);
  ASSERT_TRUE(sys.write(c.ino, 0, data).ok());
  const auto ops = sys.dma_counters().ops(pcie::DmaClass::kDescriptor) +
                   sys.dma_counters().ops(pcie::DmaClass::kData);
  EXPECT_EQ(ops, 11u);
}

TEST(DpfsSystem, ReaddirOverFuse) {
  DpfsSystem sys(small_opts());
  const auto d = sys.mkdir(kvfs::kRootIno, "dir");
  ASSERT_TRUE(sys.create(d.ino, "zeta").ok());
  ASSERT_TRUE(sys.create(d.ino, "alpha").ok());
  std::vector<kvfs::DirEntry> entries;
  ASSERT_TRUE(sys.readdir(d.ino, &entries).ok());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "alpha");  // prefix-scan order
  EXPECT_EQ(entries[1].name, "zeta");
  EXPECT_EQ(sys.readdir(entries[0].ino, &entries).err, ENOTDIR);
}

TEST(DpfsSystem, RenameOverFuse) {
  DpfsSystem sys(small_opts());
  const auto a = sys.mkdir(kvfs::kRootIno, "a");
  const auto b = sys.mkdir(kvfs::kRootIno, "b");
  const auto f = sys.create(a.ino, "file");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(sys.rename(a.ino, "file", b.ino, "renamed").ok());
  EXPECT_EQ(sys.lookup(a.ino, "file").err, ENOENT);
  EXPECT_EQ(sys.lookup(b.ino, "renamed").ino, f.ino);
  EXPECT_EQ(sys.rename(a.ino, "ghost", b.ino, "x").err, ENOENT);
}

}  // namespace
}  // namespace dpc::core
