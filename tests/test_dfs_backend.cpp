#include "dfs/backend.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace dpc::dfs {
namespace {

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

TEST(Mds, NamespaceBasics) {
  Mds mds;
  EXPECT_FALSE(mds.lookup("/f").has_value());
  ASSERT_TRUE(mds.create("/f", 1, 100).has_value());
  EXPECT_FALSE(mds.create("/f", 2, 0).has_value());  // duplicate
  EXPECT_EQ(mds.lookup("/f"), 1u);
  const auto meta = mds.stat(1);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->size, 100u);
  EXPECT_TRUE(mds.update_size(1, 200));
  EXPECT_EQ(mds.stat(1)->size, 200u);
  EXPECT_TRUE(mds.update_size(1, 50));  // accepted…
  EXPECT_EQ(mds.stat(1)->size, 200u);   // …but the size never shrinks
  EXPECT_TRUE(mds.remove("/f"));
  EXPECT_FALSE(mds.stat(1).has_value());
}

TEST(Mds, DelegationExclusivity) {
  Mds mds;
  mds.create("/f", 1, 0);
  EXPECT_TRUE(mds.acquire_delegation(1, 10));
  EXPECT_TRUE(mds.acquire_delegation(1, 10));   // re-acquire by holder ok
  EXPECT_FALSE(mds.acquire_delegation(1, 20));  // conflicting client
  mds.release_delegation(1, 20);                // non-holder release ignored
  EXPECT_FALSE(mds.acquire_delegation(1, 20));
  mds.release_delegation(1, 10);
  EXPECT_TRUE(mds.acquire_delegation(1, 20));
}

TEST(MdsCluster, ForwardingChargedWhenNotDirect) {
  MdsCluster cluster(4);
  // Find a path whose home differs from entry MDS 0.
  std::string path = "/a";
  while (cluster.home_of(path) == 0) path += "x";

  OpProfile indirect;
  cluster.create(path, 0, /*entry=*/0, /*direct=*/false, indirect);
  EXPECT_EQ(indirect.forwards, 1u);

  OpProfile direct;
  cluster.lookup(path, 0, /*direct=*/true, direct);
  EXPECT_EQ(direct.forwards, 0u);
  EXPECT_LT(direct.mds.ns, indirect.mds.ns);
  EXPECT_LT(direct.net.ns, indirect.net.ns);
}

TEST(MdsCluster, NoForwardWhenEntryIsHome) {
  MdsCluster cluster(4);
  std::string path = "/b";
  while (cluster.home_of(path) != 2) path += "y";
  OpProfile prof;
  cluster.create(path, 0, /*entry=*/2, /*direct=*/false, prof);
  EXPECT_EQ(prof.forwards, 0u);
}

TEST(MdsCluster, StatFindsMetaAcrossServers) {
  MdsCluster cluster(4);
  OpProfile prof;
  const auto meta = cluster.create("/file", 4096, 0, false, prof);
  ASSERT_TRUE(meta.has_value());
  const auto found = cluster.stat(meta->ino, 1, true, prof);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size, 4096u);
  EXPECT_TRUE(cluster.find_meta(meta->ino).has_value());
  EXPECT_FALSE(cluster.find_meta(777).has_value());
}

TEST(DataServers, ShardPlacementRotates) {
  DataServers ds(8);
  // Same stripe, different roles → different servers (rotation).
  const int s0 = ds.server_of(1, 0, 0);
  const int s1 = ds.server_of(1, 0, 1);
  EXPECT_NE(s0, s1);
  // Deterministic.
  EXPECT_EQ(ds.server_of(1, 0, 0), s0);
}

TEST(DataServers, ShardReadWriteAndDrop) {
  DataServers ds(4);
  OpProfile prof;
  const auto data = bytes(8192, 1);
  ds.write_shard(1, 0, 0, data, prof);
  EXPECT_EQ(prof.ds_ops, 1u);
  EXPECT_GT(prof.net.ns, 0);

  std::vector<std::byte> out(8192);
  EXPECT_TRUE(ds.read_shard(1, 0, 0, out, prof));
  EXPECT_EQ(out, data);
  EXPECT_FALSE(ds.read_shard(1, 0, 1, out, prof));  // absent → zeros
  EXPECT_EQ(out[0], std::byte{0});

  EXPECT_TRUE(ds.has_shard(1, 0, 0));
  EXPECT_TRUE(ds.drop_shard(1, 0, 0));
  EXPECT_FALSE(ds.has_shard(1, 0, 0));
  ds.write_shard(1, 0, 0, data, prof);
  ds.write_shard(1, 1, 2, data, prof);
  ds.purge(1);
  EXPECT_FALSE(ds.has_shard(1, 0, 0));
  EXPECT_FALSE(ds.has_shard(1, 1, 2));
}

struct StripeFixture : ::testing::Test {
  StripeFixture() : ds(8), rs(4, 2) {
    meta.ino = 42;
    meta.stripe_unit = 8 * 1024;
    meta.k = 4;
    meta.m = 2;
  }
  DataServers ds;
  ec::ReedSolomon rs;
  FileMeta meta;
};

TEST_F(StripeFixture, WriteReadRoundTrip) {
  OpProfile prof;
  const auto data = bytes(64 * 1024, 2);  // two full stripes
  striped_write(ds, rs, meta, 0, data, prof);
  std::vector<std::byte> out(64 * 1024);
  striped_read(ds, meta, 0, out, prof);
  EXPECT_EQ(out, data);
}

TEST_F(StripeFixture, UnalignedWriteWithinShard) {
  OpProfile prof;
  striped_write(ds, rs, meta, 0, bytes(32 * 1024, 3), prof);
  const auto patch = bytes(100, 4);
  striped_write(ds, rs, meta, 5000, patch, prof);
  std::vector<std::byte> out(100);
  striped_read(ds, meta, 5000, out, prof);
  EXPECT_EQ(out, patch);
}

TEST_F(StripeFixture, ParityStaysConsistentAfterPartialUpdates) {
  OpProfile prof;
  striped_write(ds, rs, meta, 0, bytes(32 * 1024, 5), prof);
  // Update shard 2 of stripe 0 (offset 16K..24K).
  striped_write(ds, rs, meta, 2 * 8192, bytes(8192, 6), prof);

  // Gather the stripe and verify parity algebraically.
  std::vector<std::vector<std::byte>> shards(6,
                                             std::vector<std::byte>(8192));
  for (std::uint32_t r = 0; r < 6; ++r)
    ds.read_shard(meta.ino, 0, r, shards[r], prof);
  std::vector<std::span<const std::byte>> views(shards.begin(), shards.end());
  EXPECT_TRUE(rs.verify(views));
}

TEST_F(StripeFixture, DegradedReadReconstructs) {
  OpProfile prof;
  const auto data = bytes(32 * 1024, 7);  // one full stripe
  striped_write(ds, rs, meta, 0, data, prof);
  // Lose two shards (the code tolerance m=2), one of them data shard 1.
  ASSERT_TRUE(ds.drop_shard(meta.ino, 0, 1));
  ASSERT_TRUE(ds.drop_shard(meta.ino, 0, 4));

  std::vector<std::byte> out(32 * 1024);
  ASSERT_TRUE(striped_read_reconstruct(ds, rs, meta, 0, out, prof));
  EXPECT_EQ(out, data);
}

TEST_F(StripeFixture, TooManyLossesFailCleanly) {
  OpProfile prof;
  striped_write(ds, rs, meta, 0, bytes(32 * 1024, 8), prof);
  ds.drop_shard(meta.ino, 0, 0);
  ds.drop_shard(meta.ino, 0, 1);
  ds.drop_shard(meta.ino, 0, 2);
  std::vector<std::byte> out(8192);
  EXPECT_FALSE(striped_read_reconstruct(ds, rs, meta, 0, out, prof));
}

TEST_F(StripeFixture, ServerSideWriteChargesMds) {
  MdsCluster cluster(4);
  OpProfile cprof;
  const auto created = cluster.create("/f", 1 << 20, 0, false, cprof);
  ASSERT_TRUE(created.has_value());

  OpProfile prof;
  const auto data = bytes(8192, 9);
  ASSERT_TRUE(cluster.server_side_write(ds, rs, created->ino, 0, data, 0,
                                        false, prof));
  // Server-side EC: the MDS burns the encode cost, not the client.
  EXPECT_GT(prof.mds.ns, sim::calib::kMdsOp.ns);
  EXPECT_EQ(prof.host_cpu.ns, 0);
  EXPECT_GT(prof.ds_ops, 0u);

  std::vector<std::byte> out(8192);
  OpProfile rprof;
  ASSERT_TRUE(
      cluster.server_side_read(ds, created->ino, 0, out, 0, false, rprof));
  EXPECT_EQ(out, data);
}

TEST(OpProfile, AccumulatesAllFields) {
  OpProfile a, b;
  a.host_cpu = sim::micros(1);
  a.mds_ops = 1;
  b.host_cpu = sim::micros(2);
  b.dpu_cpu = sim::micros(3);
  b.forwards = 2;
  a += b;
  EXPECT_EQ(a.host_cpu.ns, 3000);
  EXPECT_EQ(a.dpu_cpu.ns, 3000);
  EXPECT_EQ(a.mds_ops, 1u);
  EXPECT_EQ(a.forwards, 2u);
}

}  // namespace
}  // namespace dpc::dfs
