#include "ssd/ssd.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/calib.hpp"

namespace dpc::ssd {
namespace {

TEST(Ssd, UnwrittenReadsZero) {
  SsdModel ssd;
  std::vector<std::byte> buf(kBlockSize, std::byte{0xFF});
  ssd.read_block(42, buf);
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(Ssd, WriteReadRoundTrip) {
  SsdModel ssd;
  std::vector<std::byte> w(kBlockSize);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = static_cast<std::byte>(i & 0xFF);
  ssd.write_block(7, w);
  std::vector<std::byte> r(kBlockSize);
  ssd.read_block(7, r);
  EXPECT_EQ(r, w);
  EXPECT_EQ(ssd.blocks_written(), 1u);
}

TEST(Ssd, PartialWritePreservesRest) {
  SsdModel ssd;
  std::vector<std::byte> full(kBlockSize, std::byte{0xAA});
  ssd.write_block(1, full);
  std::vector<std::byte> part(8, std::byte{0xBB});
  ssd.write_block(1, part);
  std::vector<std::byte> r(kBlockSize);
  ssd.read_block(1, r);
  EXPECT_EQ(r[0], std::byte{0xBB});
  EXPECT_EQ(r[7], std::byte{0xBB});
  EXPECT_EQ(r[8], std::byte{0xAA});
}

TEST(Ssd, TrimDiscards) {
  SsdModel ssd;
  std::vector<std::byte> w(kBlockSize, std::byte{1});
  ssd.write_block(5, w);
  ssd.trim_block(5);
  EXPECT_EQ(ssd.blocks_written(), 0u);
  std::vector<std::byte> r(16, std::byte{0xFF});
  ssd.read_block(5, r);
  EXPECT_EQ(r[0], std::byte{0});
}

TEST(Ssd, ServiceTimesMatchDatasheet) {
  // Table 1: 88 µs read / 14 µs write for one block.
  EXPECT_EQ(SsdModel::random_service(true, kBlockSize).ns,
            sim::calib::kSsdReadLat.ns);
  EXPECT_EQ(SsdModel::random_service(false, kBlockSize).ns,
            sim::calib::kSsdWriteLat.ns);
  // Larger I/Os add streaming time.
  EXPECT_GT(SsdModel::random_service(true, 64 * 1024).ns,
            sim::calib::kSsdReadLat.ns);
}

TEST(Ssd, ChannelBoundedIops) {
  // The Fig. 7 saturation points: read ~364K IOPS, write ~285K IOPS.
  const double read_iops =
      SsdModel::channels(true) /
      (static_cast<double>(sim::calib::kSsdReadLat.ns) / 1e9);
  const double write_iops =
      SsdModel::channels(false) /
      (static_cast<double>(sim::calib::kSsdWriteLat.ns) / 1e9);
  EXPECT_NEAR(read_iops, 364000, 10000);
  EXPECT_NEAR(write_iops, 285000, 10000);
}

TEST(Ssd, SequentialBandwidthCaps) {
  const auto t = SsdModel::sequential_transfer(true, 1 << 30);
  EXPECT_NEAR(t.sec(), 1.0 / sim::calib::kSsdSeqReadGBps * 1.0737, 0.02);
}

TEST(Ssd, ConcurrentDisjointWrites) {
  SsdModel ssd;
  constexpr int kThreads = 8;
  constexpr int kBlocks = 200;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&ssd, t] {
      std::vector<std::byte> w(kBlockSize, static_cast<std::byte>(t + 1));
      for (int b = 0; b < kBlocks; ++b)
        ssd.write_block(static_cast<std::uint64_t>(t) * kBlocks +
                            static_cast<std::uint64_t>(b),
                        w);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ssd.blocks_written(),
            static_cast<std::uint64_t>(kThreads) * kBlocks);
  std::vector<std::byte> r(kBlockSize);
  ssd.read_block(3 * kBlocks + 17, r);
  EXPECT_EQ(r[0], std::byte{4});
}

}  // namespace
}  // namespace dpc::ssd
