#include "kvfs/fsck.hpp"

#include <gtest/gtest.h>

#include "kv/remote.hpp"
#include "kvfs/kvfs.hpp"
#include "sim/rng.hpp"

namespace dpc::kvfs {
namespace {

struct FsckFixture : ::testing::Test {
  FsckFixture() : remote(store), fs(remote) {}

  std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<std::byte> v(n);
    for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
    return v;
  }

  /// Builds a healthy little tree and returns some inos for corruption.
  struct Handles {
    Ino dir, small, big;
  };
  Handles populate() {
    Handles h;
    h.dir = fs.mkdir(kRootIno, "dir", 0755).value;
    h.small = fs.create(h.dir, "small", 0644).value;
    EXPECT_TRUE(fs.write(h.small, 0, bytes(100, 1)).ok());
    h.big = fs.create(h.dir, "big", 0644).value;
    EXPECT_TRUE(fs.write(h.big, 0, bytes(3 * kBigBlock, 2)).ok());
    EXPECT_TRUE(fs.create(kRootIno, "empty", 0644).ok());
    return h;
  }

  kv::KvStore store;
  kv::RemoteKv remote;
  Kvfs fs;
};

TEST_F(FsckFixture, HealthyFilesystemIsClean) {
  populate();
  const auto report = fsck(store);
  EXPECT_TRUE(report.clean())
      << report.issues.size() << " issues, first: "
      << (report.issues.empty()
              ? ""
              : std::string(to_string(report.issues[0].kind)) + " " +
                    report.issues[0].detail);
  EXPECT_EQ(report.directories, 2u);  // root + dir
  EXPECT_EQ(report.regular_files, 3u);
  EXPECT_EQ(report.small_files, 2u);  // small + empty
  EXPECT_EQ(report.big_files, 1u);
  EXPECT_EQ(report.blocks, 3u);
}

TEST_F(FsckFixture, CleanAfterChurn) {
  auto h = populate();
  ASSERT_TRUE(fs.rename(h.dir, "small", kRootIno, "moved").ok());
  ASSERT_TRUE(fs.truncate(h.big, kBigBlock).ok());
  ASSERT_TRUE(fs.unlink(kRootIno, "empty").ok());
  const auto sub = fs.mkdir(h.dir, "sub", 0755).value;
  ASSERT_TRUE(fs.rename(h.dir, "sub", kRootIno, "sub-moved").ok());
  (void)sub;
  const auto report = fsck(store);
  EXPECT_TRUE(report.clean())
      << (report.issues.empty()
              ? ""
              : std::string(to_string(report.issues[0].kind)) + ": " +
                    report.issues[0].detail);
}

TEST_F(FsckFixture, DanglingDentryDetected) {
  const auto h = populate();
  store.erase(attr_key(h.small));
  const auto report = fsck(store);
  EXPECT_GE(report.count(FsckIssueKind::kDanglingDentry), 1u);
}

TEST_F(FsckFixture, UnreachableInodeDetected) {
  const auto h = populate();
  store.erase(inode_key(h.dir, "big"));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kUnreachableInode), 1u);
  EXPECT_EQ(report.issues[0].ino, h.big);
}

TEST_F(FsckFixture, MissingObjectDetected) {
  const auto h = populate();
  store.erase(big_object_key(h.big));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kMissingObject), 1u);
  // Its blocks become orphans too.
  EXPECT_GE(report.count(FsckIssueKind::kOrphanBlock), 3u);
}

TEST_F(FsckFixture, MissingBlockDetected) {
  const auto h = populate();
  const auto obj =
      decode_file_object(*store.get(big_object_key(h.big)));
  store.erase(block_key(obj.blocks[1]));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kMissingBlock), 1u);
}

TEST_F(FsckFixture, OrphanDataDetected) {
  populate();
  store.put(small_key(31337), kv::to_bytes("ghost"));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kOrphanData), 1u);
}

TEST_F(FsckFixture, OrphanBlockDetected) {
  populate();
  store.put(block_key(999999), kv::to_bytes("lost block"));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kOrphanBlock), 1u);
}

TEST_F(FsckFixture, ConflictingDataDetected) {
  const auto h = populate();
  // A big file that still has a stale small KV.
  store.put(small_key(h.big), kv::to_bytes("stale"));
  const auto report = fsck(store);
  EXPECT_GE(report.count(FsckIssueKind::kConflictingData), 1u);
}

TEST_F(FsckFixture, BadSmallSizeDetected) {
  const auto h = populate();
  auto attr = decode_attr(*store.get(attr_key(h.small)));
  attr.size = 1 << 20;  // claims 1 MB while flagged small
  store.put(attr_key(h.small), encode_attr(attr));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kBadSmallSize), 1u);
}

TEST_F(FsckFixture, DirectoryWithDataDetected) {
  const auto h = populate();
  store.put(small_key(h.dir), kv::to_bytes("dir data?!"));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kDirectoryHasData), 1u);
}

TEST_F(FsckFixture, BadLinkCountDetected) {
  const auto h = populate();
  auto attr = decode_attr(*store.get(attr_key(h.dir)));
  attr.nlink = 9;
  store.put(attr_key(h.dir), encode_attr(attr));
  const auto report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kBadLinkCount), 1u);
}

TEST_F(FsckFixture, HardLinksCleanAndCounted) {
  const auto h = populate();
  ASSERT_TRUE(fs.link(h.small, kRootIno, "alias1").ok());
  ASSERT_TRUE(fs.link(h.small, h.dir, "alias2").ok());
  auto report = fsck(store);
  EXPECT_TRUE(report.clean())
      << (report.issues.empty()
              ? ""
              : std::string(to_string(report.issues[0].kind)) + ": " +
                    report.issues[0].detail);
  // Corrupt the link count → flagged.
  auto attr = decode_attr(*store.get(attr_key(h.small)));
  attr.nlink = 1;
  store.put(attr_key(h.small), encode_attr(attr));
  report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kBadLinkCount), 1u);
}

TEST_F(FsckFixture, SymlinksCheckedForTargets) {
  populate();
  const auto l = fs.symlink("/dir/small", kRootIno, "ln");
  ASSERT_TRUE(l.ok());
  auto report = fsck(store);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.symlinks, 1u);
  // Damage: drop the target-text KV.
  store.erase(small_key(l.value));
  report = fsck(store);
  EXPECT_EQ(report.count(FsckIssueKind::kBadSymlink), 1u);
}

TEST_F(FsckFixture, StressChurnStaysClean) {
  sim::Rng rng(7);
  std::vector<std::pair<Ino, std::string>> files;
  for (int i = 0; i < 200; ++i) {
    const auto pick = rng.next_below(100);
    if (pick < 50 || files.empty()) {
      const std::string name = "f" + std::to_string(i);
      const auto c = fs.create(kRootIno, name, 0644);
      ASSERT_TRUE(c.ok());
      fs.write(c.value, 0,
               bytes(rng.next_below(4 * kBigBlock) + 1,
                     static_cast<std::uint64_t>(i)));
      files.emplace_back(c.value, name);
    } else if (pick < 75) {
      const auto victim = rng.next_below(files.size());
      ASSERT_TRUE(fs.unlink(kRootIno, files[victim].second).ok());
      files.erase(files.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const auto victim = rng.next_below(files.size());
      fs.truncate(files[victim].first, rng.next_below(2 * kBigBlock));
    }
  }
  const auto report = fsck(store);
  EXPECT_TRUE(report.clean())
      << (report.issues.empty()
              ? ""
              : std::string(to_string(report.issues[0].kind)) + ": " +
                    report.issues[0].detail);
}

// ---------------------------------------------------------- repair mode
//
// One test per FsckIssueKind: corrupt, repair, assert the keyspace ends
// clean and the healthy remainder survived.

struct FsckRepairTest : FsckFixture {
  FsckRepairReport repair() {
    const auto rep = fsck_repair(store);
    EXPECT_TRUE(rep.clean) << "repair left issues after " << rep.passes
                           << " passes";
    EXPECT_TRUE(fsck(store).clean());
    // Repair rewrote the raw keyspace under the live mount; drop its
    // volatile dentry/attr caches as recover() would.
    fs.drop_caches();
    return rep;
  }
};

TEST_F(FsckRepairTest, DanglingDentryDropped) {
  const auto h = populate();
  store.erase(attr_key(h.small));
  const auto rep = repair();
  EXPECT_GE(rep.repairs, 1u);
  EXPECT_FALSE(fs.lookup(h.dir, "small").ok());
  // The healthy sibling survived.
  EXPECT_TRUE(fs.lookup(h.dir, "big").ok());
}

TEST_F(FsckRepairTest, UnreachableInodeReattachedToLostFound) {
  const auto h = populate();
  store.erase(inode_key(h.dir, "big"));
  repair();
  const auto lf = fs.lookup(kRootIno, "lost+found");
  ASSERT_TRUE(lf.ok());
  const auto back = fs.lookup(lf.value, "ino" + std::to_string(h.big));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value, h.big);
  // Data rides along with the reattached inode.
  std::vector<std::byte> buf(3 * kBigBlock);
  const auto r = fs.read(h.big, 0, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 3 * kBigBlock);
  EXPECT_EQ(buf, bytes(3 * kBigBlock, 2));
}

TEST_F(FsckRepairTest, UnreachableEmptyFileReaped) {
  populate();
  const auto e = fs.lookup(kRootIno, "empty");
  ASSERT_TRUE(e.ok());
  store.erase(inode_key(kRootIno, "empty"));
  repair();
  // A zero-byte orphan carries no data worth salvaging: reaped, not moved.
  EXPECT_FALSE(store.contains(attr_key(e.value)));
}

TEST_F(FsckRepairTest, MissingSmallDataZeroFilled) {
  const auto h = populate();
  store.erase(small_key(h.small));
  repair();
  std::vector<std::byte> buf(100);
  const auto r = fs.read(h.small, 0, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 100u);
  EXPECT_EQ(buf, std::vector<std::byte>(100));  // zeros, size preserved
}

TEST_F(FsckRepairTest, MissingObjectNeutralized) {
  const auto h = populate();
  store.erase(big_object_key(h.big));
  repair();
  const auto attr = decode_attr(*store.get(attr_key(h.big)));
  EXPECT_EQ(attr.big_file, 0u);
  EXPECT_EQ(attr.size, 0u);
}

TEST_F(FsckRepairTest, MissingBlockZeroedInObject) {
  const auto h = populate();
  const auto obj = decode_file_object(*store.get(big_object_key(h.big)));
  store.erase(block_key(obj.blocks[1]));
  repair();
  // The dead reference is gone; the untouched blocks still read back.
  std::vector<std::byte> buf(3 * kBigBlock);
  ASSERT_TRUE(fs.read(h.big, 0, buf).ok());
  const auto want = bytes(3 * kBigBlock, 2);
  EXPECT_TRUE(std::equal(buf.begin(), buf.begin() + kBigBlock, want.begin()));
  EXPECT_TRUE(std::all_of(buf.begin() + kBigBlock,
                          buf.begin() + 2 * kBigBlock,
                          [](std::byte b) { return b == std::byte{0}; }));
}

TEST_F(FsckRepairTest, OrphanDataErased) {
  populate();
  store.put(small_key(31337), kv::to_bytes("ghost"));
  repair();
  EXPECT_FALSE(store.contains(small_key(31337)));
}

TEST_F(FsckRepairTest, OrphanBlockErased) {
  populate();
  store.put(block_key(999999), kv::to_bytes("lost block"));
  repair();
  EXPECT_FALSE(store.contains(block_key(999999)));
}

TEST_F(FsckRepairTest, BadSmallSizeClamped) {
  const auto h = populate();
  auto attr = decode_attr(*store.get(attr_key(h.small)));
  attr.size = 1 << 20;
  store.put(attr_key(h.small), encode_attr(attr));
  repair();
  EXPECT_LE(decode_attr(*store.get(attr_key(h.small))).size, kSmallFileMax);
}

TEST_F(FsckRepairTest, ConflictingDataTrustsFlag) {
  const auto h = populate();
  store.put(small_key(h.big), kv::to_bytes("stale"));
  repair();
  EXPECT_FALSE(store.contains(small_key(h.big)));
  EXPECT_TRUE(store.contains(big_object_key(h.big)));
}

TEST_F(FsckRepairTest, InterruptedPromotionCompleted) {
  const auto h = populate();
  // Object exists but the flag never flipped — the tail of a promotion the
  // crash interrupted. Repair finishes the flip instead of dropping data.
  auto attr = decode_attr(*store.get(attr_key(h.big)));
  attr.big_file = 0;
  store.put(attr_key(h.big), encode_attr(attr));
  repair();
  EXPECT_EQ(decode_attr(*store.get(attr_key(h.big))).big_file, 1u);
  std::vector<std::byte> buf(3 * kBigBlock);
  ASSERT_TRUE(fs.read(h.big, 0, buf).ok());
  EXPECT_EQ(buf, bytes(3 * kBigBlock, 2));
}

TEST_F(FsckRepairTest, DirectoryDataErased) {
  const auto h = populate();
  store.put(small_key(h.dir), kv::to_bytes("dir data?!"));
  repair();
  EXPECT_FALSE(store.contains(small_key(h.dir)));
  EXPECT_TRUE(fs.lookup(h.dir, "small").ok());
}

TEST_F(FsckRepairTest, BadLinkCountRecomputed) {
  const auto h = populate();
  auto attr = decode_attr(*store.get(attr_key(h.dir)));
  attr.nlink = 9;
  store.put(attr_key(h.dir), encode_attr(attr));
  repair();
  EXPECT_EQ(decode_attr(*store.get(attr_key(h.dir))).nlink, 2u);
}

TEST_F(FsckRepairTest, BadSymlinkReaped) {
  populate();
  const auto l = fs.symlink("/dir/small", kRootIno, "ln");
  ASSERT_TRUE(l.ok());
  store.erase(small_key(l.value));
  repair();
  EXPECT_FALSE(fs.lookup(kRootIno, "ln").ok());
}

TEST_F(FsckRepairTest, CompoundCorruptionConverges) {
  const auto h = populate();
  store.erase(attr_key(h.small));                        // dangling + orphan
  store.erase(inode_key(h.dir, "big"));                  // unreachable
  store.put(block_key(999999), kv::to_bytes("lost"));    // orphan block
  store.put(small_key(h.dir), kv::to_bytes("dir data")); // dir data
  auto attr = decode_attr(*store.get(attr_key(h.dir)));
  attr.nlink = 9;
  store.put(attr_key(h.dir), encode_attr(attr));         // bad link count
  const auto rep = repair();
  EXPECT_GE(rep.repairs, 5u);
  EXPECT_LE(rep.passes, 8u);
}

TEST_F(FsckRepairTest, CleanKeyspaceIsUntouched) {
  populate();
  const auto before = store.size();
  const auto rep = repair();
  EXPECT_EQ(rep.repairs, 0u);
  EXPECT_EQ(rep.passes, 1u);
  EXPECT_EQ(store.size(), before);
}

}  // namespace
}  // namespace dpc::kvfs
