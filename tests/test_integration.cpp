// Cross-system integration & equivalence tests: the same workloads run
// through DPC (nvme-fs), DPFS (virtio-fs) and the raw KVFS/Ext4like
// baselines must agree byte-for-byte; plus end-to-end checks of the
// paper-level behaviours (prefetching, host CPU locus, DMA ratios).
#include <gtest/gtest.h>

#include <thread>

#include "core/dpc_system.hpp"
#include "core/dpfs_system.hpp"
#include "hostfs/ext4like.hpp"
#include "sim/rng.hpp"
#include "sim/workload.hpp"

namespace dpc {
namespace {

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

core::DpcOptions dpc_opts() {
  core::DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 128, 16};
  return o;
}

TEST(Integration, DpcAndDpfsAgreeOnWorkload) {
  core::DpcSystem dpc_sys(dpc_opts());
  core::DpfsSystem dpfs_sys;

  const auto f1 = dpc_sys.create(kvfs::kRootIno, "f");
  const auto f2 = dpfs_sys.create(kvfs::kRootIno, "f");
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());

  sim::WorkloadSpec spec;
  spec.pattern = sim::Pattern::kRandWrite;
  spec.io_size = 8192;
  spec.file_size = 1 << 20;
  sim::WorkloadGen gen(spec, 0);

  for (int i = 0; i < 100; ++i) {
    const auto op = gen.next();
    const auto data = bytes(op.length, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(dpc_sys.write(f1.ino, op.offset, data, true).ok());
    ASSERT_TRUE(dpfs_sys.write(f2.ino, op.offset, data).ok());
  }
  // Same verification workload over both systems.
  sim::WorkloadGen rgen({sim::Pattern::kRandRead, 8192, 1 << 20}, 1);
  for (int i = 0; i < 50; ++i) {
    const auto op = rgen.next();
    std::vector<std::byte> a(op.length), b(op.length);
    ASSERT_TRUE(dpc_sys.read(f1.ino, op.offset, a, true).ok());
    ASSERT_TRUE(dpfs_sys.read(f2.ino, op.offset, b).ok());
    ASSERT_EQ(a, b) << "divergence at offset " << op.offset;
  }
}

TEST(Integration, DpcBufferedEqualsDirectAfterFsync) {
  core::DpcSystem sys(dpc_opts());
  const auto fa = sys.create(kvfs::kRootIno, "buffered");
  const auto fb = sys.create(kvfs::kRootIno, "direct");

  sim::WorkloadGen gen({sim::Pattern::kRandWrite, 4096, 256 * 1024}, 2);
  for (int i = 0; i < 200; ++i) {
    const auto op = gen.next();
    const auto data = bytes(op.length, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(sys.write(fa.ino, op.offset, data, false).ok());
    ASSERT_TRUE(sys.write(fb.ino, op.offset, data, true).ok());
  }
  ASSERT_TRUE(sys.fsync(fa.ino).ok());

  // Compare through KVFS directly (below the cache).
  auto& fs = sys.kvfs();
  std::vector<std::byte> a(256 * 1024), b(256 * 1024);
  ASSERT_TRUE(fs.read(fa.ino, 0, a).ok());
  ASSERT_TRUE(fs.read(fb.ino, 0, b).ok());
  EXPECT_EQ(a, b);
}

TEST(Integration, SequentialReadTriggersDpuPrefetch) {
  auto o = dpc_opts();
  o.cache_geo = {4096, cache::CacheMode::kWrite, 256, 16};
  core::DpcSystem sys(o);
  const auto f = sys.create(kvfs::kRootIno, "stream");
  ASSERT_TRUE(sys.write(f.ino, 0, bytes(256 * 1024, 3), true).ok());

  // Sequential 4K reads: after a couple of misses the prefetcher fills
  // ahead and the remaining reads hit host memory.
  std::vector<std::byte> out(4096);
  int hits = 0;
  for (int i = 0; i < 64; ++i) {
    const auto r =
        sys.read(f.ino, static_cast<std::uint64_t>(i) * 4096, out, false);
    ASSERT_TRUE(r.ok());
    hits += r.cache_hit ? 1 : 0;
  }
  EXPECT_GT(sys.control_stats()->pages_prefetched, 8u);
  EXPECT_GT(hits, 32);  // most reads were served from the hybrid cache
}

TEST(Integration, Ext4AndKvfsSemanticallyEquivalent) {
  // The Fig. 7 pair: same POSIX-ish workload on both standalone services.
  ssd::SsdModel disk;
  hostfs::Ext4like ext4(disk);
  core::DpcSystem dpc_sys(dpc_opts());

  const auto e = ext4.create(hostfs::kRootIno, "w", 0644);
  const auto k = dpc_sys.create(kvfs::kRootIno, "w");
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(k.ok());

  sim::WorkloadGen gen({sim::Pattern::kRandWrite, 8192, 1 << 20}, 4);
  for (int i = 0; i < 100; ++i) {
    const auto op = gen.next();
    const auto data = bytes(op.length, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(ext4.write(e.value, op.offset, data, true).ok());
    ASSERT_TRUE(dpc_sys.write(k.ino, op.offset, data, true).ok());
  }
  sim::WorkloadGen rgen({sim::Pattern::kRandRead, 8192, 1 << 20}, 5);
  for (int i = 0; i < 50; ++i) {
    const auto op = rgen.next();
    std::vector<std::byte> a(op.length), b(op.length);
    ASSERT_TRUE(ext4.read(e.value, op.offset, a, true).ok());
    ASSERT_TRUE(dpc_sys.read(k.ino, op.offset, b, true).ok());
    ASSERT_EQ(a, b);
  }
  // And the sizes agree.
  EXPECT_EQ(ext4.getattr(e.value).value.size,
            [&] {
              kvfs::Attr attr;
              dpc_sys.getattr(k.ino, &attr);
              return attr.size;
            }());
}

TEST(Integration, SmallFileChurnAcrossSystems) {
  core::DpcSystem sys(dpc_opts());
  sys.start_dpu();
  sim::WorkloadSpec spec;
  spec.pattern = sim::Pattern::kCreate;
  spec.io_size = 8192;
  sim::WorkloadGen gen(spec, 0);
  for (int i = 0; i < 50; ++i) {
    const auto op = gen.next();
    const auto name = "small-" + std::to_string(op.file_id);
    const auto c = sys.create(kvfs::kRootIno, name);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(
        sys.write(c.ino, 0, bytes(op.length, op.file_id), true).ok());
  }
  std::vector<kvfs::DirEntry> entries;
  ASSERT_TRUE(sys.readdir(kvfs::kRootIno, &entries).ok());
  EXPECT_EQ(entries.size(), 50u);
  sys.stop_dpu();
}

TEST(Integration, MixedWorkloadUnderWorkers) {
  auto o = dpc_opts();
  o.queues = 4;
  o.queue_depth = 16;
  core::DpcSystem sys(o);
  sys.start_dpu();
  const auto f = sys.create(kvfs::kRootIno, "mixed");
  ASSERT_TRUE(sys.write(f.ino, (1 << 20) - 4096, bytes(4096, 0), true).ok());

  constexpr int kThreads = 4;
  std::atomic<int> errors{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&sys, &f, t, &errors] {
      sim::WorkloadSpec spec;
      spec.pattern = sim::Pattern::kMixed;
      spec.io_size = 8192;
      spec.file_size = 1 << 20;
      spec.read_fraction = 0.7;  // Fig. 1's mix
      sim::WorkloadGen gen(spec, static_cast<std::uint64_t>(t));
      std::vector<std::byte> buf(8192);
      for (int i = 0; i < 100; ++i) {
        const auto op = gen.next();
        if (op.type == sim::OpType::kRead) {
          if (!sys.read(f.ino, op.offset, buf, true).ok()) ++errors;
        } else {
          if (!sys.write(f.ino, op.offset, bytes(8192, 1), true).ok())
            ++errors;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  sys.stop_dpu();
  EXPECT_EQ(errors.load(), 0);
}

TEST(Integration, EndToEndDmaRatioMatchesPaper) {
  // Same logical op on both stacks, measured at the link: virtio-fs needs
  // 2–3× the DMA operations of nvme-fs (§4.1's explanation for the
  // IOPS/latency gap).
  core::DpcSystem dpc_sys(dpc_opts());
  core::DpfsSystem dpfs_sys;
  const auto f1 = dpc_sys.create(kvfs::kRootIno, "ratio");
  const auto f2 = dpfs_sys.create(kvfs::kRootIno, "ratio");
  const auto data = bytes(8192, 6);

  dpc_sys.dma_counters().reset();
  ASSERT_TRUE(dpc_sys.write(f1.ino, 0, data, true).ok());
  const auto nvme_ops =
      dpc_sys.dma_counters().ops(pcie::DmaClass::kDescriptor) +
      dpc_sys.dma_counters().ops(pcie::DmaClass::kData);

  dpfs_sys.dma_counters().reset();
  ASSERT_TRUE(dpfs_sys.write(f2.ino, 0, data).ok());
  const auto virtio_ops =
      dpfs_sys.dma_counters().ops(pcie::DmaClass::kDescriptor) +
      dpfs_sys.dma_counters().ops(pcie::DmaClass::kData);

  EXPECT_EQ(nvme_ops, 4u);
  EXPECT_EQ(virtio_ops, 11u);
  const double ratio =
      static_cast<double>(virtio_ops) / static_cast<double>(nvme_ops);
  EXPECT_GE(ratio, 2.0);
  EXPECT_LE(ratio, 3.0);
}

}  // namespace
}  // namespace dpc
