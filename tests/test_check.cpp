// ModelSched unit tests: the scheduler's exploration mechanics on small
// synthetic scenarios with known interleaving counts, plus smoke runs of
// the product scenario catalog (the full tiers run via dpc_check in CI's
// check stage — these keep the harness itself honest under ctest).
#include "check/model_sched.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "check/scenarios.hpp"
#include "sim/schedhook.hpp"

namespace dpc::check {
namespace {

namespace sh = sim::schedhook;

// ---------------------------------------------------------------------------
// Exploration mechanics on synthetic scenarios.

// Two threads × two decision points each: a thread takes 3 scheduler grants
// (start→p1, p1→p2, p2→finish), so the interleaving space is C(6,3) = 20.
// DFS must enumerate exactly that — no duplicates, no misses.
TEST(ModelSched, ExhaustiveEnumeratesTwoByTwoCompletely) {
  const auto fn = [](ModelSched& sched) {
    sched.spawn([] {
      sh::point("t.p1");
      sh::point("t.p2");
    });
    sched.spawn([] {
      sh::point("u.p1");
      sh::point("u.p2");
    });
    sched.run();
  };
  const auto r = explore_exhaustive(fn, nullptr, 10000, 1000);
  EXPECT_FALSE(r.violation.has_value()) << r.violation->message;
  EXPECT_EQ(r.schedules, 20u);
  EXPECT_EQ(r.truncated, 0u);
}

// The classic lost-update race: both threads read-modify-write a shared
// counter with a yield point between read and write. Exhaustive search must
// find the interleaving where an update is lost, and the recorded choice
// list must replay to the identical violation.
TEST(ModelSched, FindsLostUpdateAndReplaysIt) {
  int x = 0;
  const auto fn = [&x](ModelSched& sched) {
    x = 0;
    for (int t = 0; t < 2; ++t) {
      sched.spawn([&x] {
        const int v = x;
        sh::point("racy.rmw");
        x = v + 1;
      });
    }
    sched.run();
    sched.require(x == 2, "lost update: both increments read the same value");
  };
  const auto r = explore_exhaustive(fn, nullptr, 10000, 1000);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_NE(r.violation->message.find("lost update"), std::string::npos);
  EXPECT_FALSE(r.violation->trace.empty());

  const auto rep = replay_run(fn, nullptr, r.violation->choices, 1000);
  ASSERT_TRUE(rep.violation.has_value());
  EXPECT_EQ(rep.violation->message, r.violation->message);
}

// A thread spinning with nobody left to wake it is a deadlock, reported
// with the blocked site in the message.
TEST(ModelSched, ReportsDeadlockWhenOnlySpinnersRemain) {
  const auto fn = [](ModelSched& sched) {
    sched.spawn([] {
      for (;;) sh::spin("stuck.forever");
    });
    sched.run();
  };
  const auto r = explore_exhaustive(fn, nullptr, 10, 1000);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_NE(r.violation->message.find("deadlock"), std::string::npos);
  EXPECT_NE(r.violation->message.find("stuck.forever"), std::string::npos);
}

// Threads that stay runnable forever (a livelock ping-pong through real
// decision points) exhaust the step budget — reported as a violation, not
// filed silently under "truncated": correct code never nears the budget.
TEST(ModelSched, StepBudgetExhaustionIsAViolation) {
  const auto fn = [](ModelSched& sched) {
    std::atomic<bool> stop{false};
    sched.spawn([&] {
      while (!stop.load()) sh::point("live.a");
      // Unreachable under the tiny budget; keeps the loop well-formed.
    });
    sched.spawn([&] {
      for (;;) sh::point("live.b");
    });
    sched.run();
    stop.store(true);
  };
  const auto r = explore_exhaustive(fn, nullptr, 1, 50);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_NE(r.violation->message.find("step budget"), std::string::npos);
}

// power_cut(): managed threads die at their next decision point with
// fault::CrashException (swallowed by the wrapper — a modelled power loss,
// not an error), and the driver can inspect the post-crash state.
TEST(ModelSched, PowerCutStopsManagedThreads) {
  int reached = 0;
  const auto fn = [&reached](ModelSched& sched) {
    reached = 0;
    // Power thread spawned FIRST: the DFS first path grants thread ids in
    // order, so the cut is armed before the victim's first decision point
    // and must kill it there (crash_now on the spawn park).
    sched.spawn([&sched] { sched.power_cut(); });
    sched.spawn([&reached] {
      for (int i = 0; i < 100; ++i) {
        sh::point("victim.step");
        ++reached;
      }
    });
    sched.run();
    sched.require(sched.crashed(), "power cut not recorded");
  };
  DfsStrategy dfs;
  dfs.begin_run();
  ModelSched sched(dfs, {1000, nullptr});
  fn(sched);
  EXPECT_LT(reached, 100);
}

// PCT exploration is deterministic per seed: the violating seed's recorded
// choices replay to the same violation.
TEST(ModelSched, PctFindsAndReplaysRace) {
  int x = 0;
  const auto fn = [&x](ModelSched& sched) {
    x = 0;
    for (int t = 0; t < 2; ++t) {
      sched.spawn([&x] {
        const int v = x;
        sh::point("racy.rmw");
        x = v + 1;
      });
    }
    sched.run();
    sched.require(x == 2, "lost update");
  };
  const auto r = explore_pct(fn, nullptr, /*seed_base=*/1, /*seeds=*/64,
                             /*depth=*/3, 1000);
  ASSERT_TRUE(r.violation.has_value());
  const auto rep = replay_run(fn, nullptr, r.violation->choices, 1000);
  ASSERT_TRUE(rep.violation.has_value());
  EXPECT_EQ(rep.violation->message, r.violation->message);
}

// ---------------------------------------------------------------------------
// The product scenario catalog.

TEST(Scenarios, CatalogIsComplete) {
  ASSERT_EQ(scenarios().size(), 6u);
  for (const Scenario& s : scenarios()) {
    EXPECT_NE(find_scenario(s.name), nullptr);
    EXPECT_NE(s.mutation[0], '\0') << s.name << " has no paired mutation";
  }
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

// Small catalog scenarios, clean code, full enumeration: no violations.
TEST(Scenarios, DrrDispatchCleanExhaustive) {
  const Scenario* s = find_scenario("drr_dispatch");
  ASSERT_NE(s, nullptr);
  const auto r = explore_exhaustive(s->fn, nullptr, s->max_schedules,
                                    s->max_steps);
  EXPECT_FALSE(r.violation.has_value()) << r.violation->message;
  EXPECT_EQ(r.schedules, 2u);  // the two staged arrival orders
}

TEST(Scenarios, WalFsyncFlushCleanExhaustive) {
  const Scenario* s = find_scenario("wal_fsync_flush");
  ASSERT_NE(s, nullptr);
  const auto r = explore_exhaustive(s->fn, nullptr, s->max_schedules,
                                    s->max_steps);
  EXPECT_FALSE(r.violation.has_value()) << r.violation->message;
  EXPECT_GT(r.schedules, 1u);
  EXPECT_EQ(r.truncated, 0u);
}

TEST(Scenarios, WalAppendCleanExhaustive) {
  const Scenario* s = find_scenario("wal_append");
  ASSERT_NE(s, nullptr);
  const auto r = explore_exhaustive(s->fn, nullptr, s->max_schedules,
                                    s->max_steps);
  EXPECT_FALSE(r.violation.has_value()) << r.violation->message;
  EXPECT_GT(r.schedules, 10u);
  EXPECT_EQ(r.truncated, 0u);
}

// Mutation sensitivity: arming the paired DPC_CHECK_MUTATE site must
// produce a violation, and the schedule must replay deterministically.
// (The full 6-mutation sweep runs via `dpc_check --mutate all` in CI.)
TEST(Scenarios, WalEarlyCheckpointMutationIsCaught) {
  const Scenario* s = find_scenario("wal_fsync_flush");
  ASSERT_NE(s, nullptr);
  const auto r = explore_exhaustive(s->fn, s->mutation, s->max_schedules,
                                    s->max_steps);
  ASSERT_TRUE(r.violation.has_value())
      << "checker is blind to " << s->mutation;
  const auto rep =
      replay_run(s->fn, s->mutation, r.violation->choices, s->max_steps);
  ASSERT_TRUE(rep.violation.has_value());
  EXPECT_EQ(rep.violation->message, r.violation->message);
}

TEST(Scenarios, DrrClassOrderMutationIsCaught) {
  const Scenario* s = find_scenario("drr_dispatch");
  ASSERT_NE(s, nullptr);
  const auto r = explore_exhaustive(s->fn, s->mutation, s->max_schedules,
                                    s->max_steps);
  ASSERT_TRUE(r.violation.has_value())
      << "checker is blind to " << s->mutation;
  EXPECT_NE(r.violation->message.find("best-effort"), std::string::npos);
}

// PCT smoke of the two big scenarios (a couple of seeds; the full sweep is
// CI's job). Clean code: no violation.
TEST(Scenarios, SqSubmitAbortCleanPctSmoke) {
  const Scenario* s = find_scenario("sq_submit_abort");
  ASSERT_NE(s, nullptr);
  const auto r =
      explore_pct(s->fn, nullptr, /*seed_base=*/1, /*seeds=*/2, 3,
                  s->max_steps);
  EXPECT_FALSE(r.violation.has_value()) << r.violation->message;
}

TEST(Scenarios, RestartVsPumpCleanPctSmoke) {
  const Scenario* s = find_scenario("restart_vs_pump");
  ASSERT_NE(s, nullptr);
  const auto r =
      explore_pct(s->fn, nullptr, /*seed_base=*/1, /*seeds=*/1, 3,
                  s->max_steps);
  EXPECT_FALSE(r.violation.has_value()) << r.violation->message;
}

}  // namespace
}  // namespace dpc::check
