// Replication mode, delegation recall and the full-stripe write fast path —
// the DFS features beyond the Fig. 9 core.
#include <gtest/gtest.h>

#include "dfs/client.hpp"
#include "sim/rng.hpp"

namespace dpc::dfs {
namespace {

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

struct ReplFixture : ::testing::Test {
  ReplFixture() : mds(4), ds(8) {}
  MdsCluster mds;
  DataServers ds;

  ClientConfig repl_cfg() {
    auto cfg = ClientConfig::optimized();
    cfg.use_replication = true;
    cfg.replicas = 3;
    return cfg;
  }
};

TEST_F(ReplFixture, ReplicatedRoundTrip) {
  DfsClient client(1, mds, ds, repl_cfg());
  const auto c = client.create("/r", 1 << 20);
  ASSERT_TRUE(c.ok());
  const auto data = bytes(32 * 1024, 1);
  ASSERT_TRUE(client.write(c.ino, 0, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(client.read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(ReplFixture, ThreeCopiesExist) {
  DfsClient client(1, mds, ds, repl_cfg());
  const auto c = client.create("/copies", 1 << 20);
  ASSERT_TRUE(client.write(c.ino, 0, bytes(8192, 2)).ok());
  for (std::uint32_t r = 0; r < 3; ++r)
    EXPECT_TRUE(ds.has_shard(c.ino, 0, r)) << "replica " << r;
  EXPECT_FALSE(ds.has_shard(c.ino, 0, 3));
}

TEST_F(ReplFixture, SurvivesTwoLostReplicas) {
  DfsClient client(1, mds, ds, repl_cfg());
  const auto c = client.create("/tolerant", 1 << 20);
  const auto data = bytes(8192, 3);
  ASSERT_TRUE(client.write(c.ino, 0, data).ok());
  ASSERT_TRUE(ds.drop_shard(c.ino, 0, 0));
  ASSERT_TRUE(ds.drop_shard(c.ino, 0, 1));
  std::vector<std::byte> out(data.size());
  const auto r = client.read_degraded(c.ino, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  // All three gone → unrecoverable.
  ASSERT_TRUE(ds.drop_shard(c.ino, 0, 2));
  EXPECT_EQ(client.read_degraded(c.ino, 0, out).err, EIO);
}

TEST_F(ReplFixture, UnalignedReplicatedWrite) {
  DfsClient client(1, mds, ds, repl_cfg());
  const auto c = client.create("/unaligned", 1 << 20);
  ASSERT_TRUE(client.write(c.ino, 0, bytes(16 * 1024, 4)).ok());
  const auto patch = bytes(100, 5);
  ASSERT_TRUE(client.write(c.ino, 5000, patch).ok());
  std::vector<std::byte> out(100);
  ASSERT_TRUE(client.read(c.ino, 5000, out).ok());
  EXPECT_EQ(out, patch);
  // Replicas stay identical after the read-merge-write.
  std::vector<std::byte> a(8192), b(8192);
  OpProfile prof;
  ds.read_shard(c.ino, 0, 0, a, prof);
  ds.read_shard(c.ino, 0, 2, b, prof);
  EXPECT_EQ(a, b);
}

TEST_F(ReplFixture, ReplicationWriteAmplificationVsEc) {
  // Ablation: 8K write costs r shard-writes under replication vs the
  // 6-op delta-parity RMW under RS(4,2).
  DfsClient repl(1, mds, ds, repl_cfg());
  DfsClient ecc(2, mds, ds, ClientConfig::optimized());
  const auto cr = repl.create("/wa-r", 1 << 20);
  const auto ce = ecc.create("/wa-e", 1 << 20);
  const auto data = bytes(8192, 6);
  ASSERT_TRUE(repl.write(cr.ino, 0, data).ok());
  ASSERT_TRUE(ecc.write(ce.ino, 0, data).ok());
  const auto wr = repl.write(cr.ino, 0, data);
  const auto we = ecc.write(ce.ino, 0, data);
  EXPECT_EQ(wr.prof.ds_ops, 3u);  // three copies
  EXPECT_EQ(we.prof.ds_ops, 6u);  // RMW: rd+wr data, 2x (rd+wr) parity
}

TEST_F(ReplFixture, FullStripeWriteSkipsRmwReads) {
  DfsClient client(1, mds, ds, ClientConfig::optimized());
  const auto c = client.create("/stripe", 1 << 20);
  // Aligned full stripe (4 x 8K): k+m = 6 pure writes, no reads.
  const auto full = client.write(c.ino, 0, bytes(32 * 1024, 7));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.prof.ds_ops, 6u);
  // Sub-stripe write: RMW (1+1 data + 2x(1+1) parity = 6 ops for 1 shard).
  const auto sub = client.write(c.ino, 0, bytes(8192, 8));
  EXPECT_EQ(sub.prof.ds_ops, 6u);
  // …but the full-stripe one moved no read traffic; verify parity stays
  // consistent either way via a degraded read.
  ASSERT_TRUE(ds.drop_shard(c.ino, 0, 2));
  std::vector<std::byte> out(32 * 1024);
  ASSERT_TRUE(client.read_degraded(c.ino, 0, out).ok());
}

TEST_F(ReplFixture, FullStripeContentCorrect) {
  DfsClient client(1, mds, ds, ClientConfig::optimized());
  const auto c = client.create("/stripes", 8 << 20);
  const auto data = bytes(128 * 1024, 9);  // 4 full stripes
  ASSERT_TRUE(client.write(c.ino, 0, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(client.read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
  // Mixed: unaligned span covering partial + full + partial stripes.
  const auto mixed = bytes(96 * 1024, 10);
  ASSERT_TRUE(client.write(c.ino, 16 * 1024, mixed).ok());
  std::vector<std::byte> out2(mixed.size());
  ASSERT_TRUE(client.read(c.ino, 16 * 1024, out2).ok());
  EXPECT_EQ(out2, mixed);
}

TEST_F(ReplFixture, DelegationRecallHandsOver) {
  auto cfg = ClientConfig::optimized();
  cfg.delegation_recall = true;
  DfsClient a(1, mds, ds, cfg);
  DfsClient b(2, mds, ds, cfg);
  const auto c = a.create("/lease", 1 << 20);
  const auto data = bytes(8192, 11);
  ASSERT_TRUE(a.write(c.ino, 0, data).ok());
  EXPECT_TRUE(a.holds_delegation(c.ino));

  // b's write triggers a recall; a releases; b proceeds.
  const auto wb = b.write(c.ino, 0, data);
  EXPECT_TRUE(wb.ok());
  EXPECT_TRUE(b.holds_delegation(c.ino));
  EXPECT_FALSE(a.holds_delegation(c.ino));

  // And back again.
  EXPECT_TRUE(a.write(c.ino, 8192, data).ok());
  EXPECT_TRUE(a.holds_delegation(c.ino));
  EXPECT_FALSE(b.holds_delegation(c.ino));
}

TEST_F(ReplFixture, NoRecallWithoutOptIn) {
  DfsClient a(1, mds, ds, ClientConfig::optimized());  // no recall handler
  DfsClient b(2, mds, ds, ClientConfig::optimized());
  const auto c = a.create("/stubborn", 1 << 20);
  const auto data = bytes(8192, 12);
  ASSERT_TRUE(a.write(c.ino, 0, data).ok());
  EXPECT_EQ(b.write(c.ino, 0, data).err, EAGAIN);
}

TEST_F(ReplFixture, RecallChargesExtraRoundTrip) {
  auto cfg = ClientConfig::optimized();
  cfg.delegation_recall = true;
  DfsClient a(1, mds, ds, cfg);
  DfsClient b(2, mds, ds, cfg);
  const auto c = a.create("/charged", 1 << 20);
  const auto data = bytes(8192, 13);
  ASSERT_TRUE(a.write(c.ino, 0, data).ok());
  const auto contested = b.write(c.ino, 0, data);
  ASSERT_TRUE(contested.ok());
  const auto held = b.write(c.ino, 0, data);
  // The recall-acquiring write paid more MDS ops than a held-lease write.
  EXPECT_GT(contested.prof.mds_ops, held.prof.mds_ops);
}

TEST_F(ReplFixture, NfsClientInteroperatesWithReplicatedFiles) {
  DfsClient writer(1, mds, ds, repl_cfg());
  DfsClient nfs(2, mds, ds, ClientConfig::standard_nfs());
  const auto c = writer.create("/shared-repl", 1 << 20);
  const auto data = bytes(8192, 14);
  ASSERT_TRUE(writer.write(c.ino, 0, data).ok());
  // The server-side proxy path reads through striped_read, which for a
  // replicated file must hit the primary copies.
  std::vector<std::byte> out(data.size());
  const auto r = nfs.read(c.ino, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace dpc::dfs
