#include "dfs/client.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/rng.hpp"

namespace dpc::dfs {
namespace {

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

struct ClientFixture : ::testing::Test {
  ClientFixture()
      : mds(4),
        ds(8),
        nfs(1, mds, ds, ClientConfig::standard_nfs()),
        opt(2, mds, ds, ClientConfig::optimized()),
        dpc(3, mds, ds, ClientConfig::dpc_offloaded()) {}

  MdsCluster mds;
  DataServers ds;
  DfsClient nfs, opt, dpc;
};

TEST_F(ClientFixture, AllClientsFunctionallyEquivalent) {
  for (DfsClient* c : {&nfs, &opt, &dpc}) {
    const std::string path =
        "/f" + std::to_string(reinterpret_cast<std::uintptr_t>(c));
    const auto created = c->create(path, 1 << 20);
    ASSERT_TRUE(created.ok());
    const auto data = bytes(8192, 1);
    ASSERT_TRUE(c->write(created.ino, 8192, data).ok());
    std::vector<std::byte> out(8192);
    ASSERT_TRUE(c->read(created.ino, 8192, out).ok());
    EXPECT_EQ(out, data);
    ASSERT_TRUE(c->open(path).ok());
    ASSERT_TRUE(c->remove(path).ok());
    EXPECT_EQ(c->open(path).err, ENOENT);
  }
}

TEST_F(ClientFixture, ClientsInteroperateOnSharedFiles) {
  const auto created = opt.create("/shared", 1 << 20);
  ASSERT_TRUE(created.ok());
  const auto data = bytes(8192, 2);
  ASSERT_TRUE(opt.write(created.ino, 0, data).ok());
  // Another client reads what the first wrote (shared DFS semantics).
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(nfs.read(created.ino, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(ClientFixture, HostCpuProfileOrdering) {
  // Fig. 1 / Fig. 9: optimized burns far more host CPU than standard NFS;
  // DPC pushes the work to the DPU.
  const auto c1 = nfs.create("/n", 1 << 20);
  const auto c2 = opt.create("/o", 1 << 20);
  const auto c3 = dpc.create("/d", 1 << 20);
  const auto data = bytes(8192, 3);

  const auto wn = nfs.write(c1.ino, 0, data);
  const auto wo = opt.write(c2.ino, 0, data);
  const auto wd = dpc.write(c3.ino, 0, data);

  EXPECT_GT(wo.prof.host_cpu.ns, 3 * wn.prof.host_cpu.ns / 2)
      << "optimized client must burn more per-op CPU than standard NFS "
         "(Fig. 1's core-count gap also multiplies with its higher IOPS)";
  EXPECT_LT(wd.prof.host_cpu.ns, wn.prof.host_cpu.ns / 3)
      << "DPC host CPU must be far below even the standard NFS stack";
  EXPECT_GT(wd.prof.dpu_cpu.ns, 0);
  EXPECT_EQ(wn.prof.dpu_cpu.ns, 0);
  EXPECT_EQ(wo.prof.dpu_cpu.ns, 0);
  EXPECT_GT(wd.prof.pcie.ns, 0);  // nvme-fs transport
}

TEST_F(ClientFixture, StandardClientPaysMdsPerWrite) {
  const auto c = nfs.create("/per-op", 1 << 20);
  const auto data = bytes(8192, 4);
  (void)nfs.write(c.ino, 0, data);
  const auto w2 = nfs.write(c.ino, 8192, data);
  // Delegation (lock) acquired through the MDS on every op + proxied data.
  EXPECT_GE(w2.prof.mds_ops, 2u);
}

TEST_F(ClientFixture, OptimizedClientAmortizesDelegation) {
  const auto c = opt.create("/deleg", 1 << 20);
  const auto data = bytes(8192, 5);
  const auto w1 = opt.write(c.ino, 0, data);
  const auto w2 = opt.write(c.ino, 8192, data);
  // First write acquires the delegation; the second is MDS-free (the
  // preallocated size also suppresses size updates).
  EXPECT_GE(w1.prof.mds_ops, 1u);
  EXPECT_EQ(w2.prof.mds_ops, 0u);
}

TEST_F(ClientFixture, DelegationConflictsSurface) {
  const auto c = opt.create("/contested", 1 << 20);
  const auto data = bytes(8192, 6);
  ASSERT_TRUE(opt.write(c.ino, 0, data).ok());  // opt holds the delegation
  const auto res = dpc.write(c.ino, 0, data);
  EXPECT_EQ(res.err, EAGAIN);
}

TEST_F(ClientFixture, SizeGrowthUpdatesMetadataLazily) {
  const auto c = opt.create("/growing", 0);  // no preallocation
  const auto data = bytes(8192, 7);
  const auto w = opt.write(c.ino, 0, data);
  EXPECT_TRUE(w.ok());
  const auto st = opt.stat(c.ino);
  EXPECT_EQ(st.bytes, 8192u);
}

TEST_F(ClientFixture, DegradedReadReconstructsThroughClient) {
  const auto c = opt.create("/faulty", 1 << 20);
  const auto data = bytes(32 * 1024, 8);
  ASSERT_TRUE(opt.write(c.ino, 0, data).ok());
  ASSERT_TRUE(ds.drop_shard(c.ino, 0, 0));
  std::vector<std::byte> out(32 * 1024);
  const auto r = opt.read_degraded(c.ino, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(r.prof.host_cpu.ns, 0);
}

TEST_F(ClientFixture, SmallFileCreateWriteWorkload) {
  // Fig. 9's "8K file creation write" — per-client functional smoke.
  for (int i = 0; i < 50; ++i) {
    const auto c = dpc.create("/small/f" + std::to_string(i), 0);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(dpc.write(c.ino, 0, bytes(8192, 9)).ok());
  }
}

TEST_F(ClientFixture, ConcurrentClientsDisjointFiles) {
  constexpr int kThreads = 6;
  std::atomic<int> errors{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([this, t, &errors] {
      DfsClient client(static_cast<ClientId>(100 + t), mds, ds,
                       ClientConfig::optimized());
      const auto c =
          client.create("/mt/" + std::to_string(t), 1 << 20);
      if (!c.ok()) {
        ++errors;
        return;
      }
      const auto data = bytes(8192, static_cast<std::uint64_t>(t));
      std::vector<std::byte> out(8192);
      for (int i = 0; i < 50; ++i) {
        if (!client.write(c.ino, static_cast<std::uint64_t>(i) * 8192, data)
                 .ok())
          ++errors;
        if (!client.read(c.ino, static_cast<std::uint64_t>(i) * 8192, out)
                 .ok())
          ++errors;
        if (out != data) ++errors;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace dpc::dfs
