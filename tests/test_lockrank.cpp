// Lock-rank / lock-order detector tests.
//
// With DPC_LOCKRANK_ENABLED (debug builds, sanitizer builds, or an explicit
// -DDPC_LOCKRANK=1) a rank inversion and a two-mutex acquired-before cycle
// must each be detected deterministically — on the first offending
// acquisition, with both lock sets in the message. In release builds the
// detector compiles out entirely and the same sequences must be silent.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "sim/lockrank.hpp"
#include "sim/thread_annotations.hpp"

#include "core/dpc_system.hpp"

namespace dpc::sim {
namespace {

class LockRankFixture : public ::testing::Test {
 protected:
  void SetUp() override { lockrank::reset_for_test(); }
  void TearDown() override { lockrank::reset_for_test(); }
};

#if DPC_LOCKRANK_ENABLED

TEST_F(LockRankFixture, DescendingAcquisitionIsClean) {
  AnnotatedMutex hi{"t.hi", LockRank::kSystem};
  AnnotatedMutex lo{"t.lo", LockRank::kDriver};
  LockGuard a(hi);
  LockGuard b(lo);
  EXPECT_EQ(lockrank::held_count(), 2u);
}

TEST_F(LockRankFixture, RankInversionThrowsOnFirstBadAcquire) {
  AnnotatedMutex hi{"t.hi", LockRank::kSystem};
  AnnotatedMutex lo{"t.lo", LockRank::kDriver};
  {
    LockGuard a(lo);
    try {
      LockGuard b(hi);
      FAIL() << "rank inversion not detected";
    } catch (const LockOrderError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("rank inversion"), std::string::npos) << msg;
      EXPECT_NE(msg.find("t.hi"), std::string::npos) << msg;
      EXPECT_NE(msg.find("t.lo"), std::string::npos) << msg;
    }
    EXPECT_EQ(lockrank::held_count(), 1u);
  }
  // The failed acquisition left the mutex untouched: it is still free.
  EXPECT_TRUE(hi.try_lock());
  hi.unlock();
}

TEST_F(LockRankFixture, SameRankConsistentOrderIsClean) {
  AnnotatedMutex a{"t.stripe_a", LockRank::kShard};
  AnnotatedMutex b{"t.stripe_b", LockRank::kShard};
  for (int i = 0; i < 3; ++i) {
    LockGuard la(a);
    LockGuard lb(b);
  }
  EXPECT_EQ(lockrank::held_count(), 0u);
}

TEST_F(LockRankFixture, TwoMutexCycleDetectedDeterministically) {
  AnnotatedMutex a{"t.cycle_a", LockRank::kShard};
  AnnotatedMutex b{"t.cycle_b", LockRank::kShard};
  // Record the A → B edge on a second thread: the edge graph is global,
  // the reverse acquisition below happens on this thread — exactly the
  // cross-thread shape a real AB/BA deadlock has.
  std::thread([&] {
    LockGuard la(a);
    LockGuard lb(b);
  }).join();
  LockGuard lb(b);
  try {
    LockGuard la(a);
    FAIL() << "acquired-before cycle not detected";
  } catch (const LockOrderError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("t.cycle_a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("t.cycle_b"), std::string::npos) << msg;
    // Both lock sets: this thread's holds and the first-seen holder of
    // the reverse edge.
    EXPECT_NE(msg.find("this thread holds"), std::string::npos) << msg;
    EXPECT_NE(msg.find("opposite order was first taken while holding"),
              std::string::npos)
        << msg;
  }
}

TEST_F(LockRankFixture, SharedAcquisitionsParticipate) {
  AnnotatedSharedMutex rw{"t.rw", LockRank::kStore};
  AnnotatedMutex hi{"t.hi2", LockRank::kSystem};
  SharedLockGuard s(rw);
  EXPECT_THROW(hi.lock(), LockOrderError);
}

TEST_F(LockRankFixture, PumpLocksUnderRestartFollowIndexOrder) {
  // restart_dpu()'s all-queue pump freeze takes every per-queue pump lock in
  // index order. All pump locks share one rank, so the rank check alone says
  // nothing — the acquired-before graph must pin the order. After a restart
  // has seeded edge q0 -> q1, a pump-mode caller repeating that order is
  // clean and a reversed acquisition is reported as a cycle.
  core::DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.enable_cache = false;
  o.with_dfs = false;
  o.dpu_workers = 1;
  core::DpcSystem sys(o);
  ASSERT_GE(sys.pump_queue_count(), 2);

  const auto rep = sys.restart_dpu();  // index-order freeze: records q0 -> q1
  EXPECT_TRUE(rep.clean());
  {
    LockGuard l0(sys.pump_lock_for_test(0));
    LockGuard l1(sys.pump_lock_for_test(1));  // same order as the freeze
  }

  LockGuard l1(sys.pump_lock_for_test(1));
  try {
    LockGuard l0(sys.pump_lock_for_test(0));
    FAIL() << "reversed pump-lock acquisition not detected";
  } catch (const LockOrderError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dpc.pump"), std::string::npos) << msg;
    EXPECT_NE(msg.find("opposite order was first taken while holding"),
              std::string::npos)
        << msg;
  }
}

TEST_F(LockRankFixture, RecursiveAcquisitionThrows) {
  AnnotatedMutex m{"t.rec", LockRank::kDriver};
  m.lock();
  EXPECT_THROW(m.lock(), LockOrderError);
  m.unlock();
}

#else  // !DPC_LOCKRANK_ENABLED

TEST_F(LockRankFixture, CompiledOutInRelease) {
  // The exact sequences the enabled build must reject are silent here,
  // and the bookkeeping reports nothing held.
  AnnotatedMutex hi{"t.hi", LockRank::kSystem};
  AnnotatedMutex lo{"t.lo", LockRank::kDriver};
  {
    LockGuard a(lo);
    LockGuard b(hi);  // rank inversion — must not throw
    EXPECT_EQ(lockrank::held_count(), 0u);
  }
  AnnotatedMutex x{"t.x", LockRank::kShard};
  AnnotatedMutex y{"t.y", LockRank::kShard};
  {
    LockGuard lx(x);
    LockGuard ly(y);
  }
  {
    LockGuard ly(y);
    LockGuard lx(x);  // reverse order — must not throw
  }
}

#endif  // DPC_LOCKRANK_ENABLED

}  // namespace
}  // namespace dpc::sim
