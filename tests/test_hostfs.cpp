#include "hostfs/ext4like.hpp"

#include <gtest/gtest.h>

#include <cerrno>

#include "sim/rng.hpp"

namespace dpc::hostfs {
namespace {

struct HostfsFixture : ::testing::Test {
  HostfsFixture() : fs(disk, opts()) {}

  static Ext4likeOptions opts() {
    Ext4likeOptions o;
    o.total_blocks = 1 << 16;  // 256 MB device keeps tests snappy
    o.max_inodes = 1024;
    o.page_cache_pages = 512;
    return o;
  }

  std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<std::byte> v(n);
    for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
    return v;
  }

  ssd::SsdModel disk;
  Ext4like fs;
};

TEST_F(HostfsFixture, RootDirectoryExists) {
  const auto st = fs.getattr(kRootIno);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value.type, FileType::kDirectory);
}

TEST_F(HostfsFixture, CreateLookupStat) {
  const auto c = fs.create(kRootIno, "hello", 0644);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.cost.total.ns, 0);
  EXPECT_GT(c.cost.dev_writes, 0u);  // journal + inode + dirent
  EXPECT_EQ(fs.lookup(kRootIno, "hello").value, c.value);
  EXPECT_EQ(fs.lookup(kRootIno, "nope").err, ENOENT);
  const auto st = fs.getattr(c.value);
  EXPECT_EQ(st.value.type, FileType::kRegular);
  EXPECT_EQ(st.value.size, 0u);
}

TEST_F(HostfsFixture, DuplicateCreateFails) {
  ASSERT_TRUE(fs.create(kRootIno, "x", 0644).ok());
  EXPECT_EQ(fs.create(kRootIno, "x", 0644).err, EEXIST);
}

TEST_F(HostfsFixture, WriteReadDirect) {
  const auto ino = fs.create(kRootIno, "f", 0644).value;
  const auto data = bytes(10000, 1);
  const auto w = fs.write(ino, 0, data, /*direct=*/true);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value, 10000u);
  EXPECT_GT(w.cost.dev_writes, 2u);  // 3 data blocks + metadata
  std::vector<std::byte> out(10000);
  const auto r = fs.read(ino, 0, out, /*direct=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs.getattr(ino).value.size, 10000u);
}

TEST_F(HostfsFixture, BufferedWritesAbsorbedByPageCache) {
  const auto ino = fs.create(kRootIno, "buf", 0644).value;
  const auto data = bytes(4096, 2);
  const auto w1 = fs.write(ino, 0, data, /*direct=*/false);
  ASSERT_TRUE(w1.ok());
  // A buffered 4K write costs metadata updates but no data-block write.
  const auto direct_cost =
      fs.write(ino, 8192, data, /*direct=*/true).cost.total;
  const auto buffered_cost =
      fs.write(ino, 4096, data, /*direct=*/false).cost.total;
  EXPECT_LT(buffered_cost.ns, direct_cost.ns);
  // Buffered data readable back through the cache.
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(fs.read(ino, 0, out, /*direct=*/false).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostfsFixture, FsyncPersistsBufferedData) {
  const auto ino = fs.create(kRootIno, "durable", 0644).value;
  const auto data = bytes(8192, 3);
  ASSERT_TRUE(fs.write(ino, 0, data, /*direct=*/false).ok());
  ASSERT_TRUE(fs.fsync(ino).ok());
  // Direct read bypasses the cache: data must be on the device now.
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(fs.read(ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostfsFixture, HolesReadZero) {
  const auto ino = fs.create(kRootIno, "holey", 0644).value;
  ASSERT_TRUE(fs.write(ino, 1 << 20, bytes(10, 4), true).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(fs.read(ino, 4096, out, true).ok());
  for (auto b : out) ASSERT_EQ(b, std::byte{0});
}

TEST_F(HostfsFixture, IndirectAndDoubleIndirectMapping) {
  const auto ino = fs.create(kRootIno, "large", 0644).value;
  // Past 12 direct blocks (48 KB) and past the single-indirect range
  // (48 KB + 2 MB).
  const auto probe = [&](std::uint64_t off, std::uint64_t seed) {
    const auto data = bytes(4096, seed);
    ASSERT_TRUE(fs.write(ino, off, data, true).ok());
    std::vector<std::byte> out(4096);
    ASSERT_TRUE(fs.read(ino, off, out, true).ok());
    EXPECT_EQ(out, data) << "offset " << off;
  };
  probe(0, 10);
  probe(11 * 4096, 11);                      // last direct
  probe(12 * 4096, 12);                      // first indirect
  probe((12 + 511) * 4096, 13);              // last indirect
  probe((12 + 512) * 4096, 14);              // first double-indirect
  probe((12 + 512 + 512 * 3 + 7) * 4096, 15);  // deep double-indirect
}

TEST_F(HostfsFixture, MkdirReaddirUnlinkRmdir) {
  const auto d = fs.mkdir(kRootIno, "dir", 0755).value;
  ASSERT_TRUE(fs.create(d, "a", 0644).ok());
  ASSERT_TRUE(fs.create(d, "b", 0644).ok());
  const auto list = fs.readdir(d);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value.size(), 2u);
  EXPECT_EQ(fs.rmdir(kRootIno, "dir").err, ENOTEMPTY);
  ASSERT_TRUE(fs.unlink(d, "a").ok());
  ASSERT_TRUE(fs.unlink(d, "b").ok());
  EXPECT_TRUE(fs.rmdir(kRootIno, "dir").ok());
  EXPECT_EQ(fs.lookup(kRootIno, "dir").err, ENOENT);
}

TEST_F(HostfsFixture, UnlinkFreesBlocks) {
  const auto free0 = fs.free_blocks();
  const auto ino = fs.create(kRootIno, "fat", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(1 << 20, 5), true).ok());
  EXPECT_LT(fs.free_blocks(), free0);
  ASSERT_TRUE(fs.unlink(kRootIno, "fat").ok());
  // Directory block stays allocated; data + indirect blocks come back.
  EXPECT_GE(fs.free_blocks() + 2, free0);
}

TEST_F(HostfsFixture, RenameWithinAndAcrossDirs) {
  const auto d1 = fs.mkdir(kRootIno, "d1", 0755).value;
  const auto d2 = fs.mkdir(kRootIno, "d2", 0755).value;
  const auto f = fs.create(d1, "f", 0644).value;
  ASSERT_TRUE(fs.rename(d1, "f", d1, "g").ok());
  EXPECT_EQ(fs.lookup(d1, "g").value, f);
  ASSERT_TRUE(fs.rename(d1, "g", d2, "h").ok());
  EXPECT_EQ(fs.lookup(d1, "g").err, ENOENT);
  EXPECT_EQ(fs.lookup(d2, "h").value, f);
  // Replace existing destination.
  const auto victim = fs.create(d2, "i", 0644).value;
  ASSERT_TRUE(fs.rename(d2, "h", d2, "i").ok());
  EXPECT_EQ(fs.lookup(d2, "i").value, f);
  EXPECT_EQ(fs.getattr(victim).err, ENOENT);
}

TEST_F(HostfsFixture, ResolvePaths) {
  const auto a = fs.mkdir(kRootIno, "a", 0755).value;
  const auto f = fs.create(a, "f", 0644).value;
  EXPECT_EQ(fs.resolve("/a/f").value, f);
  EXPECT_EQ(fs.resolve("/").value, kRootIno);
  EXPECT_EQ(fs.resolve("/a/missing").err, ENOENT);
}

TEST_F(HostfsFixture, TruncateToZeroFreesData) {
  const auto ino = fs.create(kRootIno, "t", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(1 << 18, 6), true).ok());
  const auto free_before = fs.free_blocks();
  ASSERT_TRUE(fs.truncate(ino, 0).ok());
  EXPECT_GT(fs.free_blocks(), free_before);
  EXPECT_EQ(fs.getattr(ino).value.size, 0u);
}

TEST_F(HostfsFixture, CostAccountingSeparatesReadAndWrite) {
  const auto ino = fs.create(kRootIno, "cost", 0644).value;
  const auto data = bytes(4096, 7);
  const auto w = fs.write(ino, 0, data, true);
  EXPECT_GT(w.cost.dev_writes, 0u);
  const auto r = fs.read(ino, 0,
                         std::span<std::byte>(const_cast<std::byte*>(
                                                  data.data()),
                                              data.size()),
                         true);
  EXPECT_GT(r.cost.dev_reads, 0u);
  EXPECT_EQ(r.cost.dev_writes, 0u);
}

TEST_F(HostfsFixture, ReaddirSkipsHolesFromUnlink) {
  const auto d = fs.mkdir(kRootIno, "holes", 0755).value;
  ASSERT_TRUE(fs.create(d, "a", 0644).ok());
  ASSERT_TRUE(fs.create(d, "b", 0644).ok());
  ASSERT_TRUE(fs.create(d, "c", 0644).ok());
  ASSERT_TRUE(fs.unlink(d, "b").ok());
  const auto list = fs.readdir(d).value;
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "a");
  EXPECT_EQ(list[1].name, "c");
  // The freed dirent slot is reused.
  ASSERT_TRUE(fs.create(d, "d", 0644).ok());
  EXPECT_EQ(fs.readdir(d).value.size(), 3u);
}

TEST_F(HostfsFixture, WriteToDirectoryRejected) {
  const auto d = fs.mkdir(kRootIno, "nd", 0755).value;
  std::vector<std::byte> buf(16);
  EXPECT_EQ(fs.write(d, 0, buf, true).err, EISDIR);
  EXPECT_EQ(fs.read(d, 0, buf, true).err, EISDIR);
}

}  // namespace
}  // namespace dpc::hostfs
