#include "hostfs/ext4like.hpp"

#include <gtest/gtest.h>

#include <cerrno>

#include "sim/rng.hpp"

namespace dpc::hostfs {
namespace {

struct HostfsFixture : ::testing::Test {
  HostfsFixture() : fs(disk, opts()) {}

  static Ext4likeOptions opts() {
    Ext4likeOptions o;
    o.total_blocks = 1 << 16;  // 256 MB device keeps tests snappy
    o.max_inodes = 1024;
    o.page_cache_pages = 512;
    return o;
  }

  std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<std::byte> v(n);
    for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
    return v;
  }

  ssd::SsdModel disk;
  Ext4like fs;
};

TEST_F(HostfsFixture, RootDirectoryExists) {
  const auto st = fs.getattr(kRootIno);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value.type, FileType::kDirectory);
}

TEST_F(HostfsFixture, CreateLookupStat) {
  const auto c = fs.create(kRootIno, "hello", 0644);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.cost.total.ns, 0);
  EXPECT_GT(c.cost.dev_writes, 0u);  // journal + inode + dirent
  EXPECT_EQ(fs.lookup(kRootIno, "hello").value, c.value);
  EXPECT_EQ(fs.lookup(kRootIno, "nope").err, ENOENT);
  const auto st = fs.getattr(c.value);
  EXPECT_EQ(st.value.type, FileType::kRegular);
  EXPECT_EQ(st.value.size, 0u);
}

TEST_F(HostfsFixture, DuplicateCreateFails) {
  ASSERT_TRUE(fs.create(kRootIno, "x", 0644).ok());
  EXPECT_EQ(fs.create(kRootIno, "x", 0644).err, EEXIST);
}

TEST_F(HostfsFixture, WriteReadDirect) {
  const auto ino = fs.create(kRootIno, "f", 0644).value;
  const auto data = bytes(10000, 1);
  const auto w = fs.write(ino, 0, data, /*direct=*/true);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value, 10000u);
  EXPECT_GT(w.cost.dev_writes, 2u);  // 3 data blocks + metadata
  std::vector<std::byte> out(10000);
  const auto r = fs.read(ino, 0, out, /*direct=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs.getattr(ino).value.size, 10000u);
}

TEST_F(HostfsFixture, BufferedWritesAbsorbedByPageCache) {
  const auto ino = fs.create(kRootIno, "buf", 0644).value;
  const auto data = bytes(4096, 2);
  const auto w1 = fs.write(ino, 0, data, /*direct=*/false);
  ASSERT_TRUE(w1.ok());
  // A buffered 4K write costs metadata updates but no data-block write.
  const auto direct_cost =
      fs.write(ino, 8192, data, /*direct=*/true).cost.total;
  const auto buffered_cost =
      fs.write(ino, 4096, data, /*direct=*/false).cost.total;
  EXPECT_LT(buffered_cost.ns, direct_cost.ns);
  // Buffered data readable back through the cache.
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(fs.read(ino, 0, out, /*direct=*/false).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostfsFixture, FsyncPersistsBufferedData) {
  const auto ino = fs.create(kRootIno, "durable", 0644).value;
  const auto data = bytes(8192, 3);
  ASSERT_TRUE(fs.write(ino, 0, data, /*direct=*/false).ok());
  ASSERT_TRUE(fs.fsync(ino).ok());
  // Direct read bypasses the cache: data must be on the device now.
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(fs.read(ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostfsFixture, HolesReadZero) {
  const auto ino = fs.create(kRootIno, "holey", 0644).value;
  ASSERT_TRUE(fs.write(ino, 1 << 20, bytes(10, 4), true).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(fs.read(ino, 4096, out, true).ok());
  for (auto b : out) ASSERT_EQ(b, std::byte{0});
}

TEST_F(HostfsFixture, IndirectAndDoubleIndirectMapping) {
  const auto ino = fs.create(kRootIno, "large", 0644).value;
  // Past 12 direct blocks (48 KB) and past the single-indirect range
  // (48 KB + 2 MB).
  const auto probe = [&](std::uint64_t off, std::uint64_t seed) {
    const auto data = bytes(4096, seed);
    ASSERT_TRUE(fs.write(ino, off, data, true).ok());
    std::vector<std::byte> out(4096);
    ASSERT_TRUE(fs.read(ino, off, out, true).ok());
    EXPECT_EQ(out, data) << "offset " << off;
  };
  probe(0, 10);
  probe(11 * 4096, 11);                      // last direct
  probe(12 * 4096, 12);                      // first indirect
  probe((12 + 511) * 4096, 13);              // last indirect
  probe((12 + 512) * 4096, 14);              // first double-indirect
  probe((12 + 512 + 512 * 3 + 7) * 4096, 15);  // deep double-indirect
}

TEST_F(HostfsFixture, MkdirReaddirUnlinkRmdir) {
  const auto d = fs.mkdir(kRootIno, "dir", 0755).value;
  ASSERT_TRUE(fs.create(d, "a", 0644).ok());
  ASSERT_TRUE(fs.create(d, "b", 0644).ok());
  const auto list = fs.readdir(d);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value.size(), 2u);
  EXPECT_EQ(fs.rmdir(kRootIno, "dir").err, ENOTEMPTY);
  ASSERT_TRUE(fs.unlink(d, "a").ok());
  ASSERT_TRUE(fs.unlink(d, "b").ok());
  EXPECT_TRUE(fs.rmdir(kRootIno, "dir").ok());
  EXPECT_EQ(fs.lookup(kRootIno, "dir").err, ENOENT);
}

TEST_F(HostfsFixture, UnlinkFreesBlocks) {
  const auto free0 = fs.free_blocks();
  const auto ino = fs.create(kRootIno, "fat", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(1 << 20, 5), true).ok());
  EXPECT_LT(fs.free_blocks(), free0);
  ASSERT_TRUE(fs.unlink(kRootIno, "fat").ok());
  // Directory block stays allocated; data + indirect blocks come back.
  EXPECT_GE(fs.free_blocks() + 2, free0);
}

TEST_F(HostfsFixture, RenameWithinAndAcrossDirs) {
  const auto d1 = fs.mkdir(kRootIno, "d1", 0755).value;
  const auto d2 = fs.mkdir(kRootIno, "d2", 0755).value;
  const auto f = fs.create(d1, "f", 0644).value;
  ASSERT_TRUE(fs.rename(d1, "f", d1, "g").ok());
  EXPECT_EQ(fs.lookup(d1, "g").value, f);
  ASSERT_TRUE(fs.rename(d1, "g", d2, "h").ok());
  EXPECT_EQ(fs.lookup(d1, "g").err, ENOENT);
  EXPECT_EQ(fs.lookup(d2, "h").value, f);
  // Replace existing destination.
  const auto victim = fs.create(d2, "i", 0644).value;
  ASSERT_TRUE(fs.rename(d2, "h", d2, "i").ok());
  EXPECT_EQ(fs.lookup(d2, "i").value, f);
  EXPECT_EQ(fs.getattr(victim).err, ENOENT);
}

TEST_F(HostfsFixture, ResolvePaths) {
  const auto a = fs.mkdir(kRootIno, "a", 0755).value;
  const auto f = fs.create(a, "f", 0644).value;
  EXPECT_EQ(fs.resolve("/a/f").value, f);
  EXPECT_EQ(fs.resolve("/").value, kRootIno);
  EXPECT_EQ(fs.resolve("/a/missing").err, ENOENT);
}

TEST_F(HostfsFixture, TruncateToZeroFreesData) {
  const auto ino = fs.create(kRootIno, "t", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(1 << 18, 6), true).ok());
  const auto free_before = fs.free_blocks();
  ASSERT_TRUE(fs.truncate(ino, 0).ok());
  EXPECT_GT(fs.free_blocks(), free_before);
  EXPECT_EQ(fs.getattr(ino).value.size, 0u);
}

TEST_F(HostfsFixture, CostAccountingSeparatesReadAndWrite) {
  const auto ino = fs.create(kRootIno, "cost", 0644).value;
  const auto data = bytes(4096, 7);
  const auto w = fs.write(ino, 0, data, true);
  EXPECT_GT(w.cost.dev_writes, 0u);
  const auto r = fs.read(ino, 0,
                         std::span<std::byte>(const_cast<std::byte*>(
                                                  data.data()),
                                              data.size()),
                         true);
  EXPECT_GT(r.cost.dev_reads, 0u);
  EXPECT_EQ(r.cost.dev_writes, 0u);
}

TEST_F(HostfsFixture, ReaddirSkipsHolesFromUnlink) {
  const auto d = fs.mkdir(kRootIno, "holes", 0755).value;
  ASSERT_TRUE(fs.create(d, "a", 0644).ok());
  ASSERT_TRUE(fs.create(d, "b", 0644).ok());
  ASSERT_TRUE(fs.create(d, "c", 0644).ok());
  ASSERT_TRUE(fs.unlink(d, "b").ok());
  const auto list = fs.readdir(d).value;
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "a");
  EXPECT_EQ(list[1].name, "c");
  // The freed dirent slot is reused.
  ASSERT_TRUE(fs.create(d, "d", 0644).ok());
  EXPECT_EQ(fs.readdir(d).value.size(), 3u);
}

TEST_F(HostfsFixture, WriteToDirectoryRejected) {
  const auto d = fs.mkdir(kRootIno, "nd", 0755).value;
  std::vector<std::byte> buf(16);
  EXPECT_EQ(fs.write(d, 0, buf, true).err, EISDIR);
  EXPECT_EQ(fs.read(d, 0, buf, true).err, EISDIR);
}

/// Journal-lite WAL records survive an unclean unmount: a second mount on
/// the same device scans the journal region, CRC32C-validates each record,
/// and rejects torn ones.
TEST(HostfsJournal, MountScanCountsSurvivorsAndRejectsCorruptRecords) {
  ssd::SsdModel disk;
  const auto o = HostfsFixture::opts();
  {
    Ext4like fs1(disk, o);
    EXPECT_EQ(fs1.journal_valid_on_mount(), 0u) << "fresh disk has no WAL";
    ASSERT_TRUE(fs1.create(kRootIno, "a", 0644).ok());
    ASSERT_TRUE(fs1.mkdir(kRootIno, "d", 0755).ok());
    ASSERT_TRUE(fs1.rename(kRootIno, "a", kRootIno, "b").ok());
  }  // torn down without journal truncation — models a host crash

  Ext4like fs2(disk, o);
  const std::uint32_t survivors = fs2.journal_valid_on_mount();
  EXPECT_GE(survivors, 3u) << "every metadata mutation logs one record";

  // Flip one byte inside a record's sequence field: the CRC must reject
  // exactly that record on the next mount. Records are located by their
  // on-disk magic so the test stays independent of private layout math.
  std::vector<std::byte> block(kBlockSize);
  bool corrupted = false;
  for (std::uint64_t lba = 1; lba < 4096 && !corrupted; ++lba) {
    disk.read_block(lba, block);
    if (block[0] == std::byte{'D'} && block[1] == std::byte{'P'} &&
        block[2] == std::byte{'C'} && block[3] == std::byte{'J'}) {
      block[8] ^= std::byte{0x40};
      disk.write_block(lba, block);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "no WAL record found on the raw device";
  Ext4like fs3(disk, o);
  EXPECT_EQ(fs3.journal_valid_on_mount(), survivors - 1);

  // With journaling off, mutations leave no new records behind.
  auto noj = o;
  noj.journal_enabled = false;
  ssd::SsdModel disk2;
  {
    Ext4like fs4(disk2, noj);
    ASSERT_TRUE(fs4.create(kRootIno, "x", 0644).ok());
  }
  Ext4like fs5(disk2, o);
  EXPECT_EQ(fs5.journal_valid_on_mount(), 0u);
}

}  // namespace
}  // namespace dpc::hostfs
