#include "kvfs/kvfs.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <thread>

#include "sim/rng.hpp"

namespace dpc::kvfs {
namespace {

struct KvfsFixture : ::testing::Test {
  KvfsFixture() : remote(store), fs(remote) {}
  kv::KvStore store;
  kv::RemoteKv remote;
  Kvfs fs;

  std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<std::byte> v(n);
    for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
    return v;
  }
};

TEST_F(KvfsFixture, RootExists) {
  const auto attr = fs.getattr(kRootIno);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.type, FileType::kDirectory);
  EXPECT_EQ(attr.value.ino, kRootIno);
}

TEST_F(KvfsFixture, CreateLookupGetattr) {
  const auto c = fs.create(kRootIno, "file.txt", 0644);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.cost.ns, 0);  // remote KV round trips were modelled
  const auto l = fs.lookup(kRootIno, "file.txt");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value, c.value);
  const auto a = fs.getattr(c.value);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value.type, FileType::kRegular);
  EXPECT_EQ(a.value.size, 0u);
  EXPECT_EQ(a.value.mode, 0644u);
}

TEST_F(KvfsFixture, CreateDuplicateFails) {
  ASSERT_TRUE(fs.create(kRootIno, "x", 0644).ok());
  EXPECT_EQ(fs.create(kRootIno, "x", 0644).err, EEXIST);
}

TEST_F(KvfsFixture, LookupMissingIsEnoent) {
  EXPECT_EQ(fs.lookup(kRootIno, "ghost").err, ENOENT);
  EXPECT_EQ(fs.getattr(999).err, ENOENT);
}

TEST_F(KvfsFixture, InvalidNamesRejected) {
  EXPECT_EQ(fs.create(kRootIno, "", 0644).err, EINVAL);
  EXPECT_EQ(fs.create(kRootIno, "a/b", 0644).err, EINVAL);
  EXPECT_EQ(fs.create(kRootIno, ".", 0644).err, EINVAL);
  EXPECT_EQ(fs.create(kRootIno, std::string(kMaxNameLen + 1, 'x'), 0644).err,
            EINVAL);
  // Exactly the 1024-byte limit from §3.4 is allowed.
  EXPECT_TRUE(fs.create(kRootIno, std::string(kMaxNameLen, 'y'), 0644).ok());
}

TEST_F(KvfsFixture, SmallFileWholeKvRewrite) {
  const auto ino = fs.create(kRootIno, "small", 0644).value;
  const auto data = bytes(100, 1);
  ASSERT_TRUE(fs.write(ino, 0, data).ok());
  // §3.4: small files are one KV rewritten whole.
  EXPECT_EQ(fs.stats().small_rewrites.load(), 1u);
  EXPECT_TRUE(store.contains(small_key(ino)));
  EXPECT_FALSE(store.contains(big_object_key(ino)));

  std::vector<std::byte> out(100);
  const auto r = fs.read(ino, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 100u);
  EXPECT_EQ(out, data);
}

TEST_F(KvfsFixture, SmallFileSparseWrite) {
  const auto ino = fs.create(kRootIno, "sparse", 0644).value;
  ASSERT_TRUE(fs.write(ino, 50, bytes(10, 2)).ok());
  EXPECT_EQ(fs.getattr(ino).value.size, 60u);
  std::vector<std::byte> out(60);
  ASSERT_TRUE(fs.read(ino, 0, out).ok());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], std::byte{0});
}

TEST_F(KvfsFixture, PromotionAt8K) {
  const auto ino = fs.create(kRootIno, "grow", 0644).value;
  const auto small = bytes(kSmallFileMax, 3);
  ASSERT_TRUE(fs.write(ino, 0, small).ok());
  EXPECT_EQ(fs.stats().promotions.load(), 0u);  // exactly 8K stays small

  // One more byte → promote: small KV deleted, big object created (§3.4).
  ASSERT_TRUE(fs.write(ino, kSmallFileMax, bytes(1, 4)).ok());
  EXPECT_EQ(fs.stats().promotions.load(), 1u);
  EXPECT_FALSE(store.contains(small_key(ino)));
  EXPECT_TRUE(store.contains(big_object_key(ino)));
  EXPECT_EQ(fs.getattr(ino).value.big_file, 1u);

  // Original bytes survive the promotion.
  std::vector<std::byte> out(kSmallFileMax);
  ASSERT_TRUE(fs.read(ino, 0, out).ok());
  EXPECT_EQ(out, small);
}

TEST_F(KvfsFixture, BigFileInPlaceUpdates) {
  const auto ino = fs.create(kRootIno, "big", 0644).value;
  const auto block0 = bytes(kBigBlock, 5);
  const auto block3 = bytes(kBigBlock, 6);
  ASSERT_TRUE(fs.write(ino, 0, block0).ok());
  ASSERT_TRUE(fs.write(ino, 3 * kBigBlock, block3).ok());  // promotes + hole
  EXPECT_EQ(fs.getattr(ino).value.size, 4u * kBigBlock);

  // Holes read as zeros.
  std::vector<std::byte> hole(kBigBlock);
  ASSERT_TRUE(fs.read(ino, kBigBlock, hole).ok());
  for (auto b : hole) ASSERT_EQ(b, std::byte{0});

  std::vector<std::byte> out(kBigBlock);
  ASSERT_TRUE(fs.read(ino, 3 * kBigBlock, out).ok());
  EXPECT_EQ(out, block3);

  // In-place rewrite of one 8K block touches block KVs, not whole files.
  const auto before = fs.stats().big_inplace_writes.load();
  ASSERT_TRUE(fs.write(ino, 3 * kBigBlock, block0).ok());
  EXPECT_GT(fs.stats().big_inplace_writes.load(), before);
}

TEST_F(KvfsFixture, UnalignedBigWriteSpansBlocks) {
  const auto ino = fs.create(kRootIno, "span", 0644).value;
  const auto data = bytes(3 * kBigBlock, 7);
  ASSERT_TRUE(fs.write(ino, kBigBlock / 2, data).ok());
  std::vector<std::byte> out(3 * kBigBlock);
  ASSERT_TRUE(fs.read(ino, kBigBlock / 2, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(KvfsFixture, ReadPastEofShortens) {
  const auto ino = fs.create(kRootIno, "short", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(10, 8)).ok());
  std::vector<std::byte> out(100);
  const auto r = fs.read(ino, 5, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 5u);
  const auto r2 = fs.read(ino, 100, out);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value, 0u);
}

TEST_F(KvfsFixture, MkdirReaddirScan) {
  const auto dir = fs.mkdir(kRootIno, "d", 0755).value;
  ASSERT_TRUE(fs.create(dir, "b", 0644).ok());
  ASSERT_TRUE(fs.create(dir, "a", 0644).ok());
  ASSERT_TRUE(fs.mkdir(dir, "c", 0755).ok());
  const auto list = fs.readdir(dir);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value.size(), 3u);
  // Prefix scan returns entries in name order.
  EXPECT_EQ(list.value[0].name, "a");
  EXPECT_EQ(list.value[1].name, "b");
  EXPECT_EQ(list.value[2].name, "c");
  EXPECT_EQ(fs.readdir(list.value[0].ino).err, ENOTDIR);
}

TEST_F(KvfsFixture, ResolveWalksFromRoot) {
  const auto a = fs.mkdir(kRootIno, "a", 0755).value;
  const auto b = fs.mkdir(a, "b", 0755).value;
  const auto f = fs.create(b, "f.txt", 0644).value;
  EXPECT_EQ(fs.resolve("/a/b/f.txt").value, f);
  EXPECT_EQ(fs.resolve("/a/b").value, b);
  EXPECT_EQ(fs.resolve("/").value, kRootIno);
  EXPECT_EQ(fs.resolve("/a//b/").value, b);  // empty components skipped
  EXPECT_EQ(fs.resolve("/nope").err, ENOENT);
  EXPECT_EQ(fs.resolve("relative").err, EINVAL);
}

TEST_F(KvfsFixture, UnlinkRemovesAllKvs) {
  const auto ino = fs.create(kRootIno, "gone", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(3 * kBigBlock, 9)).ok());  // big file
  ASSERT_TRUE(fs.unlink(kRootIno, "gone").ok());
  EXPECT_EQ(fs.lookup(kRootIno, "gone").err, ENOENT);
  EXPECT_EQ(fs.getattr(ino).err, ENOENT);
  // Every KV (inode, attr, object, blocks) is gone: only the root attr and
  // the two allocation counters remain.
  EXPECT_EQ(store.size(), 3u);
}

TEST_F(KvfsFixture, RmdirSemantics) {
  const auto dir = fs.mkdir(kRootIno, "dir", 0755).value;
  ASSERT_TRUE(fs.create(dir, "child", 0644).ok());
  EXPECT_EQ(fs.rmdir(kRootIno, "dir").err, ENOTEMPTY);
  ASSERT_TRUE(fs.unlink(dir, "child").ok());
  EXPECT_TRUE(fs.rmdir(kRootIno, "dir").ok());
  EXPECT_EQ(fs.rmdir(kRootIno, "dir").err, ENOENT);
  // rmdir on a file / unlink on a dir.
  ASSERT_TRUE(fs.create(kRootIno, "f", 0644).ok());
  EXPECT_EQ(fs.rmdir(kRootIno, "f").err, ENOTDIR);
  ASSERT_TRUE(fs.mkdir(kRootIno, "d2", 0755).ok());
  EXPECT_EQ(fs.unlink(kRootIno, "d2").err, EISDIR);
}

TEST_F(KvfsFixture, RenameMovesAndReplaces) {
  const auto a = fs.mkdir(kRootIno, "a", 0755).value;
  const auto b = fs.mkdir(kRootIno, "b", 0755).value;
  const auto f = fs.create(a, "f", 0644).value;
  ASSERT_TRUE(fs.write(f, 0, bytes(10, 10)).ok());

  ASSERT_TRUE(fs.rename(a, "f", b, "g").ok());
  EXPECT_EQ(fs.lookup(a, "f").err, ENOENT);
  EXPECT_EQ(fs.lookup(b, "g").value, f);

  // Replace an existing destination file.
  const auto h = fs.create(b, "h", 0644).value;
  ASSERT_TRUE(fs.write(h, 0, bytes(20, 11)).ok());
  ASSERT_TRUE(fs.rename(b, "g", b, "h").ok());
  EXPECT_EQ(fs.lookup(b, "h").value, f);
  EXPECT_EQ(fs.getattr(h).err, ENOENT);

  // Rename onto itself is a no-op success.
  EXPECT_TRUE(fs.rename(b, "h", b, "h").ok());
  // Missing source.
  EXPECT_EQ(fs.rename(b, "zz", b, "yy").err, ENOENT);
}

TEST_F(KvfsFixture, TruncateGrowShrink) {
  const auto ino = fs.create(kRootIno, "t", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(4 * kBigBlock, 12)).ok());
  ASSERT_TRUE(fs.truncate(ino, kBigBlock + 5).ok());
  EXPECT_EQ(fs.getattr(ino).value.size, kBigBlock + 5);
  // Shrink released trailing block KVs.
  std::vector<std::byte> out(10);
  EXPECT_EQ(fs.read(ino, kBigBlock + 4, out).value, 1u);
  // Grow back: the reappearing range is a hole.
  ASSERT_TRUE(fs.truncate(ino, 3 * kBigBlock).ok());
  std::vector<std::byte> tail(kBigBlock);
  ASSERT_TRUE(fs.read(ino, 2 * kBigBlock, tail).ok());
  for (auto byte : tail) ASSERT_EQ(byte, std::byte{0});
}

TEST_F(KvfsFixture, SmallTruncatePromotes) {
  const auto ino = fs.create(kRootIno, "tp", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(100, 13)).ok());
  ASSERT_TRUE(fs.truncate(ino, 100 * 1024).ok());
  EXPECT_EQ(fs.getattr(ino).value.big_file, 1u);
  EXPECT_EQ(fs.getattr(ino).value.size, 100u * 1024);
}

TEST_F(KvfsFixture, ChmodChown) {
  const auto ino = fs.create(kRootIno, "perm", 0644).value;
  ASSERT_TRUE(fs.chmod(ino, 0600).ok());
  ASSERT_TRUE(fs.chown(ino, 1000, 100).ok());
  const auto a = fs.getattr(ino).value;
  EXPECT_EQ(a.mode, 0600u);
  EXPECT_EQ(a.uid, 1000u);
  EXPECT_EQ(a.gid, 100u);
}

TEST_F(KvfsFixture, DentryAndAttrCachesHit) {
  const auto ino = fs.create(kRootIno, "cached", 0644).value;
  (void)fs.lookup(kRootIno, "cached");
  const auto hits_before = fs.stats().dentry_hits.load();
  (void)fs.lookup(kRootIno, "cached");
  EXPECT_GT(fs.stats().dentry_hits.load(), hits_before);
  (void)fs.getattr(ino);
  const auto attr_hits = fs.stats().attr_hits.load();
  (void)fs.getattr(ino);
  EXPECT_GT(fs.stats().attr_hits.load(), attr_hits);
  fs.drop_caches();
  const auto misses = fs.stats().dentry_misses.load();
  (void)fs.lookup(kRootIno, "cached");
  EXPECT_GT(fs.stats().dentry_misses.load(), misses);
}

TEST_F(KvfsFixture, WriteToDirectoryFails) {
  const auto dir = fs.mkdir(kRootIno, "dir", 0755).value;
  EXPECT_EQ(fs.write(dir, 0, bytes(10, 14)).err, EISDIR);
  std::vector<std::byte> out(10);
  EXPECT_EQ(fs.read(dir, 0, out).err, EISDIR);
  EXPECT_EQ(fs.truncate(dir, 0).err, EISDIR);
}

TEST_F(KvfsFixture, FsyncOnExistingFile) {
  const auto ino = fs.create(kRootIno, "sync", 0644).value;
  EXPECT_TRUE(fs.fsync(ino).ok());
  EXPECT_EQ(fs.fsync(31337).err, ENOENT);
}

TEST_F(KvfsFixture, ConcurrentCreatesInOneDirectory) {
  constexpr int kThreads = 8;
  constexpr int kFiles = 50;
  std::vector<std::thread> ts;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([this, t, &errors] {
      for (int i = 0; i < kFiles; ++i) {
        const auto res = fs.create(
            kRootIno, "f" + std::to_string(t) + "_" + std::to_string(i),
            0644);
        if (!res.ok()) ++errors;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(fs.readdir(kRootIno).value.size(),
            static_cast<std::size_t>(kThreads) * kFiles);
}

TEST_F(KvfsFixture, ConcurrentWritersDistinctFiles) {
  std::vector<Ino> inos;
  for (int t = 0; t < 8; ++t)
    inos.push_back(fs.create(kRootIno, "w" + std::to_string(t), 0644).value);
  std::vector<std::thread> ts;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([this, &inos, t, &errors] {
      const auto data = bytes(kBigBlock, static_cast<std::uint64_t>(t));
      for (int i = 0; i < 20; ++i) {
        if (!fs.write(inos[static_cast<std::size_t>(t)],
                      static_cast<std::uint64_t>(i) * kBigBlock, data)
                 .ok())
          ++errors;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(errors.load(), 0);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(fs.getattr(inos[static_cast<std::size_t>(t)]).value.size,
              20u * kBigBlock);
  }
}

TEST_F(KvfsFixture, KeyEncodingsAreOrderedAndTagged) {
  // Big-endian ino keeps lexicographic == numeric order (scan correctness).
  EXPECT_LT(inode_key_prefix(1), inode_key_prefix(2));
  EXPECT_LT(inode_key_prefix(255), inode_key_prefix(256));
  EXPECT_EQ(name_of_inode_key(inode_key(7, "abc")), "abc");
  // Tags keep the four KV spaces disjoint.
  EXPECT_NE(attr_key(5)[0], small_key(5)[0]);
  EXPECT_NE(small_key(5)[0], big_object_key(5)[0]);
  EXPECT_NE(big_object_key(5)[0], block_key(5)[0]);
}

TEST_F(KvfsFixture, FileObjectCodecRoundTrip) {
  FileObject obj;
  obj.set_block(0, 11);
  obj.set_block(5, 22);
  const auto enc = encode_file_object(obj);
  const auto back = decode_file_object(enc);
  ASSERT_EQ(back.blocks.size(), 6u);
  EXPECT_EQ(back.block_id(0), 11u);
  EXPECT_EQ(back.block_id(3), 0u);
  EXPECT_EQ(back.block_id(5), 22u);
  EXPECT_EQ(back.block_id(99), 0u);
}

TEST_F(KvfsFixture, HardLinkSharesData) {
  const auto ino = fs.create(kRootIno, "orig", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(100, 20)).ok());
  ASSERT_TRUE(fs.link(ino, kRootIno, "alias").ok());
  EXPECT_EQ(fs.getattr(ino).value.nlink, 2u);
  EXPECT_EQ(fs.lookup(kRootIno, "alias").value, ino);
  // Writes through one name are visible through the other (same inode).
  ASSERT_TRUE(fs.write(ino, 0, bytes(50, 21)).ok());
  std::vector<std::byte> out(50);
  const auto alias_ino = fs.lookup(kRootIno, "alias").value;
  ASSERT_TRUE(fs.read(alias_ino, 0, out).ok());
  EXPECT_EQ(out, bytes(50, 21));
}

TEST_F(KvfsFixture, UnlinkKeepsDataWhileLinksRemain) {
  const auto ino = fs.create(kRootIno, "a", 0644).value;
  ASSERT_TRUE(fs.write(ino, 0, bytes(3 * kBigBlock, 22)).ok());
  ASSERT_TRUE(fs.link(ino, kRootIno, "b").ok());
  ASSERT_TRUE(fs.unlink(kRootIno, "a").ok());
  // Data still there through the surviving link.
  EXPECT_EQ(fs.getattr(ino).value.nlink, 1u);
  std::vector<std::byte> out(3 * kBigBlock);
  ASSERT_TRUE(fs.read(ino, 0, out).ok());
  EXPECT_EQ(out, bytes(3 * kBigBlock, 22));
  // Last unlink purges everything.
  ASSERT_TRUE(fs.unlink(kRootIno, "b").ok());
  EXPECT_EQ(fs.getattr(ino).err, ENOENT);
  EXPECT_EQ(store.size(), 3u);  // root attr + 2 counters
}

TEST_F(KvfsFixture, LinkRejectsDirectoriesAndDuplicates) {
  const auto dir = fs.mkdir(kRootIno, "d", 0755).value;
  EXPECT_EQ(fs.link(dir, kRootIno, "dlink").err, EPERM);
  const auto f = fs.create(kRootIno, "f", 0644).value;
  EXPECT_EQ(fs.link(f, kRootIno, "f").err, EEXIST);
  EXPECT_EQ(fs.link(999, kRootIno, "x").err, ENOENT);
  EXPECT_EQ(fs.link(f, 999, "x").err, ENOENT);
}

TEST_F(KvfsFixture, SymlinkCreateAndReadlink) {
  const auto f = fs.create(kRootIno, "real", 0644).value;
  (void)f;
  const auto l = fs.symlink("/real", kRootIno, "ln");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(fs.getattr(l.value).value.type, FileType::kSymlink);
  EXPECT_EQ(fs.readlink(l.value).value, "/real");
  EXPECT_EQ(fs.readlink(f).err, EINVAL);  // not a symlink
}

TEST_F(KvfsFixture, ResolveFollowsAbsoluteAndRelative) {
  const auto dir = fs.mkdir(kRootIno, "data", 0755).value;
  const auto f = fs.create(dir, "file", 0644).value;
  ASSERT_TRUE(fs.symlink("/data/file", kRootIno, "abs").ok());
  ASSERT_TRUE(fs.symlink("file", dir, "rel").ok());
  ASSERT_TRUE(fs.symlink("/data", kRootIno, "dirlink").ok());
  EXPECT_EQ(fs.resolve("/abs").value, f);
  EXPECT_EQ(fs.resolve("/data/rel").value, f);
  // Symlink in the middle of a path.
  EXPECT_EQ(fs.resolve("/dirlink/file").value, f);
  EXPECT_EQ(fs.resolve("/dirlink/rel").value, f);
}

TEST_F(KvfsFixture, SymlinkLoopsBounded) {
  ASSERT_TRUE(fs.symlink("/b", kRootIno, "a").ok());
  ASSERT_TRUE(fs.symlink("/a", kRootIno, "b").ok());
  EXPECT_EQ(fs.resolve("/a").err, ELOOP);
}

TEST_F(KvfsFixture, DanglingSymlinkResolvesToEnoent) {
  ASSERT_TRUE(fs.symlink("/nothing", kRootIno, "dangling").ok());
  EXPECT_EQ(fs.resolve("/dangling").err, ENOENT);
  // Unlinking a symlink removes it and its target data KV.
  ASSERT_TRUE(fs.unlink(kRootIno, "dangling").ok());
  EXPECT_EQ(store.size(), 2u);  // root attr + the ino counter
}

}  // namespace
}  // namespace dpc::kvfs
