#include "core/dpc_system.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <thread>

#include "sim/rng.hpp"

namespace dpc::core {
namespace {

DpcOptions small_opts(bool with_cache = true) {
  DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.enable_cache = with_cache;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 64, 8};
  o.cache_ctl.evict_low_water = 4;
  o.cache_ctl.evict_batch = 8;
  o.with_dfs = true;
  o.dpu_workers = 2;
  return o;
}

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

TEST(DpcSystem, NamespaceOpsOverNvmeFs) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "file");
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.ino, 0u);
  EXPECT_GT(c.cost.ns, 0);

  const auto l = sys.lookup(kvfs::kRootIno, "file");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.ino, c.ino);

  EXPECT_EQ(sys.lookup(kvfs::kRootIno, "ghost").err, ENOENT);
  EXPECT_EQ(sys.create(kvfs::kRootIno, "file").err, EEXIST);

  kvfs::Attr attr;
  ASSERT_TRUE(sys.getattr(c.ino, &attr).ok());
  EXPECT_EQ(attr.ino, c.ino);
  EXPECT_EQ(attr.type, kvfs::FileType::kRegular);
}

TEST(DpcSystem, MkdirReaddirRenameUnlink) {
  DpcSystem sys(small_opts());
  const auto d = sys.mkdir(kvfs::kRootIno, "dir");
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(sys.create(d.ino, "a").ok());
  ASSERT_TRUE(sys.create(d.ino, "b").ok());
  std::vector<kvfs::DirEntry> entries;
  ASSERT_TRUE(sys.readdir(d.ino, &entries).ok());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a");

  ASSERT_TRUE(sys.rename(d.ino, "a", kvfs::kRootIno, "a-moved").ok());
  EXPECT_TRUE(sys.resolve("/a-moved").ok());
  ASSERT_TRUE(sys.unlink(d.ino, "b").ok());
  ASSERT_TRUE(sys.rmdir(kvfs::kRootIno, "dir").ok());
}

TEST(DpcSystem, DirectWriteReadRoundTrip) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "data");
  const auto data = bytes(64 * 1024, 1);
  const auto w = sys.write(c.ino, 0, data, /*direct=*/true);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes, data.size());
  EXPECT_FALSE(w.cache_hit);

  std::vector<std::byte> out(data.size());
  const auto r = sys.read(c.ino, 0, out, /*direct=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST(DpcSystem, BufferedWriteLandsInHybridCache) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "cached");
  const auto data = bytes(8192, 2);
  const auto w = sys.write(c.ino, 0, data, /*direct=*/false);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w.cache_hit);  // absorbed by host memory
  EXPECT_EQ(sys.cache_stats()->writes_cached.load(), 2u);  // two 4K pages

  // Re-read hits the host cache: zero PCIe data traffic for the payload.
  const auto data_ops_before =
      sys.dma_counters().ops(pcie::DmaClass::kData);
  std::vector<std::byte> out(8192);
  const auto r = sys.read(c.ino, 0, out, /*direct=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(out, data);
  EXPECT_EQ(sys.dma_counters().ops(pcie::DmaClass::kData), data_ops_before);
}

TEST(DpcSystem, FsyncFlushesDirtyPagesToKvfs) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "durable");
  const auto data = bytes(4096, 3);
  ASSERT_TRUE(sys.write(c.ino, 0, data, false).ok());
  ASSERT_TRUE(sys.fsync(c.ino).ok());
  EXPECT_GT(sys.control_stats()->pages_flushed, 0u);
  // Direct read bypasses the cache: KVFS must hold the bytes now.
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(sys.read(c.ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, data);
}

TEST(DpcSystem, ReadMissFillsCacheClean) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "fill");
  const auto data = bytes(4096, 4);
  ASSERT_TRUE(sys.write(c.ino, 0, data, /*direct=*/true).ok());
  std::vector<std::byte> out(4096);
  const auto r1 = sys.read(c.ino, 0, out, false);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.cache_hit);
  const auto r2 = sys.read(c.ino, 0, out, false);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(out, data);
}

TEST(DpcSystem, BufferedSizeGrowthVisibleInGetattr) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "grow");
  ASSERT_TRUE(sys.write(c.ino, 0, bytes(8192, 5), false).ok());
  kvfs::Attr attr;
  ASSERT_TRUE(sys.getattr(c.ino, &attr).ok());
  EXPECT_EQ(attr.size, 8192u);
}

TEST(DpcSystem, TruncateInvalidatesCachedTail) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "trunc");
  ASSERT_TRUE(sys.write(c.ino, 0, bytes(16384, 6), false).ok());
  ASSERT_TRUE(sys.truncate(c.ino, 4096).ok());
  kvfs::Attr attr;
  ASSERT_TRUE(sys.getattr(c.ino, &attr).ok());
  EXPECT_EQ(attr.size, 4096u);
  std::vector<std::byte> out(4096);
  const auto r = sys.read(c.ino, 4096, out, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, 0u);  // past EOF
}

TEST(DpcSystem, UnalignedIoBypassesCache) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "unaligned");
  const auto data = bytes(100, 7);
  const auto w = sys.write(c.ino, 3, data, false);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w.cache_hit);  // write-through
  std::vector<std::byte> out(100);
  const auto r = sys.read(c.ino, 3, out, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST(DpcSystem, CachePressureFallsBackToWriteThrough) {
  auto o = small_opts();
  o.cache_geo = {4096, cache::CacheMode::kWrite, 16, 2};  // tiny cache
  DpcSystem sys(o);
  const auto c = sys.create(kvfs::kRootIno, "pressure");
  // Write far more pages than the cache holds; all writes must succeed.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(sys.write(c.ino, static_cast<std::uint64_t>(i) * 4096,
                          bytes(4096, static_cast<std::uint64_t>(i)), false)
                    .ok())
        << i;
  }
  ASSERT_TRUE(sys.fsync(c.ino).ok());
  // Everything readable back (direct — straight from KVFS).
  for (int i = 0; i < 64; ++i) {
    std::vector<std::byte> out(4096);
    ASSERT_TRUE(sys.read(c.ino, static_cast<std::uint64_t>(i) * 4096, out,
                         true)
                    .ok());
    EXPECT_EQ(out, bytes(4096, static_cast<std::uint64_t>(i))) << i;
  }
}

TEST(DpcSystem, WithDpuWorkersRunning) {
  DpcSystem sys(small_opts());
  sys.start_dpu();
  const auto c = sys.create(kvfs::kRootIno, "workers");
  ASSERT_TRUE(c.ok());
  const auto data = bytes(8192, 8);
  ASSERT_TRUE(sys.write(c.ino, 0, data, true).ok());
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(sys.read(c.ino, 0, out, true).ok());
  EXPECT_EQ(out, data);
  sys.stop_dpu();
}

TEST(DpcSystem, ConcurrentThreadsWithWorkers) {
  auto o = small_opts();
  o.queues = 4;
  o.queue_depth = 16;
  DpcSystem sys(o);
  sys.start_dpu();
  constexpr int kThreads = 8;
  std::atomic<int> errors{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&sys, t, &errors] {
      const auto c =
          sys.create(kvfs::kRootIno, "thread" + std::to_string(t));
      if (!c.ok()) {
        ++errors;
        return;
      }
      const auto data = bytes(8192, static_cast<std::uint64_t>(t));
      std::vector<std::byte> out(8192);
      for (int i = 0; i < 30; ++i) {
        if (!sys.write(c.ino, static_cast<std::uint64_t>(i % 4) * 8192, data,
                       true)
                 .ok())
          ++errors;
        if (!sys.read(c.ino, static_cast<std::uint64_t>(i % 4) * 8192, out,
                      true)
                 .ok())
          ++errors;
        else if (out != data)
          ++errors;
      }
    });
  }
  for (auto& t : ts) t.join();
  sys.stop_dpu();
  EXPECT_EQ(errors.load(), 0);
}

TEST(DpcSystem, DfsPathThroughDispatchBit) {
  DpcSystem sys(small_opts());
  const auto c = sys.dfs_create("/dfs/file", 1 << 20);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(sys.dfs_open("/dfs/file").ino, c.ino);
  const auto data = bytes(8192, 9);
  ASSERT_TRUE(sys.dfs_write(c.ino, 0, data).ok());
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(sys.dfs_read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(sys.dispatch_stats().dfs_ops.load(), 0u);
  // The data really lives EC-striped on the data servers.
  EXPECT_TRUE(sys.data_servers()->has_shard(c.ino, 0, 0));
  EXPECT_TRUE(sys.data_servers()->has_shard(c.ino, 0, 4));  // parity
}

TEST(DpcSystem, ErrorsPropagateThroughCqe) {
  DpcSystem sys(small_opts());
  std::vector<std::byte> out(4096);
  EXPECT_EQ(sys.read(31337, 0, out, true).err, ENOENT);
  EXPECT_EQ(sys.write(31337, 0, bytes(4096, 1), true).err, ENOENT);
  EXPECT_EQ(sys.truncate(31337, 0).err, ENOENT);
  EXPECT_EQ(sys.fsync(31337).err, ENOENT);
}

TEST(DpcSystem, NoCacheModeWorks) {
  DpcSystem sys(small_opts(/*with_cache=*/false));
  EXPECT_EQ(sys.cache_stats(), nullptr);
  const auto c = sys.create(kvfs::kRootIno, "nocache");
  const auto data = bytes(8192, 10);
  const auto w = sys.write(c.ino, 0, data, false);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w.cache_hit);
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(sys.read(c.ino, 0, out, false).ok());
  EXPECT_EQ(out, data);
}

TEST(DpcSystem, DispatchStatsAccumulate) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "stats");
  (void)sys.write(c.ino, 0, bytes(4096, 11), true);
  std::vector<std::byte> out(4096);
  (void)sys.read(c.ino, 0, out, true);
  const auto& st = sys.dispatch_stats();
  EXPECT_GE(st.header_ops.load(), 1u);
  EXPECT_GE(st.inline_writes.load(), 1u);
  EXPECT_GE(st.inline_reads.load(), 1u);
  EXPECT_GT(sys.mean_backend_cost().ns, 0);
}

TEST(DpcSystem, FlushCompressionAccountsWireSavings) {
  auto o = small_opts();
  o.cache_ctl.compress_enabled = true;
  DpcSystem sys(o);
  const auto c = sys.create(kvfs::kRootIno, "compressible");
  // Highly compressible pages (repeated text).
  std::vector<std::byte> page(8192);
  const char* phrase = "offload the file stack to the DPU ";
  for (std::size_t i = 0; i < page.size(); ++i)
    page[i] = static_cast<std::byte>(phrase[i % 34]);
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(sys.write(c.ino, static_cast<std::uint64_t>(i) * 8192, page,
                          false)
                    .ok());
  ASSERT_TRUE(sys.fsync(c.ino).ok());
  const auto* ctl = sys.control_stats();
  EXPECT_GT(ctl->compress_in_bytes, 0u);
  EXPECT_LT(ctl->compress_out_bytes, ctl->compress_in_bytes / 4)
      << "repetitive pages must compress well on the flush path";
  // And the data survives the compress/verify/flush pipeline.
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(sys.read(c.ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, page);
}

TEST(DpcSystem, LargeSegmentedIo) {
  auto o = small_opts();
  o.max_io = 64 * 1024;
  DpcSystem sys(o);
  const auto c = sys.create(kvfs::kRootIno, "huge");
  const auto data = bytes(300 * 1024, 42);  // > 4 segments
  const auto w = sys.write(c.ino, 0, data, true);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes, data.size());
  std::vector<std::byte> out(data.size());
  const auto r = sys.read(c.ino, 0, out, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, data.size());
  EXPECT_EQ(out, data);
  // Short segmented read at EOF.
  std::vector<std::byte> tail(128 * 1024);
  const auto rt = sys.read(c.ino, 200 * 1024, tail, true);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.bytes, 100u * 1024);
}

TEST(DpcSystem, HardLinkOverNvmeFs) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "target");
  ASSERT_TRUE(sys.write(c.ino, 0, bytes(4096, 60), true).ok());
  ASSERT_TRUE(sys.link(c.ino, kvfs::kRootIno, "hard").ok());
  const auto l = sys.lookup(kvfs::kRootIno, "hard");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.ino, c.ino);
  kvfs::Attr attr;
  ASSERT_TRUE(sys.getattr(c.ino, &attr).ok());
  EXPECT_EQ(attr.nlink, 2u);
  EXPECT_EQ(sys.link(c.ino, kvfs::kRootIno, "hard").err, EEXIST);
}

TEST(DpcSystem, SymlinkOverNvmeFs) {
  DpcSystem sys(small_opts());
  const auto d = sys.mkdir(kvfs::kRootIno, "data");
  const auto f = sys.create(d.ino, "real");
  ASSERT_TRUE(sys.write(f.ino, 0, bytes(100, 70), true).ok());
  ASSERT_TRUE(sys.symlink("/data/real", kvfs::kRootIno, "ln").ok());
  std::string target;
  const auto lnk = sys.lookup(kvfs::kRootIno, "ln");
  ASSERT_TRUE(lnk.ok());
  ASSERT_TRUE(sys.readlink(lnk.ino, &target).ok());
  EXPECT_EQ(target, "/data/real");
  // resolve follows the link through the whole offloaded stack.
  const auto r = sys.resolve("/ln");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ino, f.ino);
  EXPECT_EQ(sys.readlink(f.ino, &target).err, EINVAL);
}

TEST(DpcSystem, StatfsThroughKvfs) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "f");
  ASSERT_TRUE(sys.write(c.ino, 0, bytes(10000, 71), true).ok());
  auto st = sys.kvfs().statfs();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value.inodes, 2u);  // root + f
  EXPECT_EQ(st.value.data_bytes, 10000u);
  EXPECT_GT(st.value.kv_count, 3u);
}

TEST(DpcSystem, LatencyHistogramsRecordPerClass) {
  DpcSystem sys(small_opts());
  const auto c = sys.create(kvfs::kRootIno, "hist");
  const auto data = bytes(4096, 50);
  std::vector<std::byte> out(4096);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sys.write(c.ino, 0, data, true).ok());
    ASSERT_TRUE(sys.read(c.ino, 0, out, true).ok());
  }
  EXPECT_GE(sys.latency(DpcSystem::OpClass::kMeta).count(), 1u);
  EXPECT_EQ(sys.latency(DpcSystem::OpClass::kWrite).count(), 10u);
  EXPECT_EQ(sys.latency(DpcSystem::OpClass::kRead).count(), 10u);
  // Direct ops are far slower than buffered hits; sanity the magnitudes.
  EXPECT_GT(sys.latency(DpcSystem::OpClass::kRead).mean().us(), 50.0);
  EXPECT_FALSE(sys.latency_summary().empty());
}

}  // namespace
}  // namespace dpc::core
