#include "sim/mva.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/check.hpp"

namespace dpc::sim {
namespace {

TEST(Mva, SingleStationOneCustomer) {
  // One customer, one queueing station: X = 1/D, R = D.
  ClosedNetwork net;
  net.add_queueing("cpu", 1, micros(10));
  const auto res = net.solve(1);
  EXPECT_NEAR(res.response.us(), 10.0, 1e-9);
  EXPECT_NEAR(res.throughput_ops, 1e6 / 10.0, 1.0);
  EXPECT_NEAR(res.utilization[0], 1.0, 1e-9);
}

TEST(Mva, SingleStationSaturates) {
  // With N customers on a single server: X capped at 1/D, R grows as N·D.
  ClosedNetwork net;
  net.add_queueing("cpu", 1, micros(10));
  const auto res = net.solve(32);
  EXPECT_NEAR(res.throughput_ops, 1e5, 1.0);
  EXPECT_NEAR(res.response.us(), 320.0, 1e-6);
}

TEST(Mva, DelayStationNeverQueues) {
  // Pure delay: X scales linearly with N, R constant.
  ClosedNetwork net;
  net.add_delay("net", micros(50));
  const auto r1 = net.solve(1);
  const auto r8 = net.solve(8);
  EXPECT_NEAR(r1.response.us(), 50.0, 1e-9);
  EXPECT_NEAR(r8.response.us(), 50.0, 1e-9);
  EXPECT_NEAR(r8.throughput_ops / r1.throughput_ops, 8.0, 1e-6);
}

TEST(Mva, MultiServerScalesUntilServersBusy) {
  // 4 servers of demand D: up to 4 customers see ~no queueing.
  ClosedNetwork net;
  net.add_queueing("ssd", 4, micros(88));
  const auto r1 = net.solve(1);
  const auto r4 = net.solve(4);
  const auto r32 = net.solve(32);
  EXPECT_NEAR(r1.response.us(), 88.0, 1.0);
  // At 4 customers the Seidmann model still has modest queueing.
  EXPECT_LT(r4.response.us(), 2.0 * 88.0);
  // Saturated: X = servers/D.
  EXPECT_NEAR(r32.throughput_ops, 4.0 / 88e-6, 0.02 * 4.0 / 88e-6);
}

TEST(Mva, BottleneckDominates) {
  // Two stations; the slower one bounds throughput.
  ClosedNetwork net;
  net.add_queueing("fast", 1, micros(1));
  net.add_queueing("slow", 1, micros(10));
  const auto res = net.solve(64);
  EXPECT_NEAR(res.throughput_ops, 1e5, 1e3);
  EXPECT_GT(res.utilization[1], 0.99);
  EXPECT_NEAR(res.utilization[0], 0.1, 0.01);
}

TEST(Mva, ThinkTimeReducesPressure) {
  ClosedNetwork net;
  net.add_queueing("cpu", 1, micros(10));
  net.set_think_time(micros(990));
  const auto res = net.solve(10);
  // 10 customers with 1ms cycle: X ≈ 10 ops/ms, utilization ≈ 10%.
  EXPECT_NEAR(res.throughput_ops, 1e4, 200.0);
  EXPECT_LT(res.utilization[0], 0.15);
}

TEST(Mva, LittlesLawHolds) {
  ClosedNetwork net;
  net.add_queueing("a", 2, micros(20));
  net.add_queueing("b", 1, micros(5));
  net.add_delay("net", micros(30));
  for (int n : {1, 2, 4, 8, 16, 64}) {
    const auto res = net.solve(n);
    // N = X * (R + Z); Z = 0 here. Response is truncated to whole ns, so
    // allow that rounding.
    const double n_check =
        res.throughput_ops * res.response.us() / 1e6;
    EXPECT_NEAR(n_check, n, n * 1e-3) << "at N=" << n;
  }
}

TEST(Mva, ThroughputMonotoneInCustomers) {
  ClosedNetwork net;
  net.add_queueing("cpu", 4, micros(12));
  net.add_delay("link", micros(6));
  double prev = 0.0;
  for (int n = 1; n <= 128; n *= 2) {
    const auto res = net.solve(n);
    EXPECT_GE(res.throughput_ops, prev - 1e-9) << "at N=" << n;
    prev = res.throughput_ops;
  }
}

TEST(Mva, SweepMatchesIndividualSolves) {
  ClosedNetwork net;
  net.add_queueing("cpu", 2, micros(7));
  const auto sweep = net.solve_sweep({1, 4, 16});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].throughput_ops, net.solve(1).throughput_ops);
  EXPECT_EQ(sweep[2].throughput_ops, net.solve(16).throughput_ops);
}

TEST(Mva, CpuUsageHelpers) {
  // 100K ops/s at 10 µs per op = 1 busy core.
  EXPECT_NEAR(cpu_busy_cores(1e5, micros(10)), 1.0, 1e-9);
  EXPECT_NEAR(cpu_usage_fraction(1e5, micros(10), 4), 0.25, 1e-9);
  // Clamped at 1.
  EXPECT_EQ(cpu_usage_fraction(1e9, micros(10), 1), 1.0);
}

TEST(Mva, RejectsBadInput) {
  ClosedNetwork net;
  net.add_queueing("cpu", 1, micros(1));
  EXPECT_THROW(net.solve(0), CheckFailure);
  EXPECT_THROW(net.add_queueing("bad", 0, micros(1)), CheckFailure);
  EXPECT_THROW(net.add_queueing("bad", 1, Nanos{-5}), CheckFailure);
}

/// Property sweep: utilization law U = X·D/m holds for every station.
class MvaUtilization : public ::testing::TestWithParam<int> {};

TEST_P(MvaUtilization, UtilizationLaw) {
  ClosedNetwork net;
  net.add_queueing("cpu", 3, micros(9));
  net.add_queueing("dev", 8, micros(40));
  net.add_delay("net", micros(16));
  const int n = GetParam();
  const auto res = net.solve(n);
  for (int i = 0; i < net.station_count(); ++i) {
    const auto& st = net.station(i);
    if (st.kind == StationKind::kDelay) continue;
    const double expect = res.throughput_ops *
                          static_cast<double>(st.demand.ns) / 1e9 /
                          st.servers;
    EXPECT_NEAR(res.utilization[static_cast<std::size_t>(i)], expect, 1e-9);
    EXPECT_LE(res.utilization[static_cast<std::size_t>(i)], 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Populations, MvaUtilization,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

}  // namespace
}  // namespace dpc::sim
