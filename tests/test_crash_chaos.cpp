// Crash-point chaos: halt the DPU at every crash site under a mixed
// metadata + data workload, power-cycle it with DpcSystem::restart_dpu(),
// and hold the crash-consistency contract:
//
//   (a) recovery leaves the keyspace fsck-clean (journal replay + repair),
//   (b) no acknowledged write is ever lost or corrupted,
//   (c) the operation in flight at the crash is atomically absent or
//       atomically present — never half-applied.
//
// "In flight" ops get exactly the POSIX crash guarantees and no more: a
// write that was never acknowledged may land partially at block
// granularity (each byte reads as old or new, never garbage), and a file
// whose unlink/replacement was in flight may be gone. The golden model
// below encodes precisely that contract.
//
// The master seed comes from DPC_FAULT_SEED (CI sweeps several); it varies
// the file contents and, in the deep-crash test, how far into the workload
// the DPU dies.
#include "core/dpc_system.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cache/control_plane.hpp"
#include "fault/injector.hpp"
#include "kvfs/fsck.hpp"
#include "kvfs/journal.hpp"
#include "nvm/wal.hpp"
#include "nvme/tgt.hpp"
#include "sim/rng.hpp"

namespace dpc::core {
namespace {

std::uint64_t chaos_seed() {
  return fault::FaultInjector::seed_from_env(42);
}

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

/// Every crash site wired into the stack. The kvfs.* sites sit between the
/// individual KV mutations of one logical operation (the torn states fsck
/// classifies); the cache site dies mid-flush with the page durable but
/// still marked dirty; the tgt site dies with the op fully applied but the
/// completion never posted.
constexpr std::string_view kCrashSites[] = {
    kvfs::kCrashAfterAppend,
    "kvfs.create/crash_after_dentry",
    "kvfs.create/crash_after_attr",
    "kvfs.symlink/crash_after_data",
    "kvfs.remove/crash_after_dentry",
    "kvfs.remove/crash_after_attr",
    "kvfs.rename/crash_after_purge",
    "kvfs.rename/crash_after_insert",
    "kvfs.promote/crash_after_block",
    "kvfs.promote/crash_after_object",
    "kvfs.write/crash_after_blocks",
    cache::kFaultFlushCrashBeforeClean,
    nvme::kFaultTgtCrashBeforeCqe,
};

DpcOptions crash_opts(fault::FaultInjector* fi) {
  DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 64, 8};
  o.cache_ctl.evict_low_water = 4;
  o.cache_ctl.evict_batch = 8;
  o.with_dfs = false;
  o.fault = fi;
  o.nvme_retry.max_attempts = 4;
  return o;
}

/// Shared state of one chaos run: the system under test, the injector, and
/// the golden copy of every byte the application saw acknowledged.
struct State {
  DpcSystem& sys;
  fault::FaultInjector& fi;
  std::map<std::uint64_t, std::vector<std::byte>> golden;
  int restarts = 0;
  /// Set when the armed site is a kvfs.* one: the crash tears a journaled
  /// multi-KV mutation, so the first recovery must find its intent record.
  bool expect_journal_record = false;
  /// The one write currently in flight (not yet acknowledged). Bytes in
  /// its range may read as old or new after a crash — POSIX write
  /// semantics are block-atomic, not call-atomic.
  std::uint64_t pending_ino = 0;
  std::uint64_t pending_off = 0;
  std::vector<std::byte> pending_data;
};

/// Invariant (b): every acknowledged byte reads back exactly — except
/// inside the range of the one unacknowledged in-flight write, where each
/// byte may be old or new (but never anything else).
void verify_golden(State& st, bool direct) {
  for (const auto& [ino, data] : st.golden) {
    std::vector<std::byte> out(data.size());
    const Io r = st.sys.read(ino, 0, out, direct);
    ASSERT_TRUE(r.ok()) << "read failed, ino " << ino << ", err " << r.err
                        << ", restarts " << st.restarts;
    if (ino != st.pending_ino) {
      ASSERT_EQ(out, data) << "acked data lost, ino " << ino
                           << (direct ? " (direct)" : " (buffered)");
      continue;
    }
    const std::uint64_t plo = st.pending_off;
    const std::uint64_t phi = st.pending_off + st.pending_data.size();
    for (std::uint64_t i = 0; i < data.size(); ++i) {
      if (out[i] == data[i]) continue;
      const bool in_flight =
          i >= plo && i < phi && out[i] == st.pending_data[i - plo];
      ASSERT_TRUE(in_flight)
          << "byte " << i << " of ino " << ino
          << " is neither the acked nor the in-flight value";
    }
  }
}

/// Invariant (a): if the op just attempted crashed the DPU, power-cycle it
/// and check recovery left the system clean and lost nothing acked.
void recover_if_crashed(State& st) {
  if (!st.fi.crashed()) return;
  const auto rep = st.sys.restart_dpu();
  ++st.restarts;
  EXPECT_TRUE(rep.clean()) << "fsck not clean after restart " << st.restarts
                           << " (repairs=" << rep.fs.fsck.repairs
                           << ", passes=" << rep.fs.fsck.passes << ")";
  EXPECT_EQ(rep.queues_reset, st.sys.options().queues);
  if (st.expect_journal_record && st.restarts == 1) {
    EXPECT_GE(rep.fs.journal.scanned, 1u)
        << "crash tore a journaled mutation but no intent record survived";
  }
  verify_golden(st, /*direct=*/false);
}

/// Runs one op attempt and handles a crash it may have triggered. Callers
/// loop over this, converging idempotently.
template <typename Fn>
Io attempt(State& st, Fn&& op) {
  const Io r = op();
  recover_if_crashed(st);
  return r;
}

constexpr int kMaxAttempts = 8;

/// Crash-aware lookup for post-op verification: a crash can fire during
/// the verification command itself, so retry through recovery until the
/// answer is definitive (found or ENOENT).
Io stable_lookup(State& st, std::uint64_t parent, const std::string& name) {
  Io l{};
  for (int a = 0; a < kMaxAttempts; ++a) {
    l = attempt(st, [&] { return st.sys.lookup(parent, name); });
    if (l.ok() || l.err == ENOENT) return l;
  }
  return l;
}

/// create: after a crash either the name is absent (create succeeds on
/// retry) or fully present (EEXIST and lookup resolves — a dangling
/// dentry would fail the lookup). Both are atomic outcomes.
std::uint64_t chaos_create(State& st, std::uint64_t parent,
                           const std::string& name) {
  for (int a = 0; a < kMaxAttempts; ++a) {
    const Io c = attempt(st, [&] { return st.sys.create(parent, name); });
    if (c.ok()) return c.ino;
    if (c.err == EEXIST) {
      const Io l = stable_lookup(st, parent, name);
      EXPECT_TRUE(l.ok()) << "dangling dentry survived recovery: " << name;
      if (l.ok()) return l.ino;
    }
  }
  ADD_FAILURE() << "create never converged: " << name;
  return 0;
}

std::uint64_t chaos_mkdir(State& st, std::uint64_t parent,
                          const std::string& name) {
  for (int a = 0; a < kMaxAttempts; ++a) {
    const Io c = attempt(st, [&] { return st.sys.mkdir(parent, name); });
    if (c.ok()) return c.ino;
    if (c.err == EEXIST) {
      const Io l = stable_lookup(st, parent, name);
      EXPECT_TRUE(l.ok()) << "dangling dentry survived recovery: " << name;
      if (l.ok()) return l.ino;
    }
  }
  ADD_FAILURE() << "mkdir never converged: " << name;
  return 0;
}

void chaos_symlink(State& st, const std::string& target, std::uint64_t parent,
                   const std::string& name) {
  for (int a = 0; a < kMaxAttempts; ++a) {
    const Io c =
        attempt(st, [&] { return st.sys.symlink(target, parent, name); });
    if (c.ok() || c.err == EEXIST) {
      // Present: the link must be whole — name, attr, and target text.
      const Io l = stable_lookup(st, parent, name);
      ASSERT_TRUE(l.ok()) << "symlink dentry dangling: " << name;
      std::string got;
      Io rl = attempt(st, [&] { return st.sys.readlink(l.ino, &got); });
      for (int b = 1; b < kMaxAttempts && !rl.ok(); ++b)
        rl = attempt(st, [&] { return st.sys.readlink(l.ino, &got); });
      ASSERT_TRUE(rl.ok()) << "readlink never converged: " << name;
      EXPECT_EQ(got, target) << "symlink target torn: " << name;
      return;
    }
  }
  ADD_FAILURE() << "symlink never converged: " << name;
}

/// write: golden is updated only when the stack acknowledged the write —
/// the definition of invariant (b). While unacknowledged, the write is
/// "pending": verify_golden tolerates old-or-new bytes in its range.
void chaos_write(State& st, std::uint64_t ino, std::uint64_t off,
                 const std::vector<std::byte>& src, bool direct) {
  st.pending_ino = ino;
  st.pending_off = off;
  st.pending_data = src;
  for (int a = 0; a < kMaxAttempts; ++a) {
    const Io w =
        attempt(st, [&] { return st.sys.write(ino, off, src, direct); });
    if (!w.ok()) continue;
    auto& g = st.golden[ino];
    if (g.size() < off + src.size()) g.resize(off + src.size());
    std::copy(src.begin(), src.end(),
              g.begin() + static_cast<std::ptrdiff_t>(off));
    st.pending_ino = 0;
    st.pending_data.clear();
    return;
  }
  st.pending_ino = 0;
  st.pending_data.clear();
  ADD_FAILURE() << "write never converged, ino " << ino;
}

/// unlink: the file's bytes stop being guaranteed the moment the delete is
/// issued (pending delete), and after convergence the name must be gone —
/// absent-after-crash (ENOENT, journal rolled the remove forward) and
/// present-after-crash (retry succeeds) are both atomic outcomes.
void chaos_unlink(State& st, std::uint64_t parent, const std::string& name,
                  std::uint64_t ino) {
  st.golden.erase(ino);
  for (int a = 0; a < kMaxAttempts; ++a) {
    const Io u = attempt(st, [&] { return st.sys.unlink(parent, name); });
    if (u.ok() || u.err == ENOENT) {
      EXPECT_EQ(stable_lookup(st, parent, name).err, ENOENT);
      return;
    }
  }
  ADD_FAILURE() << "unlink never converged: " << name;
}

/// rename: the file must always be reachable under exactly one of the two
/// names. The intent journal is what rules out the third state (purged
/// from the old name, not yet inserted at the new one). A pre-existing
/// destination becomes a pending delete (POSIX replace semantics).
void chaos_rename(State& st, std::uint64_t parent, const std::string& from,
                  const std::string& to, std::uint64_t ino) {
  for (int a = 0; a < kMaxAttempts; ++a) {
    const Io existing = stable_lookup(st, parent, to);
    if (existing.ok() && existing.ino != ino) st.golden.erase(existing.ino);
    const Io r = attempt(
        st, [&] { return st.sys.rename(parent, from, parent, to); });
    const Io at_new = stable_lookup(st, parent, to);
    const Io at_old = stable_lookup(st, parent, from);
    if (at_new.ok() && at_new.ino == ino) {
      EXPECT_EQ(at_old.err, ENOENT)
          << "rename left the file under both names: " << from;
      return;
    }
    ASSERT_TRUE(at_old.ok() && at_old.ino == ino)
        << "rename made the file unreachable: " << from << " -> " << to
        << " (err " << r.err << ")";
  }
  ADD_FAILURE() << "rename never converged: " << from;
}

void chaos_fsync(State& st, std::uint64_t ino) {
  for (int a = 0; a < kMaxAttempts; ++a) {
    const Io f = attempt(st, [&] { return st.sys.fsync(ino); });
    if (f.ok()) return;
  }
  ADD_FAILURE() << "fsync never converged, ino " << ino;
}

/// The mixed workload. Reaches every crash site at least once: journaled
/// namespace ops (create/mkdir/symlink/rename/unlink, plus a rename over
/// an existing destination — the only path that purges a replaced file),
/// a small->big promotion plus in-place big-file extents, buffered pages
/// flushed by fsync, and plenty of nvme-fs commands for the transport
/// site.
void run_crash_workload(State& st, std::uint64_t seed) {
  const auto dir = chaos_mkdir(st, kvfs::kRootIno, "d");
  ASSERT_NE(dir, 0u);

  std::vector<std::uint64_t> files;
  for (int i = 0; i < 4; ++i) {
    const auto ino = chaos_create(st, dir, "f" + std::to_string(i));
    ASSERT_NE(ino, 0u);
    files.push_back(ino);
    // Whole 4K pages buffered (exact cache view) alternating with direct.
    chaos_write(st, ino, 0, bytes(4096, seed ^ static_cast<unsigned>(i)),
                /*direct=*/i % 2 == 0);
  }

  // Small file grown past kSmallFileMax: promotion to the big-file KV
  // (crash sites between block writes, object store, and the flag flip),
  // then an in-place extent update inside the promoted object.
  const auto big = chaos_create(st, dir, "big");
  ASSERT_NE(big, 0u);
  chaos_write(st, big, 0, bytes(4096, seed ^ 100), true);
  chaos_write(st, big, 0, bytes(24 * 1024, seed ^ 101), true);
  chaos_write(st, big, 8192, bytes(4096, seed ^ 102), true);

  chaos_symlink(st, "d/f0", dir, "ln");
  chaos_rename(st, dir, "f1", "f1-renamed", files[1]);
  // Rename over an existing destination: exercises the replaced-file purge
  // (rename/crash_after_purge can only fire here).
  const auto victim = chaos_create(st, dir, "victim");
  ASSERT_NE(victim, 0u);
  chaos_write(st, victim, 0, bytes(4096, seed ^ 200), false);
  chaos_rename(st, dir, "f3", "victim", files[3]);
  chaos_unlink(st, dir, "f2", files[2]);

  // Flush every dirty page (drives the mid-flush crash site).
  for (const auto ino : files)
    if (ino != files[2]) chaos_fsync(st, ino);
  chaos_fsync(st, big);

  // WAL-acked fsyncs leave their pages for the background drain; push them
  // down (crash-tolerantly — the drain has its own crash point) before
  // auditing the backend directly.
  if (st.sys.wal() != nullptr && st.sys.cache_control() != nullptr) {
    for (int a = 0; a < kMaxAttempts && st.sys.wal()->pending_pages() > 0;
         ++a) {
      try {
        st.sys.cache_control()->flush_pass();
      } catch (const fault::CrashException&) {
      }
      recover_if_crashed(st);
    }
    EXPECT_EQ(st.sys.wal()->pending_pages(), 0u)
        << "WAL drain never converged";
  }

  // Invariant (b), both views: the coherent cache view and — after the
  // fsyncs above — the backend itself via DIRECT_IO.
  verify_golden(st, /*direct=*/false);
  verify_golden(st, /*direct=*/true);
}

class CrashChaosEverySite : public ::testing::TestWithParam<std::string_view> {
};

/// The tentpole sweep: one full workload per crash site, DPU halted at the
/// site's first arrival, power-cycled, and the three invariants checked.
TEST_P(CrashChaosEverySite, RecoversConsistentlyPumpMode) {
  const std::string_view site = GetParam();
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed(), &fault_reg);
  DpcSystem sys(crash_opts(&fi));
  State st{sys, fi, {}, 0, false, 0, 0, {}};
  st.expect_journal_record = site.rfind("kvfs.", 0) == 0;

  // Arm only after construction so mkfs runs clean.
  fi.arm_crash(site, /*skip=*/0);
  run_crash_workload(st, chaos_seed() ^ std::hash<std::string_view>{}(site));

  EXPECT_GE(st.restarts, 1) << "site never crashed the DPU: " << site;
  EXPECT_GE(fi.crash_arrivals(site), 1u);
  EXPECT_EQ(fault_reg.counter("fault/crashes").value(),
            static_cast<std::uint64_t>(st.restarts));
  EXPECT_EQ(sys.metrics().counter("nvme.ini/resets").value(),
            static_cast<std::uint64_t>(st.restarts * sys.options().queues));
  EXPECT_GE(sys.metrics().histogram("recovery/restart_ns").count(),
            static_cast<std::uint64_t>(st.restarts));
  // A final verification pass directly against the store agrees: clean.
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, CrashChaosEverySite, ::testing::ValuesIn(kCrashSites),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '.' || c == '/') c = '_';
      return name;
    });

/// Crash depth sweep: the DPU dies progressively deeper into the workload
/// (skip = arrivals survived before the halt), including repeated
/// crash/restart cycles within one system lifetime. Seed shifts the depths.
TEST(CrashChaos, RepeatedCrashesDeeperIntoWorkload) {
  const std::uint64_t seed = chaos_seed();
  obs::Registry fault_reg;
  fault::FaultInjector fi(seed, &fault_reg);
  DpcSystem sys(crash_opts(&fi));
  State st{sys, fi, {}, 0, false, 0, 0, {}};

  // The transport site sees every nvme-fs command, so any skip depth is
  // reachable; re-arm deeper after each recovery.
  int armed = 0;
  for (const std::uint64_t skip : {seed % 7, 20 + seed % 13, 60 + seed % 17}) {
    fi.arm_crash(nvme::kFaultTgtCrashBeforeCqe, skip);
    ++armed;
    run_crash_workload(st, seed ^ static_cast<std::uint64_t>(armed));
    // Each round's workload reuses names; converging wrappers absorb the
    // EEXIST/ENOENT outcomes from earlier rounds.
  }
  EXPECT_GE(st.restarts, 2) << "repeated crash cycles did not all fire";
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

/// Worker-mode smoke: real DPU poller threads, a crash mid-run, wall-clock
/// timeouts detecting the dead controller, and a restart that brings the
/// worker pool back.
TEST(CrashChaos, WorkerModeCrashAndRestart) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0x777, &fault_reg);
  auto opts = crash_opts(&fi);
  opts.dpu_workers = 2;
  opts.nvme_timeout_ms = 20;  // keep dead-DPU detection cheap in the test
  DpcSystem sys(opts);
  sys.start_dpu();
  State st{sys, fi, {}, 0, false, 0, 0, {}};

  fi.arm_crash(nvme::kFaultTgtCrashBeforeCqe, /*skip=*/3);
  run_crash_workload(st, chaos_seed() ^ 0x777);

  EXPECT_GE(st.restarts, 1);
  // The restart resumed worker mode: ops below run without pump fallback.
  const auto post = bytes(4096, 0xabcd);
  const auto ino = chaos_create(st, kvfs::kRootIno, "post-restart");
  ASSERT_NE(ino, 0u);
  chaos_write(st, ino, 0, post, true);
  std::vector<std::byte> out(post.size());
  ASSERT_TRUE(sys.read(ino, 0, out, true).ok());
  EXPECT_EQ(out, post);
  sys.stop_dpu();
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

// ===================================================== NVM-WAL chaos =====
//
// Same contract, durability tier on: every fsync may now ack at NVM
// persistence with its pages still undrained, so the crash set grows by the
// WAL's own sites (torn append, crash after the drain marker, crash mid
// replay). Zero acked-fsync loss and an fsck-clean keyspace must hold
// through all of them.

DpcOptions wal_chaos_opts(fault::FaultInjector* fi) {
  auto o = crash_opts(fi);
  o.enable_nvm_wal = true;
  // No opportunistic drain on poll: fsync'd pages stay WAL-resident until
  // the explicit drain (workload end / fsync fallback / restart), which is
  // what puts the log's own crash sites in play.
  o.cache_ctl.evict_batch = 0;
  return o;
}

constexpr std::string_view kWalCrashSites[] = {
    nvm::kCrashWalMidAppend,
    nvm::kCrashWalAfterDrain,
    kvfs::kCrashAfterAppend,  // intent now WAL-resident when it fires
    "kvfs.rename/crash_after_purge",
    "kvfs.write/crash_after_blocks",
    cache::kFaultFlushCrashBeforeClean,
    nvme::kFaultTgtCrashBeforeCqe,
};

class CrashChaosWalSite : public ::testing::TestWithParam<std::string_view> {};

TEST_P(CrashChaosWalSite, RecoversConsistentlyPumpMode) {
  const std::string_view site = GetParam();
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0xa1, &fault_reg);
  DpcSystem sys(wal_chaos_opts(&fi));
  State st{sys, fi, {}, 0, false, 0, 0, {}};

  fi.arm_crash(site, /*skip=*/0);
  run_crash_workload(st, chaos_seed() ^ std::hash<std::string_view>{}(site));

  EXPECT_GE(st.restarts, 1) << "site never crashed the DPU: " << site;
  EXPECT_GE(fi.crash_arrivals(site), 1u);
  // The durability tier was actually in play, not just configured.
  EXPECT_GE(sys.metrics().counter("wal/appends").value(), 1u);
  EXPECT_GE(sys.metrics().counter("wal/recoveries").value(),
            static_cast<std::uint64_t>(st.restarts));
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

INSTANTIATE_TEST_SUITE_P(
    WalSites, CrashChaosWalSite, ::testing::ValuesIn(kWalCrashSites),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '.' || c == '/') c = '_';
      return name;
    });

/// Crash *during WAL replay*: the first power cycle dies mid-replay (report
/// says interrupted, crash latch set again); the second replays the intact
/// log from scratch and converges — replay is idempotent.
TEST(CrashChaosWal, CrashDuringWalReplayConverges) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0x31337, &fault_reg);
  DpcSystem sys(wal_chaos_opts(&fi));

  const auto ino = sys.create(kvfs::kRootIno, "r").ino;
  ASSERT_NE(ino, 0u);
  const auto d = bytes(8192, chaos_seed() ^ 0x31337);
  ASSERT_TRUE(sys.write(ino, 0, d, false).ok());
  ASSERT_TRUE(sys.fsync(ino).ok());
  ASSERT_GE(sys.wal()->pending_pages(), 1u);

  fi.arm_crash(nvme::kFaultTgtCrashBeforeCqe, /*skip=*/0);
  (void)sys.getattr(ino);
  ASSERT_TRUE(fi.crashed());

  fi.arm_crash(nvm::kCrashWalMidReplay, /*skip=*/0);
  const auto rep1 = sys.restart_dpu();
  EXPECT_TRUE(rep1.interrupted);
  EXPECT_TRUE(fi.crashed());

  const auto rep2 = sys.restart_dpu();
  EXPECT_TRUE(rep2.clean());
  EXPECT_GE(rep2.fs.wal.scanned, 1u);

  std::vector<std::byte> out(d.size());
  ASSERT_TRUE(sys.read(ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, d) << "acked fsync lost across an interrupted replay";
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

/// Crash *during KV intent-journal replay* (WAL off — the intent is
/// KV-resident): same convergence contract for the second spine half.
TEST(CrashChaosWal, CrashDuringJournalReplayConverges) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0x9e1, &fault_reg);
  DpcSystem sys(crash_opts(&fi));

  fi.arm_crash(kvfs::kCrashAfterAppend, /*skip=*/0);
  (void)sys.mkdir(kvfs::kRootIno, "j");
  ASSERT_TRUE(fi.crashed());

  fi.arm_crash(kvfs::kCrashMidReplay, /*skip=*/0);
  const auto rep1 = sys.restart_dpu();
  EXPECT_TRUE(rep1.interrupted);

  const auto rep2 = sys.restart_dpu();
  EXPECT_TRUE(rep2.clean());
  EXPECT_GE(rep2.fs.journal.scanned, 1u);

  // The op converges post-recovery and the keyspace is whole.
  const auto m = sys.mkdir(kvfs::kRootIno, "j");
  EXPECT_TRUE(m.ok() || m.err == EEXIST);
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

/// Worker mode with the durability tier on: real poller threads (the
/// background flusher drains the WAL concurrently), a crash mid-run, and a
/// restart that recovers through the log.
TEST(CrashChaosWal, WorkerModeCrashAndRestart) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(chaos_seed() ^ 0x717, &fault_reg);
  auto opts = wal_chaos_opts(&fi);
  opts.dpu_workers = 2;
  opts.nvme_timeout_ms = 20;
  DpcSystem sys(opts);
  sys.start_dpu();
  State st{sys, fi, {}, 0, false, 0, 0, {}};

  fi.arm_crash(nvme::kFaultTgtCrashBeforeCqe, /*skip=*/3);
  run_crash_workload(st, chaos_seed() ^ 0x717);

  EXPECT_GE(st.restarts, 1);
  EXPECT_GE(sys.metrics().counter("wal/appends").value(), 1u);
  const auto post = bytes(4096, 0xab1e);
  const auto ino = chaos_create(st, kvfs::kRootIno, "post-restart");
  ASSERT_NE(ino, 0u);
  chaos_write(st, ino, 0, post, true);
  std::vector<std::byte> out(post.size());
  ASSERT_TRUE(sys.read(ino, 0, out, true).ok());
  EXPECT_EQ(out, post);
  sys.stop_dpu();
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

}  // namespace
}  // namespace dpc::core
