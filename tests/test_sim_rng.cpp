#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dpc::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundRespected) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(1), 0u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, RoughUniformity) {
  Rng r(42);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[r.next_below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets / 10)
        << "bucket " << b;
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads, 30000, 1000);
  Rng r2(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r2.next_bool(0.0));
    EXPECT_TRUE(r2.next_bool(1.0));
  }
}

TEST(Rng, NoShortCycles) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(r.next_u64());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace dpc::sim
