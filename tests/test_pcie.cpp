#include "pcie/dma.hpp"
#include "pcie/memory.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/calib.hpp"

namespace dpc::pcie {
namespace {

TEST(MemoryRegion, BoundsChecked) {
  MemoryRegion r("test", 1024);
  EXPECT_EQ(r.size(), 1024u);
  EXPECT_NO_THROW(r.bytes(0, 1024));
  EXPECT_THROW(r.bytes(1, 1024), dpc::CheckFailure);
  EXPECT_THROW(r.bytes(1025, 0), dpc::CheckFailure);
}

TEST(MemoryRegion, TypedRoundTrip) {
  MemoryRegion r("test", 4096);
  r.store<std::uint64_t>(16, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(r.load<std::uint64_t>(16), 0xDEADBEEFCAFEBABEULL);
  struct Pod {
    int a;
    double b;
  };
  r.store(64, Pod{7, 2.5});
  const auto p = r.load<Pod>(64);
  EXPECT_EQ(p.a, 7);
  EXPECT_EQ(p.b, 2.5);
}

TEST(MemoryRegion, AtomicViews) {
  MemoryRegion r("test", 4096);
  auto w = r.atomic_u32(128);
  w.store(41);
  EXPECT_EQ(w.fetch_add(1), 41u);
  EXPECT_EQ(r.load<std::uint32_t>(128), 42u);
  EXPECT_THROW(r.atomic_u32(129), dpc::CheckFailure);  // unaligned
  EXPECT_THROW(r.atomic_u64(132), dpc::CheckFailure);
}

TEST(MemoryRegion, FillSetsEveryByte) {
  MemoryRegion r("test", 256);
  r.fill(std::byte{0xAB});
  for (auto b : r.bytes(0, 256)) EXPECT_EQ(b, std::byte{0xAB});
}

TEST(RegionAllocator, AlignsAndExhausts) {
  MemoryRegion r("test", 4096);
  RegionAllocator a(r);
  const auto x = a.alloc(10, 64);
  const auto y = a.alloc(10, 64);
  EXPECT_EQ(x % 64, 0u);
  EXPECT_EQ(y % 64, 0u);
  EXPECT_GE(y, x + 10);
  EXPECT_THROW(a.alloc(1 << 20), dpc::CheckFailure);
}

TEST(DmaEngine, TransfersMoveBytesAndCount) {
  MemoryRegion host("host", 8192), dpu("dpu", 8192);
  DmaEngine dma(host, dpu);
  const char msg[] = "hello, dpu";
  host.write(100, std::as_bytes(std::span{msg}));
  const auto cost = dma.transfer(DmaDir::kHostToDpu, 100, 200, sizeof(msg),
                                 DmaClass::kData);
  EXPECT_GT(cost.ns, 0);
  char back[sizeof(msg)];
  dpu.read(200, std::as_writable_bytes(std::span{back}));
  EXPECT_STREQ(back, msg);
  EXPECT_EQ(dma.counters().ops(DmaClass::kData), 1u);
  EXPECT_EQ(dma.counters().bytes(DmaClass::kData), sizeof(msg));
  EXPECT_EQ(dma.counters().ops(DmaClass::kDescriptor), 0u);
}

TEST(DmaEngine, ReadWriteHostScratch) {
  MemoryRegion host("host", 4096), dpu("dpu", 4096);
  DmaEngine dma(host, dpu);
  std::vector<std::byte> scratch(64, std::byte{0x5A});
  dma.write_host(512, scratch, DmaClass::kDescriptor);
  std::vector<std::byte> back(64);
  dma.read_host(512, back, DmaClass::kDescriptor);
  EXPECT_EQ(back, scratch);
  EXPECT_EQ(dma.counters().ops(DmaClass::kDescriptor), 2u);
}

TEST(DmaEngine, DoorbellVisibleOnDpu) {
  MemoryRegion host("host", 4096), dpu("dpu", 4096);
  DmaEngine dma(host, dpu);
  dma.doorbell(64, 17);
  EXPECT_EQ(dpu.atomic_u32(64).load(), 17u);
  EXPECT_EQ(dma.counters().ops(DmaClass::kDoorbell), 1u);
}

TEST(DmaEngine, AtomicCasSemantics) {
  MemoryRegion host("host", 4096), dpu("dpu", 4096);
  DmaEngine dma(host, dpu);
  host.atomic_u32(256).store(0);
  auto r1 = dma.atomic_cas_host(256, 0, 1);
  EXPECT_TRUE(r1.success);
  auto r2 = dma.atomic_cas_host(256, 0, 2);
  EXPECT_FALSE(r2.success);
  EXPECT_EQ(r2.observed, 1u);
  auto r3 = dma.atomic_swap_host(256, 9);
  EXPECT_EQ(r3.observed, 1u);
  EXPECT_EQ(dma.atomic_fadd_host(256, 3), 9u);
  EXPECT_EQ(host.atomic_u32(256).load(), 12u);
  EXPECT_EQ(dma.counters().ops(DmaClass::kAtomic), 4u);
}

TEST(DmaEngine, CostModelScalesWithBytes) {
  MemoryRegion host("host", 1 << 20), dpu("dpu", 1 << 20);
  DmaEngine dma(host, dpu);
  const auto small = dma.transfer(DmaDir::kHostToDpu, 0, 0, 64,
                                  DmaClass::kData);
  const auto big = dma.transfer(DmaDir::kHostToDpu, 0, 0, 512 * 1024,
                                DmaClass::kData);
  EXPECT_GT(big.ns, small.ns);
  // 512 KB at 15.7 GB/s ≈ 33 µs (+ setup).
  EXPECT_NEAR(big.us(), 512.0 * 1024 / (sim::calib::kPcieGBps * 1e3) +
                            sim::calib::kDmaSetup.us(),
              2.0);
}

TEST(DmaEngine, ConcurrentAtomicsAreExact) {
  MemoryRegion host("host", 4096), dpu("dpu", 4096);
  DmaEngine dma(host, dpu);
  host.atomic_u32(0).store(0);
  constexpr int kThreads = 8, kIters = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) dma.atomic_fadd_host(0, 1);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(host.atomic_u32(0).load(),
            static_cast<std::uint32_t>(kThreads * kIters));
}

TEST(DmaScope, MeasuresDelta) {
  MemoryRegion host("host", 4096), dpu("dpu", 4096);
  DmaEngine dma(host, dpu);
  dma.transfer(DmaDir::kHostToDpu, 0, 0, 64, DmaClass::kData);
  DmaScope scope(dma.counters());
  dma.transfer(DmaDir::kHostToDpu, 0, 0, 64, DmaClass::kData);
  dma.transfer(DmaDir::kDpuToHost, 0, 0, 32, DmaClass::kDescriptor);
  EXPECT_EQ(scope.ops(), 2u);
  EXPECT_EQ(scope.bytes(), 96u);
}

TEST(DmaCounters, ResetClearsAll) {
  MemoryRegion host("host", 4096), dpu("dpu", 4096);
  DmaEngine dma(host, dpu);
  dma.transfer(DmaDir::kHostToDpu, 0, 0, 64, DmaClass::kData);
  dma.counters().reset();
  EXPECT_EQ(dma.counters().total_ops(), 0u);
  EXPECT_EQ(dma.counters().total_bytes(), 0u);
}

}  // namespace
}  // namespace dpc::pcie
