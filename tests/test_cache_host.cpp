#include "cache/host_plane.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/rng.hpp"

namespace dpc::cache {
namespace {

struct HostPlaneFixture : ::testing::Test {
  HostPlaneFixture()
      : host("host", 64 << 20),
        alloc(host),
        layout(CacheGeometry{4096, CacheMode::kWrite, 64, 8}, alloc),
        plane(host, layout) {}

  std::vector<std::byte> page(std::uint8_t fill) {
    return std::vector<std::byte>(4096, static_cast<std::byte>(fill));
  }

  pcie::MemoryRegion host;
  pcie::RegionAllocator alloc;
  CacheLayout layout;
  HostCachePlane plane;
};

TEST_F(HostPlaneFixture, MissThenWriteThenHit) {
  std::vector<std::byte> out(4096);
  EXPECT_FALSE(plane.read(1, 0, out));
  EXPECT_EQ(plane.stats().read_misses.load(), 1u);

  ASSERT_EQ(plane.write(1, 0, page(0xAB)), HostCachePlane::WriteResult::kOk);
  EXPECT_EQ(plane.free_pages(), 63u);

  ASSERT_TRUE(plane.read(1, 0, out));
  EXPECT_EQ(out[0], std::byte{0xAB});
  EXPECT_EQ(plane.stats().read_hits.load(), 1u);
}

TEST_F(HostPlaneFixture, OverwriteSamePageReusesEntry) {
  ASSERT_EQ(plane.write(1, 0, page(1)), HostCachePlane::WriteResult::kOk);
  ASSERT_EQ(plane.write(1, 0, page(2)), HostCachePlane::WriteResult::kOk);
  EXPECT_EQ(plane.free_pages(), 63u);  // still one entry used
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(plane.read(1, 0, out));
  EXPECT_EQ(out[0], std::byte{2});
}

TEST_F(HostPlaneFixture, DistinctKeysDistinctPages) {
  ASSERT_EQ(plane.write(1, 0, page(1)), HostCachePlane::WriteResult::kOk);
  ASSERT_EQ(plane.write(1, 1, page(2)), HostCachePlane::WriteResult::kOk);
  ASSERT_EQ(plane.write(2, 0, page(3)), HostCachePlane::WriteResult::kOk);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(plane.read(1, 0, out));
  EXPECT_EQ(out[0], std::byte{1});
  ASSERT_TRUE(plane.read(2, 0, out));
  EXPECT_EQ(out[0], std::byte{3});
}

TEST_F(HostPlaneFixture, WriteMarksDirtyStatus) {
  ASSERT_EQ(plane.write(9, 7, page(5)), HostCachePlane::WriteResult::kOk);
  const auto bucket = layout.bucket_of(9, 7);
  bool found = false;
  for (std::uint32_t i = layout.bucket_head_entry(bucket);
       i < layout.bucket_head_entry(bucket) + layout.entries_per_bucket();
       ++i) {
    const auto e = host.load<CacheEntry>(layout.entry_off(i));
    if (e.inode == 9 && e.lpn == 7 &&
        static_cast<PageStatus>(e.status) == PageStatus::kDirty) {
      found = true;
      EXPECT_EQ(e.lock, 0u);  // released after the write
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(HostPlaneFixture, BucketFullRaisesNeedEvict) {
  // Fill one bucket completely (8 entries per bucket): pick lpns that hash
  // to the same bucket.
  const auto target = layout.bucket_of(1, 0);
  std::vector<std::uint64_t> same_bucket;
  for (std::uint64_t lpn = 0; same_bucket.size() < 9; ++lpn) {
    if (layout.bucket_of(1, lpn) == target) same_bucket.push_back(lpn);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(plane.write(1, same_bucket[i], page(1)),
              HostCachePlane::WriteResult::kOk)
        << i;
  }
  EXPECT_EQ(plane.write(1, same_bucket[8], page(1)),
            HostCachePlane::WriteResult::kNoFreeEntry);
  EXPECT_EQ(plane.stats().write_stalls.load(), 1u);
  EXPECT_EQ(host.atomic_u32(layout.header_field(HeaderOffsets::kNeedEvict))
                .load(),
            1u);
}

TEST_F(HostPlaneFixture, FillCleanDoesNotClobberDirty) {
  ASSERT_EQ(plane.write(3, 3, page(7)), HostCachePlane::WriteResult::kOk);
  plane.fill_clean(3, 3, page(8));  // must keep the dirty copy
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(plane.read(3, 3, out));
  EXPECT_EQ(out[0], std::byte{7});
}

TEST_F(HostPlaneFixture, FillCleanInsertsCleanCopy) {
  plane.fill_clean(4, 4, page(9));
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(plane.read(4, 4, out));
  EXPECT_EQ(out[0], std::byte{9});
  EXPECT_EQ(plane.free_pages(), 63u);
}

TEST_F(HostPlaneFixture, InvalidateFreesEntry) {
  ASSERT_EQ(plane.write(5, 5, page(1)), HostCachePlane::WriteResult::kOk);
  EXPECT_TRUE(plane.invalidate(5, 5));
  EXPECT_FALSE(plane.invalidate(5, 5));
  EXPECT_EQ(plane.free_pages(), 64u);
  std::vector<std::byte> out(4096);
  EXPECT_FALSE(plane.read(5, 5, out));
}

TEST_F(HostPlaneFixture, InvalidateAboveDropsTail) {
  for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
    ASSERT_EQ(plane.write(6, lpn, page(1)), HostCachePlane::WriteResult::kOk);
  const auto freed = plane.invalidate_above(6, 3);
  EXPECT_EQ(freed, 5u);
  std::vector<std::byte> out(4096);
  EXPECT_TRUE(plane.read(6, 2, out));
  EXPECT_FALSE(plane.read(6, 3, out));
}

TEST_F(HostPlaneFixture, PartialPageWriteZeroPads) {
  std::vector<std::byte> half(2048, std::byte{0xCC});
  ASSERT_EQ(plane.write(7, 0, half), HostCachePlane::WriteResult::kOk);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(plane.read(7, 0, out));
  EXPECT_EQ(out[2047], std::byte{0xCC});
  EXPECT_EQ(out[2048], std::byte{0});
}

TEST_F(HostPlaneFixture, ConcurrentWritersAndReaders) {
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([this, t, &mismatches] {
      sim::Rng rng(static_cast<std::uint64_t>(t));
      std::vector<std::byte> out(4096);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t ino = 1 + rng.next_below(4);
        const std::uint64_t lpn = rng.next_below(8);
        if (rng.next_bool(0.5)) {
          // Value encodes identity so torn pages are detectable.
          const auto fill = static_cast<std::uint8_t>(ino * 16 + lpn);
          (void)plane.write(ino, lpn,
                            std::vector<std::byte>(4096,
                                                   static_cast<std::byte>(fill)));
        } else if (plane.read(ino, lpn, out)) {
          const auto expect = static_cast<std::byte>(ino * 16 + lpn);
          for (std::size_t k = 0; k < out.size(); ++k) {
            if (out[k] != expect) {
              ++mismatches;
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  // Page-level locking must make every observed page internally consistent.
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace dpc::cache
