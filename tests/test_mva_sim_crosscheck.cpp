// Cross-validation of the MVA solver against an independent discrete-event
// simulation of the same closed network. MVA is exact for product-form
// networks (exponential service, FCFS); the simulator samples exponential
// service times with our deterministic RNG and must agree on throughput
// and response time within sampling error. This is the strongest guard we
// have that the timing backbone of every figure bench is solving the model
// it claims to solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "sim/mva.hpp"
#include "sim/rng.hpp"

namespace dpc::sim {
namespace {

struct SimStation {
  StationKind kind;
  int servers;
  double mean_service_us;
};

/// Event-driven simulation of N customers cycling through the stations in
/// order. Returns ops/second over the measured window.
double simulate(const std::vector<SimStation>& stations, int customers,
                int warm_ops, int measure_ops, std::uint64_t seed) {
  Rng rng(seed);
  auto draw = [&](double mean) {
    // Exponential via inverse CDF.
    double u = rng.next_double();
    if (u <= 1e-12) u = 1e-12;
    return -mean * std::log(u);
  };

  struct Event {
    double time;
    int customer;
    bool operator>(const Event& o) const { return time > o.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  const int m = static_cast<int>(stations.size());
  std::vector<int> stage(static_cast<std::size_t>(customers), m - 1);
  // Per queueing station: number of busy servers + FIFO of waiting
  // customers.
  std::vector<int> busy(stations.size(), 0);
  std::vector<std::queue<int>> waiting(stations.size());

  double now = 0;
  long completed = 0;
  const long target_start = warm_ops;
  double window_start = 0;
  long in_window = 0;

  auto enter = [&](int c, int s, double t) {
    const auto& st = stations[static_cast<std::size_t>(s)];
    if (st.kind == StationKind::kDelay ||
        busy[static_cast<std::size_t>(s)] < st.servers) {
      if (st.kind != StationKind::kDelay) ++busy[static_cast<std::size_t>(s)];
      events.push({t + draw(st.mean_service_us), c});
    } else {
      waiting[static_cast<std::size_t>(s)].push(c);
    }
  };

  // All customers start by "completing" stage m-1 at t=0 → begin stage 0.
  for (int c = 0; c < customers; ++c) events.push({0.0, c});

  const long total_ops = target_start + measure_ops;
  while (completed < total_ops) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    const int c = ev.customer;
    const int s = stage[static_cast<std::size_t>(c)];
    // Release the server and admit the next waiter at this station.
    if (s >= 0) {
      const auto& st = stations[static_cast<std::size_t>(s)];
      if (st.kind != StationKind::kDelay && now > 0) {
        --busy[static_cast<std::size_t>(s)];
        if (!waiting[static_cast<std::size_t>(s)].empty()) {
          const int w = waiting[static_cast<std::size_t>(s)].front();
          waiting[static_cast<std::size_t>(s)].pop();
          ++busy[static_cast<std::size_t>(s)];
          events.push({now + draw(st.mean_service_us), w});
        }
      }
    }
    // Advance to the next stage; wrapping completes one op.
    int next = s + 1;
    if (next == m) {
      ++completed;
      if (completed == target_start) window_start = now;
      if (completed > target_start) ++in_window;
      next = 0;
    }
    stage[static_cast<std::size_t>(c)] = next;
    enter(c, next, now);
  }
  const double window = now - window_start;
  return static_cast<double>(in_window) / (window / 1e6);  // ops per second
}

struct Net {
  std::vector<SimStation> stations;
  ClosedNetwork mva() const {
    ClosedNetwork net;
    for (const auto& s : stations) {
      if (s.kind == StationKind::kDelay)
        net.add_delay("d", micros(s.mean_service_us));
      else
        net.add_queueing("q", s.servers, micros(s.mean_service_us));
    }
    return net;
  }
};

class CrossCheck
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (net, N)

Net make_net(int which) {
  switch (which) {
    case 0:  // single bottleneck
      return {{{StationKind::kQueueing, 1, 10.0}}};
    case 1:  // cpu + device + network
      return {{{StationKind::kQueueing, 4, 12.0},
               {StationKind::kQueueing, 1, 5.0},
               {StationKind::kDelay, 1, 40.0}}};
    default:  // the fig6-shaped network
      return {{{StationKind::kQueueing, 26, 4.0},
               {StationKind::kQueueing, 8, 4.6},
               {StationKind::kQueueing, 1, 0.6},
               {StationKind::kQueueing, 24, 11.8}}};
  }
}

TEST_P(CrossCheck, ThroughputAgreesWithSimulation) {
  const auto [which, customers] = GetParam();
  const Net net = make_net(which);
  const auto mva_x = net.mva().solve(customers).throughput_ops;

  // Average three independent simulation seeds.
  double sim_x = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull})
    sim_x += simulate(net.stations, customers, 2000, 20000, seed);
  sim_x /= 3;

  EXPECT_NEAR(mva_x / sim_x, 1.0, 0.08)
      << "MVA " << mva_x << " ops/s vs simulated " << sim_x;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossCheck,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 4, 16, 64)));

TEST(CrossCheckEdge, SaturatedSingleServerExact) {
  // Deep saturation: both must converge to 1/D regardless of distribution.
  const Net net = make_net(0);
  const double sim_x = simulate(net.stations, 64, 2000, 20000, 9);
  EXPECT_NEAR(sim_x, 1e5, 4e3);
  EXPECT_NEAR(net.mva().solve(64).throughput_ops, 1e5, 1.0);
}

}  // namespace
}  // namespace dpc::sim
