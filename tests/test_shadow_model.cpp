// Shadow-model property tests: run long random operation sequences against
// the real stacks and an in-memory reference model simultaneously; every
// divergence (content, size, existence, error code class) is a bug. This is
// the broadest functional net in the suite — it has no idea how the
// implementation works, only what a file system must do.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/dpc_system.hpp"
#include "hostfs/ext4like.hpp"
#include "kvfs/fsck.hpp"
#include "sim/rng.hpp"

namespace dpc {
namespace {

/// The reference: a flat map of file name → contents (single directory).
class ShadowFs {
 public:
  bool create(const std::string& name) {
    return files_.try_emplace(name).second;
  }
  bool unlink(const std::string& name) { return files_.erase(name) > 0; }
  bool exists(const std::string& name) const {
    return files_.contains(name);
  }
  void write(const std::string& name, std::uint64_t off,
             std::span<const std::byte> src) {
    auto& f = files_.at(name);
    if (f.size() < off + src.size()) f.resize(off + src.size());
    std::copy(src.begin(), src.end(),
              f.begin() + static_cast<std::ptrdiff_t>(off));
  }
  std::vector<std::byte> read(const std::string& name, std::uint64_t off,
                              std::size_t n) const {
    const auto& f = files_.at(name);
    std::vector<std::byte> out;
    if (off < f.size()) {
      const auto take = std::min<std::size_t>(n, f.size() - off);
      out.assign(f.begin() + static_cast<std::ptrdiff_t>(off),
                 f.begin() + static_cast<std::ptrdiff_t>(off + take));
    }
    return out;
  }
  void truncate(const std::string& name, std::uint64_t size) {
    files_.at(name).resize(size);
  }
  std::uint64_t size(const std::string& name) const {
    return files_.at(name).size();
  }
  const std::map<std::string, std::vector<std::byte>>& files() const {
    return files_;
  }

 private:
  std::map<std::string, std::vector<std::byte>> files_;
};

struct OpMix {
  int create = 20, unlink = 10, write = 35, read = 25, truncate = 10;
};

template <typename CreateFn, typename UnlinkFn, typename WriteFn,
          typename ReadFn, typename TruncFn, typename SizeFn>
void run_shadow(std::uint64_t seed, int ops, const OpMix& mix,
                CreateFn do_create, UnlinkFn do_unlink, WriteFn do_write,
                ReadFn do_read, TruncFn do_trunc, SizeFn do_size) {
  sim::Rng rng(seed);
  ShadowFs shadow;
  const int total = mix.create + mix.unlink + mix.write + mix.read +
                    mix.truncate;

  auto pick_name = [&] {
    return "f" + std::to_string(rng.next_below(12));
  };
  auto rand_bytes = [&](std::size_t n) {
    std::vector<std::byte> v(n);
    for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
    return v;
  };

  for (int i = 0; i < ops; ++i) {
    const auto dice = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(total)));
    const auto name = pick_name();
    const bool existed = shadow.exists(name);
    if (dice < mix.create) {
      const bool ok = do_create(name);
      ASSERT_EQ(ok, !existed) << "create(" << name << ") op " << i;
      if (!existed) shadow.create(name);
    } else if (dice < mix.create + mix.unlink) {
      const bool ok = do_unlink(name);
      ASSERT_EQ(ok, existed) << "unlink(" << name << ") op " << i;
      if (existed) shadow.unlink(name);
    } else if (dice < mix.create + mix.unlink + mix.write) {
      if (!existed) continue;
      const auto off = rng.next_below(96 * 1024);
      const auto len = rng.next_below(24 * 1024) + 1;
      const auto data = rand_bytes(len);
      ASSERT_TRUE(do_write(name, off, data)) << "write op " << i;
      shadow.write(name, off, data);
    } else if (dice < mix.create + mix.unlink + mix.write + mix.read) {
      if (!existed) continue;
      const auto off = rng.next_below(128 * 1024);
      const auto len = rng.next_below(16 * 1024) + 1;
      std::vector<std::byte> got;
      ASSERT_TRUE(do_read(name, off, len, got)) << "read op " << i;
      const auto expect = shadow.read(name, off, len);
      ASSERT_EQ(got, expect)
          << "content divergence at " << name << "+" << off << " op " << i;
    } else {
      if (!existed) continue;
      const auto size = rng.next_below(64 * 1024);
      ASSERT_TRUE(do_trunc(name, size)) << "truncate op " << i;
      shadow.truncate(name, size);
    }
  }
  // Final audit: sizes of every surviving file.
  for (const auto& [name, content] : shadow.files()) {
    ASSERT_EQ(do_size(name), content.size()) << "final size of " << name;
  }
}

class DpcShadow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpcShadow, RandomOpsMatchReference) {
  core::DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.with_dfs = false;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 128, 16};
  core::DpcSystem sys(o);
  const bool buffered = GetParam() % 2 == 0;

  auto ino_of = [&](const std::string& name) {
    return sys.lookup(kvfs::kRootIno, name);
  };
  run_shadow(
      GetParam(), 400, OpMix{},
      [&](const std::string& n) {
        return sys.create(kvfs::kRootIno, n).ok();
      },
      [&](const std::string& n) {
        return sys.unlink(kvfs::kRootIno, n).ok();
      },
      [&](const std::string& n, std::uint64_t off,
          std::span<const std::byte> d) {
        const auto f = ino_of(n);
        return f.ok() && sys.write(f.ino, off, d, !buffered).ok();
      },
      [&](const std::string& n, std::uint64_t off, std::size_t len,
          std::vector<std::byte>& out) {
        const auto f = ino_of(n);
        if (!f.ok()) return false;
        out.resize(len);
        const auto r = sys.read(f.ino, off, out, !buffered);
        if (!r.ok()) return false;
        out.resize(r.bytes);
        return true;
      },
      [&](const std::string& n, std::uint64_t size) {
        const auto f = ino_of(n);
        return f.ok() && sys.truncate(f.ino, size).ok();
      },
      [&](const std::string& n) -> std::uint64_t {
        kvfs::Attr attr;
        const auto f = ino_of(n);
        if (!f.ok() || !sys.getattr(f.ino, &attr).ok()) return ~0ull;
        return attr.size;
      });

  // After the storm: flush and fsck the keyspace.
  std::vector<kvfs::DirEntry> entries;
  ASSERT_TRUE(sys.readdir(kvfs::kRootIno, &entries).ok());
  for (const auto& e : entries) sys.fsync(e.ino);
  const auto report = kvfs::fsck(sys.kv_store());
  EXPECT_TRUE(report.clean())
      << (report.issues.empty()
              ? ""
              : std::string(kvfs::to_string(report.issues[0].kind)) + ": " +
                    report.issues[0].detail);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpcShadow,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class Ext4Shadow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ext4Shadow, RandomOpsMatchReference) {
  ssd::SsdModel disk;
  hostfs::Ext4likeOptions o;
  o.total_blocks = 1 << 16;
  hostfs::Ext4like fs(disk, o);
  const bool buffered = GetParam() % 2 == 1;

  auto ino_of = [&](const std::string& name) {
    return fs.lookup(hostfs::kRootIno, name);
  };
  run_shadow(
      GetParam(), 300, OpMix{},
      [&](const std::string& n) {
        return fs.create(hostfs::kRootIno, n, 0644).ok();
      },
      [&](const std::string& n) {
        return fs.unlink(hostfs::kRootIno, n).ok();
      },
      [&](const std::string& n, std::uint64_t off,
          std::span<const std::byte> d) {
        const auto f = ino_of(n);
        return f.ok() && fs.write(f.value, off, d, !buffered).ok();
      },
      [&](const std::string& n, std::uint64_t off, std::size_t len,
          std::vector<std::byte>& out) {
        const auto f = ino_of(n);
        if (!f.ok()) return false;
        out.resize(len);
        const auto r = fs.read(f.value, off, out, !buffered);
        if (!r.ok()) return false;
        out.resize(r.value);
        return true;
      },
      [&](const std::string& n, std::uint64_t size) {
        const auto f = ino_of(n);
        return f.ok() && fs.truncate(f.value, size).ok();
      },
      [&](const std::string& n) -> std::uint64_t {
        const auto f = ino_of(n);
        if (!f.ok()) return ~0ull;
        return fs.getattr(f.value).value.size;
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ext4Shadow,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dpc
