// Background scrubber: detect → repair → re-verify on corrupted media.
//
// The contract under test (see dpu/scrubber.hpp): every distinct corrupt
// item is counted exactly once, detected == repaired + unrecoverable at
// every instant, EC/replicated shards are rewritten clean from redundancy,
// and media without redundancy is quarantined for the read path to EIO.
#include "dpu/scrubber.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/dpc_system.hpp"
#include "dfs/backend.hpp"
#include "dfs/client.hpp"
#include "kv/kv_store.hpp"
#include "obs/metrics.hpp"
#include "sim/calib.hpp"
#include "sim/rng.hpp"
#include "ssd/ssd.hpp"

namespace dpc::dpu {
namespace {

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

ScrubberConfig fast_cfg() {
  ScrubberConfig cfg;
  cfg.items_per_pass = 1024;
  cfg.pace = sim::nanos(0);
  return cfg;
}

// ------------------------------------------------------------- EC repair

TEST(Scrub, RepairsCorruptDataShardFromParity) {
  obs::Registry reg;
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, nullptr, &reg);
  dfs::DfsClient client(1, mds, ds, dfs::ClientConfig::optimized(), &reg);

  const auto c = client.create("/scrub-ec", 64 * 1024);
  ASSERT_TRUE(c.ok());
  const auto data = bytes(64 * 1024, 0x5c1);
  ASSERT_TRUE(client.write(c.ino, 0, data).ok());

  // Rot one *data* shard at rest.
  const auto all = ds.stored_shards();
  const dfs::ShardId* victim = nullptr;
  for (const auto& id : all)
    if (id.ino == c.ino && id.role == 1) {
      victim = &id;
      break;
    }
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(ds.corrupt_shard(victim->ino, victim->stripe, victim->role));
  ASSERT_EQ(ds.verify_shard(victim->ino, victim->stripe, victim->role),
            dfs::ShardState::kCorrupt);

  Scrubber scrub(fast_cfg(), reg);
  scrub.attach_dfs(&ds, &mds);
  EXPECT_GT(scrub.scrub_all(), 0);

  const auto t = scrub.totals();
  EXPECT_EQ(t.detected, 1u);
  EXPECT_EQ(t.repaired, 1u);
  EXPECT_EQ(t.unrecoverable, 0u);
  EXPECT_EQ(t.detected, t.repaired + t.unrecoverable);

  // Repaired in place: the shard re-verifies and the file reads back exact
  // without needing the degraded path.
  EXPECT_EQ(ds.verify_shard(victim->ino, victim->stripe, victim->role),
            dfs::ShardState::kOk);
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(client.read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(reg.counter("dfs.ds/shard_repairs").value(), 0u);

  // A rescan of now-clean media counts nothing new.
  scrub.scrub_all();
  const auto t2 = scrub.totals();
  EXPECT_EQ(t2.detected, 1u);
  EXPECT_EQ(t2.repaired, 1u);
}

TEST(Scrub, RepairsCorruptParityShard) {
  obs::Registry reg;
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, nullptr, &reg);
  dfs::DfsClient client(1, mds, ds, dfs::ClientConfig::optimized(), &reg);

  const auto c = client.create("/scrub-parity", 64 * 1024);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(client.write(c.ino, 0, bytes(64 * 1024, 0x9a7)).ok());
  const auto meta = mds.find_meta(c.ino);
  ASSERT_TRUE(meta.has_value());

  // Rot a parity shard — the degraded *read* path never touches parity
  // unless a data shard fails, so only the scrubber finds this.
  const std::uint32_t parity_role = meta->k;  // first parity shard
  ASSERT_TRUE(ds.corrupt_shard(c.ino, 0, parity_role));

  Scrubber scrub(fast_cfg(), reg);
  scrub.attach_dfs(&ds, &mds);
  scrub.scrub_all();

  const auto t = scrub.totals();
  EXPECT_EQ(t.detected, 1u);
  EXPECT_EQ(t.repaired, 1u);
  EXPECT_EQ(ds.verify_shard(c.ino, 0, parity_role), dfs::ShardState::kOk);
}

TEST(Scrub, TooFewSurvivorsIsUnrecoverable) {
  obs::Registry reg;
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, nullptr, &reg);
  dfs::DfsClient client(1, mds, ds, dfs::ClientConfig::optimized(), &reg);

  const auto c = client.create("/scrub-dead", 32 * 1024);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(client.write(c.ino, 0, bytes(32 * 1024, 0xdead)).ok());
  const auto meta = mds.find_meta(c.ino);
  ASSERT_TRUE(meta.has_value());

  // Rot m+1 shards of stripe 0: any gather sees at most k-1 clean shards,
  // so every rotted shard is genuinely unrecoverable at rest.
  const std::uint32_t rotted = static_cast<std::uint32_t>(meta->m) + 1;
  for (std::uint32_t r = 0; r < rotted; ++r)
    ASSERT_TRUE(ds.corrupt_shard(c.ino, 0, r));

  Scrubber scrub(fast_cfg(), reg);
  scrub.attach_dfs(&ds, &mds);
  scrub.scrub_all();

  const auto t = scrub.totals();
  EXPECT_EQ(t.detected, rotted);
  EXPECT_EQ(t.repaired, 0u);
  EXPECT_EQ(t.unrecoverable, rotted);
  // Quarantined: rescans don't recount the same dead shards.
  scrub.scrub_all();
  EXPECT_EQ(scrub.totals().unrecoverable, rotted);
}

TEST(Scrub, DefersWhileStripeUnreadableThenRepairsAfterHeal) {
  obs::Registry reg;
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, nullptr, &reg);
  dfs::DfsClient client(1, mds, ds, dfs::ClientConfig::optimized(), &reg);

  const auto c = client.create("/scrub-defer", 32 * 1024);
  ASSERT_TRUE(c.ok());
  const auto data = bytes(32 * 1024, 0xde5e);
  ASSERT_TRUE(client.write(c.ino, 0, data).ok());

  const auto all = ds.stored_shards();
  const dfs::ShardId* victim = nullptr;
  for (const auto& id : all)
    if (id.ino == c.ino && id.role == 0) victim = &id;
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(ds.corrupt_shard(victim->ino, victim->stripe, victim->role));

  // Blackout every server except the victim's: the gather can't reach k
  // survivors, and the failures are transient — the scrubber must defer,
  // counting *nothing* (the invariant holds at every instant).
  const int home = ds.server_of(victim->ino, victim->stripe, victim->role);
  for (int s = 0; s < ds.servers(); ++s)
    if (s != home) ds.fail_server(s);
  {
    Scrubber scrub(fast_cfg(), reg);
    scrub.attach_dfs(&ds, &mds);
    scrub.scrub_pass(1u << 20);
    const auto t = scrub.totals();
    EXPECT_EQ(t.detected, 0u);
    EXPECT_EQ(t.repaired, 0u);
    EXPECT_EQ(t.unrecoverable, 0u);

    // Servers heal: the deferred shard is found again and repaired.
    for (int s = 0; s < ds.servers(); ++s) ds.heal_server(s);
    scrub.scrub_all();
    const auto t2 = scrub.totals();
    EXPECT_EQ(t2.detected, 1u);
    EXPECT_EQ(t2.repaired, 1u);
    EXPECT_EQ(t2.unrecoverable, 0u);
  }

  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(client.read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);
}

// ------------------------------------------- unrecoverable media (KV/SSD)

TEST(Scrub, CorruptKvValueIsDetectedOnceAndLeftForEio) {
  obs::Registry reg;
  kv::KvStore store(4);
  const auto v = bytes(512, 7);
  store.put("extent/B1", v);
  store.put("extent/B2", v);
  ASSERT_TRUE(store.corrupt_value("extent/B1", 100));

  Scrubber scrub(fast_cfg(), reg);
  scrub.attach_kv(&store);
  scrub.scrub_all();

  auto t = scrub.totals();
  EXPECT_EQ(t.scanned, 2u);
  EXPECT_EQ(t.detected, 1u);
  EXPECT_EQ(t.repaired, 0u);
  EXPECT_EQ(t.unrecoverable, 1u);

  // The damage stays typed, never silent: checked reads say kCorrupt.
  kv::ValueCheck check{};
  EXPECT_FALSE(store.get_checked("extent/B1", &check).has_value());
  EXPECT_EQ(check, kv::ValueCheck::kCorrupt);

  // Rescan: quarantined, not recounted.
  scrub.scrub_all();
  EXPECT_EQ(scrub.totals().detected, 1u);

  // The workload rewrites the value: quarantine clears, and a *new* rot of
  // the same key is a new detection.
  store.put("extent/B1", v);
  scrub.scrub_all();
  EXPECT_EQ(scrub.totals().detected, 1u);
  ASSERT_TRUE(store.corrupt_value("extent/B1", 3));
  scrub.scrub_all();
  EXPECT_EQ(scrub.totals().detected, 2u);
  EXPECT_EQ(scrub.totals().unrecoverable, 2u);
}

TEST(Scrub, CorruptSsdBlockIsDetectedOnce) {
  obs::Registry reg;
  ssd::SsdModel ssd;
  ssd.write_block(3, bytes(ssd::kBlockSize, 1));
  ssd.write_block(9, bytes(ssd::kBlockSize, 2));
  ASSERT_TRUE(ssd.corrupt_block(9, 17));

  Scrubber scrub(fast_cfg(), reg);
  scrub.attach_ssd(&ssd);
  scrub.scrub_all();

  const auto t = scrub.totals();
  EXPECT_EQ(t.scanned, 2u);
  EXPECT_EQ(t.detected, 1u);
  EXPECT_EQ(t.unrecoverable, 1u);
  std::vector<std::byte> out(ssd::kBlockSize);
  EXPECT_EQ(ssd.read_block_checked(9, out), ssd::BlockRead::kCorrupt);

  scrub.scrub_all();
  EXPECT_EQ(scrub.totals().detected, 1u);
}

// --------------------------------------------------------- pacing / gates

TEST(Scrub, PollIsInertWhileCrashedAndPaced) {
  obs::Registry reg;
  obs::Registry fault_reg;
  fault::FaultInjector fi(1, &fault_reg);
  kv::KvStore store(4);
  store.put("k", bytes(64, 1));

  ScrubberConfig cfg;
  cfg.items_per_pass = 8;
  cfg.pace = sim::millis(60'000.0);  // effectively "once"
  Scrubber scrub(cfg, reg, &fi);
  scrub.attach_kv(&store);

  fi.arm_crash("x");
  EXPECT_TRUE(fi.at_crash_point("x"));  // latch the crash
  ASSERT_TRUE(fi.crashed());
  EXPECT_EQ(scrub.poll(), 0);  // crashed ⇒ inert

  fi.clear_crash();
  EXPECT_EQ(scrub.poll(), 1);  // first pass runs immediately
  EXPECT_EQ(scrub.poll(), 0);  // paced out for the next minute
  EXPECT_EQ(scrub.totals().scanned, 1u);
}

// ----------------------------------------------------- full-system wiring

TEST(Scrub, DpcSystemScrubberRepairsDfsShard) {
  using core::DpcOptions;
  using core::DpcSystem;
  DpcOptions o;
  o.queues = 1;
  o.with_dfs = true;
  o.enable_scrubber = true;
  o.scrub.items_per_pass = 4096;
  DpcSystem sys(o);
  ASSERT_NE(sys.scrubber(), nullptr);

  const auto c = sys.dfs_create("/scrubbed", 64 * 1024);
  ASSERT_TRUE(c.ok());
  const auto data = bytes(64 * 1024, 0x515);
  ASSERT_TRUE(sys.dfs_write(c.ino, 0, data).ok());

  auto* ds = sys.data_servers();
  const auto all = ds->stored_shards();
  ASSERT_FALSE(all.empty());
  const auto& victim = all.front();
  ASSERT_TRUE(ds->corrupt_shard(victim.ino, victim.stripe, victim.role));

  sys.scrubber()->scrub_all();
  const auto t = sys.scrubber()->totals();
  EXPECT_EQ(t.detected, 1u);
  EXPECT_EQ(t.repaired, 1u);
  EXPECT_EQ(ds->verify_shard(victim.ino, victim.stripe, victim.role),
            dfs::ShardState::kOk);

  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(sys.dfs_read(c.ino, 0, out).ok());
  EXPECT_EQ(out, data);

  // Registry carries the scrub counters (the bench JSON contract).
  EXPECT_EQ(sys.metrics().counter("scrub/detected").value(),
            sys.metrics().counter("scrub/repaired").value() +
                sys.metrics().counter("scrub/unrecoverable").value());
}

}  // namespace
}  // namespace dpc::dpu
