// Unit tests for the fault-injection framework: deterministic schedules,
// site gating, probability bounds, retry backoff, and the circuit breaker.
#include "fault/injector.hpp"
#include "fault/retry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

namespace dpc::fault {
namespace {

constexpr std::string_view kSite = "test/site";

std::vector<bool> draw_schedule(FaultInjector& fi, std::string_view site,
                                int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(fi.should_fail(site));
  return out;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultInjector a(1234);
  FaultInjector b(1234);
  a.arm(kSite, 0.2);
  b.arm(kSite, 0.2);
  EXPECT_EQ(draw_schedule(a, kSite, 1000), draw_schedule(b, kSite, 1000));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(1);
  FaultInjector b(2);
  a.arm(kSite, 0.5);
  b.arm(kSite, 0.5);
  EXPECT_NE(draw_schedule(a, kSite, 1000), draw_schedule(b, kSite, 1000));
}

TEST(FaultInjector, SitesAreIndependent) {
  // The schedule of one site must not depend on draws at another.
  FaultInjector a(99);
  FaultInjector b(99);
  a.arm("site/x", 0.3);
  a.arm("site/y", 0.7);
  b.arm("site/x", 0.3);
  // a interleaves x and y draws; b draws only x. x's schedule must match.
  std::vector<bool> ax;
  for (int i = 0; i < 500; ++i) {
    ax.push_back(a.should_fail("site/x"));
    (void)a.should_fail("site/y");
  }
  EXPECT_EQ(ax, draw_schedule(b, "site/x", 500));
}

TEST(FaultInjector, UnarmedNeverFires) {
  FaultInjector fi(7);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fi.should_fail("no/such/site"));
  EXPECT_EQ(fi.draws("no/such/site"), 0u);
  EXPECT_FALSE(fi.armed("no/such/site"));
}

TEST(FaultInjector, ProbabilityBounds) {
  FaultInjector fi(42);
  fi.arm("p/zero", 0.0);
  fi.arm("p/one", 1.0);
  fi.arm("p/quarter", 0.25);
  int zero = 0, one = 0, quarter = 0;
  for (int i = 0; i < 10000; ++i) {
    zero += fi.should_fail("p/zero") ? 1 : 0;
    one += fi.should_fail("p/one") ? 1 : 0;
    quarter += fi.should_fail("p/quarter") ? 1 : 0;
  }
  EXPECT_EQ(zero, 0);
  EXPECT_EQ(one, 10000);
  // Binomial(10000, .25): mean 2500, sd ~43 — ±500 is >10 sigma.
  EXPECT_GT(quarter, 2000);
  EXPECT_LT(quarter, 3000);
}

TEST(FaultInjector, DisableAndReenable) {
  FaultInjector fi(5);
  fi.arm(kSite, 1.0);
  EXPECT_TRUE(fi.should_fail(kSite));
  fi.set_enabled(kSite, false);
  EXPECT_FALSE(fi.should_fail(kSite));  // gated: no fire, no draw consumed
  const auto draws = fi.draws(kSite);
  fi.set_enabled(kSite, true);
  EXPECT_TRUE(fi.should_fail(kSite));
  EXPECT_EQ(fi.draws(kSite), draws + 1);
  fi.disarm(kSite);
  EXPECT_FALSE(fi.armed(kSite));
  EXPECT_FALSE(fi.should_fail(kSite));
}

TEST(FaultInjector, RearmResetsNothingButProbability) {
  FaultInjector fi(5);
  fi.arm(kSite, 1.0);
  (void)fi.should_fail(kSite);
  fi.arm(kSite, 0.0);
  EXPECT_DOUBLE_EQ(fi.probability(kSite), 0.0);
  EXPECT_FALSE(fi.should_fail(kSite));
}

TEST(FaultInjector, CountersTrackChecksAndInjections) {
  obs::Registry reg;
  FaultInjector fi(11, &reg);
  fi.arm(kSite, 1.0);
  for (int i = 0; i < 5; ++i) (void)fi.should_fail(kSite);
  EXPECT_EQ(reg.counter("fault/checks").value(), 5u);
  EXPECT_EQ(reg.counter("fault/injected").value(), 5u);
}

TEST(FaultInjector, ConcurrentDrawsAreSeedStableAsMultiset) {
  // Threads race for draw indices within one site; the total number of
  // injections only depends on the seed.
  const auto run = [] {
    FaultInjector fi(77);
    fi.arm(kSite, 0.5);
    std::atomic<int> fails{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t)
      ts.emplace_back([&] {
        for (int i = 0; i < 1000; ++i)
          if (fi.should_fail(kSite)) fails.fetch_add(1);
      });
    for (auto& t : ts) t.join();
    return fails.load();
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjector, SeedFromEnv) {
  ::setenv("DPC_FAULT_SEED", "98765", 1);
  EXPECT_EQ(FaultInjector::seed_from_env(), 98765u);
  ::setenv("DPC_FAULT_SEED", "not-a-number", 1);
  EXPECT_EQ(FaultInjector::seed_from_env(31), 31u);
  ::unsetenv("DPC_FAULT_SEED");
  EXPECT_EQ(FaultInjector::seed_from_env(17), 17u);
}

TEST(RetryPolicy, BackoffGrowsExponentially) {
  RetryPolicy p;
  p.jitter = 0.0;  // isolate the exponential part
  const auto b1 = p.backoff(1, 0);
  const auto b2 = p.backoff(2, 0);
  const auto b3 = p.backoff(3, 0);
  EXPECT_EQ(b1, p.base_backoff);
  EXPECT_EQ(b2.ns, b1.ns * 2);
  EXPECT_EQ(b3.ns, b1.ns * 4);
}

TEST(RetryPolicy, JitterBoundedAndDeterministic) {
  RetryPolicy p;  // jitter = 0.5 → scale in [0.75, 1.25]
  for (int attempt = 1; attempt <= 4; ++attempt) {
    for (std::uint64_t salt = 0; salt < 50; ++salt) {
      const auto b = p.backoff(attempt, salt);
      const double base = static_cast<double>(p.base_backoff.ns);
      const double exp = base * std::pow(p.multiplier, attempt - 1);
      EXPECT_GE(static_cast<double>(b.ns), exp * 0.749);
      EXPECT_LE(static_cast<double>(b.ns), exp * 1.251);
      EXPECT_EQ(b, p.backoff(attempt, salt)) << "not deterministic";
    }
  }
  // Different salts should not all collapse to one value.
  EXPECT_NE(p.backoff(1, 1), p.backoff(1, 2));
}

TEST(RetryPolicy, JitteredNeverRoundsPositiveBaseToZero) {
  // A sub-nanosecond draw (tiny base × big jitter) used to truncate to 0
  // (or below), turning every pacer built on jittered() into a busy spin.
  for (std::int64_t base_ns : {1, 2, 3, 10}) {
    for (int step = 0; step < 256; ++step) {
      for (std::uint64_t salt = 0; salt < 16; ++salt) {
        const auto w = jittered(sim::Nanos{base_ns}, /*jitter=*/1.9, step,
                                salt);
        EXPECT_GE(w.ns, 1) << "base=" << base_ns << " step=" << step
                           << " salt=" << salt;
      }
    }
  }
  // A zero base is a legitimate "no pacing" request and stays zero.
  EXPECT_EQ(jittered(sim::Nanos{0}, 1.9, 7, 7).ns, 0);
}

TEST(CircuitBreaker, OpensAfterThresholdAndProbes) {
  obs::Registry reg;
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 3;
  cfg.probe_interval = 4;
  CircuitBreaker br(cfg, &reg);

  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(br.allow());
    br.on_failure();
  }
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(reg.counter("breaker/opens").value(), 1u);

  // While open: fast-fail until the probe_interval-th gated call probes.
  int allowed = 0;
  for (int i = 0; i < 4; ++i) allowed += br.allow() ? 1 : 0;
  EXPECT_EQ(allowed, 1);  // exactly the probe
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(reg.counter("breaker/probes").value(), 1u);
  EXPECT_EQ(reg.counter("breaker/fast_fails").value(), 3u);

  // Failed probe → back to open.
  br.on_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);

  // Next probe succeeds → closed.
  allowed = 0;
  for (int i = 0; i < 4; ++i) allowed += br.allow() ? 1 : 0;
  EXPECT_EQ(allowed, 1);
  br.on_success();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(reg.counter("breaker/closes").value(), 1u);
  EXPECT_TRUE(br.allow());
}

// Drives the breaker open and to the half-open probe on the calling thread.
void open_and_probe(CircuitBreaker& br, const CircuitBreaker::Config& cfg) {
  for (int i = 0; i < cfg.failure_threshold; ++i) {
    ASSERT_TRUE(br.allow());
    br.on_failure();
  }
  ASSERT_EQ(br.state(), CircuitBreaker::State::kOpen);
  for (int i = 0; i < cfg.probe_interval - 1; ++i) ASSERT_FALSE(br.allow());
  ASSERT_TRUE(br.allow());  // this thread owns the probe
  ASSERT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
}

/// Runs `fn` on a different thread than the caller's — a "straggler": an
/// attempt admitted before the breaker opened, reporting in mid-probe.
template <typename Fn>
void on_other_thread(Fn fn) {
  std::thread t(fn);
  t.join();
}

TEST(CircuitBreaker, HalfOpenStragglerFailureCannotReopen) {
  // Regression: a straggler's on_failure used to flip HalfOpen → Open and
  // re-arm the gated-call counter, letting a *second* concurrent probe
  // through while the first was still in flight.
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  cfg.probe_interval = 4;
  CircuitBreaker br(cfg);
  open_and_probe(br, cfg);

  on_other_thread([&] { br.on_failure(); });
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  // And crucially: no second probe is admitted while the first is out.
  on_other_thread([&] { EXPECT_FALSE(br.allow()); });

  // The owner's own verdict still resolves the probe.
  br.on_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreaker, HalfOpenStragglerSuccessCannotClose) {
  // A straggler's success is evidence that predates the outage — it must
  // not close the breaker out from under the in-flight probe.
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  cfg.probe_interval = 4;
  CircuitBreaker br(cfg);
  open_and_probe(br, cfg);

  on_other_thread([&] { br.on_success(); });
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);

  br.on_success();  // the probe's own success closes
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneConcurrentProbe) {
  // Two threads race allow() at the probe boundary: exactly one may win
  // the probe; the loser fast-fails.
  for (int round = 0; round < 50; ++round) {
    CircuitBreaker::Config cfg;
    cfg.failure_threshold = 1;
    cfg.probe_interval = 1;  // every gated call is probe-eligible
    CircuitBreaker br(cfg);
    ASSERT_TRUE(br.allow());
    br.on_failure();
    ASSERT_EQ(br.state(), CircuitBreaker::State::kOpen);

    std::atomic<int> granted{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 2; ++t)
      ts.emplace_back([&] {
        if (br.allow()) granted.fetch_add(1);
      });
    for (auto& t : ts) t.join();
    EXPECT_EQ(granted.load(), 1);
    EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  }
}

TEST(CircuitBreaker, WedgedProbeIsTakenOver) {
  // The probe owner crashes mid-attempt and never reports. After a full
  // probe interval of half-open fast-fails, the next gated call takes the
  // probe over instead of wedging half-open forever.
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  cfg.probe_interval = 4;
  CircuitBreaker br(cfg);
  for (int i = 0; i < cfg.failure_threshold; ++i) {
    ASSERT_TRUE(br.allow());
    br.on_failure();
  }
  // Another thread wins the probe… and goes silent.
  on_other_thread([&] {
    for (int i = 0; i < cfg.probe_interval - 1; ++i) ASSERT_FALSE(br.allow());
    ASSERT_TRUE(br.allow());
  });
  ASSERT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);

  for (int i = 0; i < cfg.probe_interval; ++i) EXPECT_FALSE(br.allow());
  EXPECT_TRUE(br.allow());  // takeover: this thread now owns the probe
  br.on_success();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow());
}

TEST(CircuitBreaker, SuccessResetsFailureStreak) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker br(cfg);
  br.on_failure();
  br.on_failure();
  br.on_success();
  br.on_failure();
  br.on_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  br.on_failure();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
}

}  // namespace
}  // namespace dpc::fault
