#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/virtual_client.hpp"
#include "nvme/ini.hpp"
#include "nvme/queue_pair.hpp"
#include "nvme/tgt.hpp"
#include "pcie/dma.hpp"

namespace dpc {
namespace {

using core::NvmeRawHarness;

NvmeRawHarness::Options small_opts() {
  NvmeRawHarness::Options o;
  o.queues = 2;
  o.depth = 8;
  o.max_io = 64 * 1024;
  return o;
}

TEST(NvmeQueue, WriteEchoCompletes) {
  NvmeRawHarness h(small_opts());
  std::vector<std::byte> data(8192, std::byte{0x42});
  EXPECT_TRUE(h.do_write(0, data));
}

TEST(NvmeQueue, ReadReturnsPattern) {
  NvmeRawHarness h(small_opts());
  std::vector<std::byte> dst(8192);
  ASSERT_TRUE(h.do_read(0, dst));
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], static_cast<std::byte>((i * 131) & 0xFF)) << i;
}

TEST(NvmeQueue, EightKWriteCostsExactlyFourDmas) {
  // The headline Fig. 4 claim: SQE fetch + PRP-list fetch + payload + CQE.
  NvmeRawHarness h(small_opts());
  std::vector<std::byte> data(8192, std::byte{1});
  pcie::DmaScope scope(h.counters());
  ASSERT_TRUE(h.do_write(0, data));
  EXPECT_EQ(scope.ops() - h.counters().ops(pcie::DmaClass::kDoorbell), 4u)
      << "descriptor+data DMAs";
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kData), 1u);
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kDescriptor), 3u);
}

TEST(NvmeQueue, EightKReadAlsoFourDmas) {
  NvmeRawHarness h(small_opts());
  std::vector<std::byte> dst(8192);
  h.counters().reset();
  ASSERT_TRUE(h.do_read(0, dst));
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kData), 1u);
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kDescriptor), 3u);
}

TEST(NvmeQueue, FourKWriteFourDmas) {
  NvmeRawHarness h(small_opts());
  std::vector<std::byte> data(4096, std::byte{1});
  h.counters().reset();
  ASSERT_TRUE(h.do_write(0, data));
  EXPECT_EQ(h.counters().ops(pcie::DmaClass::kData) +
                h.counters().ops(pcie::DmaClass::kDescriptor),
            4u);
}

TEST(NvmeQueue, PayloadBytesMatchTransfer) {
  NvmeRawHarness h(small_opts());
  std::vector<std::byte> data(12345, std::byte{7});
  h.counters().reset();
  ASSERT_TRUE(h.do_write(0, data));
  // Payload + the CRC32C integrity trailer that rides in the same DMA.
  EXPECT_EQ(h.counters().bytes(pcie::DmaClass::kData),
            12345u + nvme::kPayloadCrcBytes);
}

TEST(NvmeQueue, ManySequentialOpsWrapTheRings) {
  NvmeRawHarness h(small_opts());  // depth 8 → forces several wraps
  std::vector<std::byte> data(4096, std::byte{9});
  std::vector<std::byte> dst(4096);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.do_write(0, data)) << "op " << i;
    ASSERT_TRUE(h.do_read(0, dst)) << "op " << i;
  }
}

TEST(NvmeQueue, QueuesAreIndependent) {
  NvmeRawHarness h(small_opts());
  std::vector<std::byte> data(4096, std::byte{3});
  ASSERT_TRUE(h.do_write(0, data));
  ASSERT_TRUE(h.do_write(1, data));
}

TEST(NvmeQueue, ConcurrentThreadsPerQueue) {
  NvmeRawHarness::Options o;
  o.queues = 4;
  o.depth = 16;
  o.max_io = 16 * 1024;
  NvmeRawHarness h(o);
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t, &failures] {
      const int q = t % 4;
      std::vector<std::byte> data(8192,
                                  static_cast<std::byte>(t));
      std::vector<std::byte> dst(8192);
      for (int i = 0; i < kOps; ++i) {
        if (!h.do_write(q, data)) ++failures;
        if (!h.do_read(q, dst)) ++failures;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(NvmeQueue, SqeFetchedFromHostMemoryVerbatim) {
  // White-box: build a qpair directly and check the TGT sees the encoded
  // SQE the INI produced.
  pcie::MemoryRegion host("host", 8 << 20);
  pcie::RegionAllocator halloc(host);
  pcie::MemoryRegion dpu("dpu", 1 << 20);
  pcie::RegionAllocator dalloc(dpu);
  pcie::DmaEngine dma(host, dpu);

  nvme::QpConfig qc;
  qc.depth = 4;
  qc.max_write = 8192;
  qc.max_read = 8192;
  nvme::QueuePair qp(qc, halloc, dalloc);
  nvme::IniDriver ini(dma, qp);

  nvme::NvmeFsCmd seen;
  std::atomic<bool> got{false};
  nvme::TgtDriver tgt(dma, qp,
                      [&](const nvme::NvmeFsCmd& cmd,
                          std::span<const std::byte>,
                          std::span<std::byte>) {
                        seen = cmd;
                        got = true;
                        return nvme::HandlerResult{};
                      });

  nvme::IniDriver::Request req;
  req.inline_op = nvme::InlineOp::kTruncate;
  req.inode = 0xABCD;
  req.offset = 0x1234567;
  const auto sub = ini.submit(req);
  tgt.process_available();
  ASSERT_TRUE(got.load());
  EXPECT_EQ(seen.inline_op, nvme::InlineOp::kTruncate);
  EXPECT_EQ(seen.inode, 0xABCDu);
  EXPECT_EQ(seen.offset, 0x1234567u);
  EXPECT_EQ(seen.cid, sub.cid);
  const auto c = ini.wait(sub.cid);
  EXPECT_EQ(c.status, nvme::Status::kSuccess);
  ini.release(sub.cid);
}

TEST(NvmeQueue, SglRejectedAsInvalidField) {
  pcie::MemoryRegion host("host", 8 << 20);
  pcie::RegionAllocator halloc(host);
  pcie::MemoryRegion dpu("dpu", 1 << 20);
  pcie::RegionAllocator dalloc(dpu);
  pcie::DmaEngine dma(host, dpu);
  nvme::QpConfig qc;
  qc.depth = 4;
  nvme::QueuePair qp(qc, halloc, dalloc);
  nvme::IniDriver ini(dma, qp);
  nvme::TgtDriver tgt(dma, qp,
                      [](const nvme::NvmeFsCmd&, std::span<const std::byte>,
                         std::span<std::byte>) {
                        ADD_FAILURE() << "handler must not run for SGL";
                        return nvme::HandlerResult{};
                      });

  // Hand-encode an SGL command directly into the SQ.
  nvme::NvmeFsCmd cmd;
  cmd.write_psdt = nvme::Psdt::kSgl;
  cmd.cid = 0;
  host.store(qp.sqe_off(0), encode_nvme_fs(cmd));
  dma.doorbell(qp.sq_tail_db_off(), 1);
  tgt.process_available();
  // CQE must carry kInvalidField (phase 1, slot 0).
  const auto last =
      host.atomic_u32(qp.cqe_off(0) + 12).load(std::memory_order_acquire);
  EXPECT_EQ(static_cast<nvme::Status>((last >> 16) >> 1),
            nvme::Status::kInvalidField);
}

TEST(NvmeQueue, InflightAccounting) {
  pcie::MemoryRegion host("host", 8 << 20);
  pcie::RegionAllocator halloc(host);
  pcie::MemoryRegion dpu("dpu", 1 << 20);
  pcie::RegionAllocator dalloc(dpu);
  pcie::DmaEngine dma(host, dpu);
  nvme::QpConfig qc;
  qc.depth = 8;
  nvme::QueuePair qp(qc, halloc, dalloc);
  nvme::IniDriver ini(dma, qp);
  nvme::TgtDriver tgt(dma, qp,
                      [](const nvme::NvmeFsCmd&, std::span<const std::byte>,
                         std::span<std::byte>) {
                        return nvme::HandlerResult{};
                      });
  EXPECT_EQ(ini.inflight(), 0);
  nvme::IniDriver::Request req;
  req.inline_op = nvme::InlineOp::kFsync;
  const auto s1 = ini.submit(req);
  const auto s2 = ini.submit(req);
  EXPECT_EQ(ini.inflight(), 2);
  tgt.process_available();
  ini.wait(s1.cid);
  ini.wait(s2.cid);
  ini.release(s1.cid);
  ini.release(s2.cid);
  EXPECT_EQ(ini.inflight(), 0);
}

}  // namespace
}  // namespace dpc
