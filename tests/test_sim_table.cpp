#include "sim/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/check.hpp"

namespace dpc::sim {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "iops"});
  t.add_row({"nvme-fs", "123456"});
  t.add_row({"virtio", "42"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("nvme-fs"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, FmtSiUnits) {
  EXPECT_EQ(Table::fmt_si(1500.0, 1), "1.5K");
  EXPECT_EQ(Table::fmt_si(2.5e6, 1), "2.5M");
  EXPECT_EQ(Table::fmt_si(3.2e9, 1), "3.2G");
  EXPECT_EQ(Table::fmt_si(999.0, 0), "999");
}

}  // namespace
}  // namespace dpc::sim
