#include "core/fileproto.hpp"

#include <gtest/gtest.h>

#include "sim/check.hpp"

namespace dpc::core {
namespace {

TEST(FileProto, RequestRoundTrip) {
  FileRequest req;
  req.op = FileOp::kRename;
  req.parent = 42;
  req.aux = 99;
  req.mode = 0755;
  req.name = "old-name";
  req.name2 = "new-name";
  const auto enc = req.encode();
  const auto back = FileRequest::decode(enc);
  EXPECT_EQ(back.op, FileOp::kRename);
  EXPECT_EQ(back.parent, 42u);
  EXPECT_EQ(back.aux, 99u);
  EXPECT_EQ(back.mode, 0755u);
  EXPECT_EQ(back.name, "old-name");
  EXPECT_EQ(back.name2, "new-name");
}

TEST(FileProto, EmptyAndLongNames) {
  FileRequest req;
  req.name = std::string(1024, 'n');
  req.name2 = "";
  const auto back = FileRequest::decode(req.encode());
  EXPECT_EQ(back.name.size(), 1024u);
  EXPECT_TRUE(back.name2.empty());
}

TEST(FileProto, BinaryNamesSurvive) {
  FileRequest req;
  req.name = std::string("\x00\xFF\x7F", 3);
  const auto back = FileRequest::decode(req.encode());
  EXPECT_EQ(back.name, req.name);
}

TEST(FileProto, ResponseRoundTripWithAttr) {
  FileResponse resp;
  resp.err = 13;
  resp.ino = 7;
  kvfs::Attr attr;
  attr.ino = 7;
  attr.size = 123456;
  attr.type = kvfs::FileType::kDirectory;
  resp.attr = attr;
  const auto back = FileResponse::decode(resp.encode());
  EXPECT_EQ(back.err, 13);
  EXPECT_EQ(back.ino, 7u);
  ASSERT_TRUE(back.attr.has_value());
  EXPECT_EQ(back.attr->size, 123456u);
  EXPECT_EQ(back.attr->type, kvfs::FileType::kDirectory);
}

TEST(FileProto, ResponseRoundTripWithEntries) {
  FileResponse resp;
  resp.entries.push_back({"alpha", 1});
  resp.entries.push_back({"beta", 2});
  const auto back = FileResponse::decode(resp.encode());
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].name, "alpha");
  EXPECT_EQ(back.entries[1].ino, 2u);
  EXPECT_FALSE(back.attr.has_value());
}

TEST(FileProto, ShortBufferRejected) {
  FileRequest req;
  req.name = "x";
  auto enc = req.encode();
  enc.resize(enc.size() - 1);
  EXPECT_THROW(FileRequest::decode(enc), dpc::CheckFailure);
  EXPECT_THROW(FileResponse::decode(std::vector<std::byte>(2)),
               dpc::CheckFailure);
}

TEST(FileProto, ResponseCapacityCoversWorstCase) {
  FileResponse resp;
  resp.attr = kvfs::Attr{};
  for (int i = 0; i < 100; ++i)
    resp.entries.push_back({std::string(1024, 'x'),
                            static_cast<std::uint64_t>(i)});
  EXPECT_LE(resp.encode().size(), response_capacity(100));
}

TEST(FileProto, OpNamesComplete) {
  EXPECT_STREQ(to_string(FileOp::kCreate), "create");
  EXPECT_STREQ(to_string(FileOp::kReaddir), "readdir");
  EXPECT_STREQ(to_string(FileOp::kResolve), "resolve");
}

}  // namespace
}  // namespace dpc::core
