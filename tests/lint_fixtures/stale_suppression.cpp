// dpc_lint negative fixture: stale-suppression.
//
// A `// dpc-lint: ok(<rule>)` that suppresses nothing — the code it once
// excused was fixed or moved, and the comment now only misleads readers
// into thinking a violation lives here. The linter must call it out.
#include <chrono>
#include <cstdint>

namespace dpc::lint_fixture {

inline std::uint32_t answer() {
  std::uint32_t v = 42;  // dpc-lint: ok(raw-mutex) nothing left to excuse  // expect: stale-suppression
  return v;
}

// A suppression naming a rule that does not exist is stale by definition
// (a typo, or the rule was retired).
inline std::uint32_t answer2() {
  std::uint32_t v = 43;  // dpc-lint: ok(no-such-rule)  // expect: stale-suppression
  return v;
}

// Control: a suppression that earns its keep — the line would otherwise
// trip wall-clock — must NOT be reported stale.
inline std::int64_t boot_stamp() {
  return std::chrono::high_resolution_clock::now()  // dpc-lint: ok(wall-clock) fixture control: suppression in active use
      .time_since_epoch()
      .count();
}

}  // namespace dpc::lint_fixture
