// dpc_lint negative fixture: sqe-tenant-drop.
//
// An SQE builder (encode_* taking a *Cmd parameter) that fills the wire
// words but never references the command's tenant field — DW10[31:24]
// silently encodes tenant 0 and the I/O escapes QoS attribution. The types
// are local stand-ins so the fixture trips exactly this rule.
#include <cstdint>

namespace dpc::lint_fixture {

struct FixtureFsCmd {
  std::uint8_t opcode = 0;
  std::uint8_t tenant = 0;
  std::uint32_t write_len = 0;
};

struct FixtureSqeWords {
  std::uint32_t dw10 = 0;
  std::uint32_t dw12 = 0;
};

FixtureSqeWords encode_fixture_write(const FixtureFsCmd& cmd) {  // expect: sqe-tenant-drop
  FixtureSqeWords w;
  w.dw10 = cmd.opcode;
  w.dw12 = cmd.write_len;
  return w;
}

// Control: the same builder with the stamp — must NOT be flagged.
FixtureSqeWords encode_fixture_read(const FixtureFsCmd& cmd) {
  FixtureSqeWords w;
  w.dw10 = cmd.opcode |
           (static_cast<std::uint32_t>(cmd.tenant) << 24);
  w.dw12 = cmd.write_len;
  return w;
}

}  // namespace dpc::lint_fixture
