// dpc_lint negative fixture: lock-across-wait.
//
// A sim:: guard held across a modelled-time wait (IniDriver::wait / a DMA
// burst). Compiled into the build (never linked into a test) so the AST
// engine sees it in compile_commands.json; `dpc_lint --selftest` requires
// the annotated finding to fire under both engines. The sim:: types are
// local stand-ins — the lint rules key on the spellings, and pulling the
// real headers in would drag unrelated findings into the selftest.
#include <cstdint>

namespace sim {
struct FixtureMutex {};
class LockGuard {
 public:
  explicit LockGuard(FixtureMutex& mu) : mu_(&mu) {}
  ~LockGuard() { mu_ = nullptr; }

 private:
  FixtureMutex* mu_;
};
}  // namespace sim

namespace dpc::lint_fixture {

struct IniStub {
  std::uint32_t last = 0;
  std::uint32_t wait(std::uint16_t cid) {
    last = cid;
    return last;
  }
};

// The guard from the first line is still held when wait() spins on the
// completion — exactly the shape the rule exists to reject.
std::uint32_t completion_under_lock(sim::FixtureMutex& mu, IniStub& ini) {
  sim::LockGuard g(mu);
  return ini.wait(7);  // expect: lock-across-wait
}

// Control: the guard's scope closes before the wait — must NOT be flagged.
std::uint32_t completion_after_unlock(sim::FixtureMutex& mu, IniStub& ini) {
  {
    sim::LockGuard g(mu);
  }
  return ini.wait(9);
}

}  // namespace dpc::lint_fixture
