// dpc_lint negative fixture: fixed-deadline.
//
// The health-scored backends (src/dfs/, src/kv/) cut retries at
// HealthBoard::deadline() — the scaled observed p99 — not at the fixed
// calib timeout constants, which neither track a slow regime nor cut a
// gray-failing peer short. Any mention of the constants in a
// deadline-scoped file is a finding; the no-board fallback keeps its
// constant under an explicit suppression.
#include <cstdint>

namespace dpc::lint_fixture {

// Stand-ins for sim::calib — the declarations themselves fire, exactly
// like a copy of the constants smuggled into a backend file would.
namespace calib {
inline constexpr std::int64_t kKvOpTimeout = 500'000;           // expect: fixed-deadline
inline constexpr std::int64_t kNvmeCommandTimeout = 1'000'000;  // expect: fixed-deadline
}  // namespace calib

// A retry loop that waits a fixed 500us per attempt regardless of how the
// peer has actually been behaving.
inline std::int64_t retry_budget_fixed(int attempts) {
  return attempts * calib::kKvOpTimeout;  // expect: fixed-deadline
}

inline std::int64_t nvme_cutoff_fixed() {
  return calib::kNvmeCommandTimeout;  // expect: fixed-deadline
}

// Control: the no-board fallback — a site constructed before any
// HealthBoard exists — keeps the constant under an explicit suppression
// and must NOT be reported.
inline std::int64_t retry_budget_fallback() {
  return calib::kKvOpTimeout;  // dpc-lint: ok(fixed-deadline) no-board fallback
}

}  // namespace dpc::lint_fixture
