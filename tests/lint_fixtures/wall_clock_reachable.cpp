// dpc_lint negative fixture: wall-clock-reachable (and plain wall-clock).
//
// A modelled-time function (sim::Nanos in its signature) that launders a
// real-clock read through a helper in the same translation unit. The
// per-line wall-clock rule flags the read itself under both engines; the
// AST engine additionally walks the call graph and flags the modelled-time
// entry point that reaches it.
#include <chrono>
#include <cstdint>

namespace sim {
using Nanos = std::int64_t;
}  // namespace sim

namespace dpc::lint_fixture {

inline std::int64_t read_real_clock() {
  return std::chrono::high_resolution_clock::now()  // expect: wall-clock
      .time_since_epoch()
      .count();
}

// Modelled-time code must derive cost from the model, never from the host
// clock this helper hides.
inline sim::Nanos laundered_cost(sim::Nanos base) {  // expect-ast: wall-clock-reachable
  return base + (read_real_clock() & 0xff);
}

}  // namespace dpc::lint_fixture
