// dpc_lint negative fixture: persist-pair (and wal-commit-order).
//
// A commit word published with no persist fence anywhere in the function:
// the window-local wal-commit-order rule sees the missing fence in the
// lookback, and persist-pair sees the function-level count mismatch (one
// publish, zero fences). The device is a local stand-in with the real
// method spellings.
#include <cstdint>

namespace dpc::lint_fixture {

using Nanos = std::int64_t;

struct FixtureNvmDev {
  Nanos fence_cost = 0;
  Nanos write_cost = 0;
  void persist_fence(Nanos& cost) { cost += fence_cost; }
  bool publish_commit_word(std::uint64_t off, std::uint32_t commit,
                           Nanos& cost) {
    cost += write_cost;
    return off != 0 && commit != 0;
  }
};

// --- padding -------------------------------------------------------------
// The wal-commit-order rule scans a 15-line lookback window for a fence;
// the member definitions above spell `persist_fence(`, so this comment
// block pushes the offending call safely past the window. The padding is
// part of the fixture: without it the lookback would see the *definition*
// and the negative test would go quiet.
// -------------------------------------------------------------------------

// The payload at `off` was written but never fenced durable; publishing the
// commit word now lets a power cut validate bytes that never reached
// media. Both rules must fire on the call line.
bool commit_without_fence(FixtureNvmDev& dev, Nanos& cost) {
  return dev.publish_commit_word(640, 0x600DF00Du, cost);  // expect: persist-pair, wal-commit-order
}

// Control: fence first, then publish — must NOT be flagged.
bool commit_with_fence(FixtureNvmDev& dev, Nanos& cost) {
  dev.persist_fence(cost);
  return dev.publish_commit_word(768, 0x600DF00Du, cost);
}

}  // namespace dpc::lint_fixture
