#include "sim/histogram.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dpc::sim {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean().ns, 0);
  EXPECT_EQ(h.percentile(50).ns, 0);
  EXPECT_EQ(h.min().ns, 0);
  EXPECT_EQ(h.max().ns, 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(micros(10));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min().ns, 10000);
  EXPECT_EQ(h.max().ns, 10000);
  // Bucket resolution is ~1/16 of an octave.
  EXPECT_NEAR(static_cast<double>(h.mean().ns), 10000.0, 10000.0 / 16);
  EXPECT_NEAR(static_cast<double>(h.percentile(50).ns), 10000.0,
              10000.0 / 8);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(micros(i));
  const auto p10 = h.percentile(10);
  const auto p50 = h.percentile(50);
  const auto p99 = h.percentile(99);
  EXPECT_LT(p10.ns, p50.ns);
  EXPECT_LT(p50.ns, p99.ns);
  EXPECT_NEAR(static_cast<double>(p50.ns), 500e3, 50e3);
  EXPECT_NEAR(static_cast<double>(p99.ns), 990e3, 99e3);
}

TEST(Histogram, MeanOfUniform) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(micros(100));
  EXPECT_NEAR(static_cast<double>(h.mean().ns), 100e3, 100e3 / 16);
}

TEST(Histogram, MinMaxTracked) {
  Histogram h;
  h.record(nanos(7));
  h.record(millis(3));
  h.record(micros(42));
  EXPECT_EQ(h.min().ns, 7);
  EXPECT_EQ(h.max().ns, 3000000);
}

TEST(Histogram, RecordNWeights) {
  Histogram h;
  h.record_n(micros(1), 99);
  h.record_n(micros(1000), 1);
  EXPECT_EQ(h.count(), 100u);
  // p50 should sit at the small value.
  EXPECT_LT(h.percentile(50).ns, 2000);
  EXPECT_GT(h.percentile(99.9).ns, 900000);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.record(micros(10));
  b.record(micros(1000));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min().ns, 10000);
  EXPECT_EQ(a.max().ns, 1000000);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(micros(5));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max().ns, 0);
}

TEST(Histogram, ConcurrentRecording) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) h.record(micros(i % 100 + 1));
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, ZeroAndNegativeClampToOne) {
  Histogram h;
  h.record(nanos(0));
  h.record(nanos(-5));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.percentile(100).ns, 2);
}

class HistogramAccuracy : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HistogramAccuracy, RelativeErrorBounded) {
  // Property: any recorded value's bucket upper edge is within ~7% above it.
  Histogram h;
  const std::int64_t v = GetParam();
  h.record(nanos(v));
  const auto p100 = h.percentile(100);
  EXPECT_GE(p100.ns, v);
  EXPECT_LE(static_cast<double>(p100.ns),
            static_cast<double>(v) * 1.08 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistogramAccuracy,
                         ::testing::Values(1, 3, 17, 100, 999, 4096, 65537,
                                           1000000, 88000, 123456789,
                                           999999999999LL));

}  // namespace
}  // namespace dpc::sim
