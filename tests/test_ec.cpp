#include "ec/crc32c.hpp"
#include "ec/gf256.hpp"
#include "ec/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "sim/check.hpp"
#include "sim/rng.hpp"

namespace dpc::ec {
namespace {

TEST(Gf256, FieldAxioms) {
  const auto& gf = Gf256::instance();
  // Spot-check closure, identity, inverse over all elements.
  for (unsigned a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf.mul(ua, 1), ua);
    EXPECT_EQ(gf.mul(ua, gf.inv(ua)), 1) << "a=" << a;
    EXPECT_EQ(gf.add(ua, ua), 0);  // char 2
  }
  EXPECT_EQ(gf.mul(0, 123), 0);
  EXPECT_THROW(gf.inv(0), dpc::CheckFailure);
  EXPECT_THROW(gf.div(1, 0), dpc::CheckFailure);
}

TEST(Gf256, MulMatchesRussianPeasant) {
  // Independent implementation to cross-check the tables.
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    std::uint16_t r = 0, aa = a;
    while (b) {
      if (b & 1) r ^= aa;
      aa <<= 1;
      if (aa & 0x100) aa ^= 0x11D;
      b >>= 1;
    }
    return static_cast<std::uint8_t>(r);
  };
  const auto& gf = Gf256::instance();
  sim::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_EQ(gf.mul(a, b), slow_mul(a, b)) << +a << "*" << +b;
  }
}

TEST(Gf256, MulAccDistributes) {
  const auto& gf = Gf256::instance();
  std::vector<std::byte> dst(64, std::byte{0});
  std::vector<std::byte> src(64);
  for (std::size_t i = 0; i < 64; ++i) src[i] = static_cast<std::byte>(i);
  gf.mul_acc(dst, src, 3);
  gf.mul_acc(dst, src, 3);
  // x ^ x = 0.
  for (auto b : dst) EXPECT_EQ(b, std::byte{0});
}

TEST(GfMatrix, InverseRoundTrip) {
  const auto& gf = Gf256::instance();
  GfMatrix m(3, 3);
  // A known-invertible Vandermonde-ish matrix.
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      m.at(r, c) = gf.pow(gf.exp(static_cast<unsigned>(r + 1)),
                          static_cast<unsigned>(c));
  const GfMatrix prod = m.multiplied(m.inverted());
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(prod.at(r, c), r == c ? 1 : 0);
}

TEST(GfMatrix, SingularDetected) {
  GfMatrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 1;
  m.at(1, 1) = 2;
  EXPECT_THROW(m.inverted(), dpc::CheckFailure);
}

TEST(ReedSolomon, SystematicEncodePreservesData) {
  // The top of the encode matrix is the identity → parity-only output.
  ReedSolomon rs(4, 2);
  std::vector<std::vector<std::byte>> data(4, std::vector<std::byte>(128));
  sim::Rng rng(7);
  for (auto& s : data)
    for (auto& b : s) b = static_cast<std::byte>(rng.next_below(256));
  std::vector<std::vector<std::byte>> parity(2,
                                             std::vector<std::byte>(128));
  std::vector<std::span<const std::byte>> dv(data.begin(), data.end());
  std::vector<std::span<std::byte>> pv(parity.begin(), parity.end());
  rs.encode(dv, pv);

  std::vector<std::span<const std::byte>> all;
  for (auto& s : data) all.emplace_back(s);
  for (auto& s : parity) all.emplace_back(s);
  EXPECT_TRUE(rs.verify(all));
  // Corrupt a byte → verify fails.
  parity[0][5] ^= std::byte{1};
  EXPECT_FALSE(rs.verify(all));
}

using RsParam = std::tuple<int, int, int>;  // k, m, erasures

class RsReconstruct : public ::testing::TestWithParam<RsParam> {};

TEST_P(RsReconstruct, AnyKSurviveSuffices) {
  const auto [k, m, erasures] = GetParam();
  ReedSolomon rs(k, m);
  const std::size_t len = 256;
  sim::Rng rng(static_cast<std::uint64_t>(k * 100 + m * 10 + erasures));

  std::vector<std::vector<std::byte>> shards(
      static_cast<std::size_t>(k + m), std::vector<std::byte>(len));
  for (int d = 0; d < k; ++d)
    for (auto& b : shards[static_cast<std::size_t>(d)])
      b = static_cast<std::byte>(rng.next_below(256));
  {
    std::vector<std::span<const std::byte>> dv;
    for (int d = 0; d < k; ++d) dv.emplace_back(shards[static_cast<std::size_t>(d)]);
    std::vector<std::span<std::byte>> pv;
    for (int p = 0; p < m; ++p) pv.emplace_back(shards[static_cast<std::size_t>(k + p)]);
    rs.encode(dv, pv);
  }
  const auto golden = shards;

  // Erase `erasures` random shards.
  std::vector<bool> present_vec(static_cast<std::size_t>(k + m), true);
  int erased = 0;
  while (erased < erasures) {
    const auto victim = rng.next_below(static_cast<std::uint64_t>(k + m));
    if (!present_vec[victim]) continue;
    present_vec[victim] = false;
    std::fill(shards[victim].begin(), shards[victim].end(), std::byte{0xEE});
    ++erased;
  }
  std::unique_ptr<bool[]> present(new bool[static_cast<std::size_t>(k + m)]);
  for (int i = 0; i < k + m; ++i)
    present[static_cast<std::size_t>(i)] = present_vec[static_cast<std::size_t>(i)];

  std::vector<std::span<std::byte>> views(shards.begin(), shards.end());
  rs.reconstruct(views, std::span<const bool>(present.get(),
                                              static_cast<std::size_t>(k + m)));
  for (int i = 0; i < k + m; ++i)
    EXPECT_EQ(shards[static_cast<std::size_t>(i)],
              golden[static_cast<std::size_t>(i)])
        << "shard " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsReconstruct,
    ::testing::Values(RsParam{4, 2, 1}, RsParam{4, 2, 2}, RsParam{2, 1, 1},
                      RsParam{6, 3, 3}, RsParam{8, 4, 4}, RsParam{10, 4, 2},
                      RsParam{3, 2, 2}, RsParam{5, 5, 5}));

TEST(ReedSolomon, TooManyErasuresRejected) {
  ReedSolomon rs(4, 2);
  std::vector<std::vector<std::byte>> shards(6, std::vector<std::byte>(16));
  std::vector<std::span<std::byte>> views(shards.begin(), shards.end());
  bool present[6] = {true, true, true, false, false, false};
  EXPECT_THROW(rs.reconstruct(views, present), dpc::CheckFailure);
}

TEST(ReedSolomon, DeltaParityMatchesFullReencode) {
  // Paper path: an 8K write touches one shard; parity is updated via
  // delta. Must equal re-encoding the full stripe.
  ReedSolomon rs(4, 2);
  const std::size_t len = 512;
  sim::Rng rng(99);
  std::vector<std::vector<std::byte>> data(4, std::vector<std::byte>(len));
  for (auto& s : data)
    for (auto& b : s) b = static_cast<std::byte>(rng.next_below(256));
  std::vector<std::vector<std::byte>> parity(2, std::vector<std::byte>(len));
  {
    std::vector<std::span<const std::byte>> dv(data.begin(), data.end());
    std::vector<std::span<std::byte>> pv(parity.begin(), parity.end());
    rs.encode(dv, pv);
  }

  // Mutate shard 2, apply delta to both parities.
  std::vector<std::byte> updated(len);
  for (auto& b : updated) b = static_cast<std::byte>(rng.next_below(256));
  std::vector<std::byte> delta(len);
  for (std::size_t i = 0; i < len; ++i) delta[i] = data[2][i] ^ updated[i];
  data[2] = updated;
  for (int p = 0; p < 2; ++p) rs.apply_delta(parity[static_cast<std::size_t>(p)], p, 2, delta);

  std::vector<std::vector<std::byte>> expect(2, std::vector<std::byte>(len));
  {
    std::vector<std::span<const std::byte>> dv(data.begin(), data.end());
    std::vector<std::span<std::byte>> pv(expect.begin(), expect.end());
    rs.encode(dv, pv);
  }
  EXPECT_EQ(parity, expect);
}

TEST(ReedSolomon, CostModelFavorsDpu) {
  EXPECT_GT(ReedSolomon::host_encode_cost(1 << 20).ns,
            ReedSolomon::dpu_encode_cost(1 << 20).ns);
  EXPECT_EQ(ReedSolomon::host_encode_cost(0).ns, 0);
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros → 0x8A9136AA.
  std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  // "123456789" → 0xE3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(std::as_bytes(std::span{digits, 9})), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<std::byte> buf(1000);
  sim::Rng rng(3);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));
  const auto full = crc32c(buf);
  // CRC chaining: crc(a||b) computed by seeding with crc(a).
  const auto part = crc32c(std::span<const std::byte>(buf).subspan(300),
                           crc32c(std::span<const std::byte>(buf).first(300)));
  EXPECT_EQ(part, full);
}

TEST(Crc32c, DetectsBitFlip) {
  std::vector<std::byte> buf(4096, std::byte{0x5A});
  const auto a = crc32c(buf);
  buf[2048] ^= std::byte{0x01};
  EXPECT_NE(crc32c(buf), a);
}

TEST(Crc32c, BackendNameIsKnown) {
  const std::string name = crc32c_backend();
  EXPECT_TRUE(name == "sse4.2" || name == "slice8") << name;
}

TEST(Crc32c, AllBackendsAgreeAcrossSizesAndSeeds) {
  // Cross-check the dispatched backend (hardware when the CPU has SSE4.2)
  // against both software paths, across every 8-byte-remainder class, with
  // unaligned starts and nonzero seeds.
  sim::Rng rng(7);
  std::vector<std::byte> buf(4096 + 64);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));
  const std::size_t sizes[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17,
                               63, 64, 65, 511, 512, 1000, 4096};
  for (const std::size_t size : sizes) {
    for (const std::size_t align : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{5}}) {
      const auto s =
          std::span<const std::byte>(buf).subspan(align, size);
      for (const std::uint32_t seed : {0u, 1u, 0xDEADBEEFu}) {
        const auto ref = crc32c_bytewise(s, seed);
        EXPECT_EQ(crc32c(s, seed), ref) << size << "+" << align;
        EXPECT_EQ(crc32c_slice8(s, seed), ref) << size << "+" << align;
      }
    }
  }
}

}  // namespace
}  // namespace dpc::ec
