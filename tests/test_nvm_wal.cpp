// NVM write-ahead log: frame format and scan (torn tail, rot, residue),
// checkpoint truncation, the bounded-ring backpressure ladder, and the
// system-level durability contract — fsync acks at NVM persistence, the
// log replays after a full power loss, and degradation (ring full or NVM
// faults) falls back to the synchronous SSD path without losing an acked
// fsync or wedging the client.
#include "nvm/wal.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <span>
#include <vector>

#include "cache/control_plane.hpp"
#include "ec/crc32c.hpp"
#include "core/dpc_system.hpp"
#include "fault/injector.hpp"
#include "kvfs/fsck.hpp"
#include "nvm/device.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace dpc::nvm {
namespace {

std::vector<std::byte> page(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

constexpr std::uint64_t kDev = 1ull << 20;  // 1 MiB log for the unit tests

TEST(NvmWalUnit, AppendRecoverRoundtrip) {
  obs::Registry reg;
  NvmDevice dev(kDev, nullptr, &reg);
  WriteAheadLog wal(dev, reg);
  sim::Nanos c{};

  const auto p0 = page(4096, 1);
  const auto p1 = page(4096, 2);
  const auto intent = page(64, 3);
  ASSERT_EQ(wal.append_data(7, 3, p0, c), AppendStatus::kOk);
  ASSERT_EQ(wal.append_data(9, 0, p1, c), AppendStatus::kOk);
  ASSERT_EQ(wal.append_intent(11, intent, c), AppendStatus::kOk);
  EXPECT_TRUE(wal.intent_open(11));
  ASSERT_EQ(wal.append_intent_commit(11, c), AppendStatus::kOk);
  EXPECT_FALSE(wal.intent_open(11));
  ASSERT_EQ(wal.append_truncate(7, 0, c), AppendStatus::kOk);
  // The truncate marker supersedes ino 7's logged page; ino 9's survives.
  EXPECT_FALSE(wal.has_pending(7, 3));
  EXPECT_TRUE(wal.has_pending(9, 0));
  EXPECT_EQ(wal.pending_pages(), 1u);

  // Power cycle: a fresh WAL over the same media sees exactly the same log.
  WriteAheadLog wal2(dev, reg);
  auto rec = wal2.recover();
  ASSERT_EQ(rec.records.size(), 5u);
  EXPECT_EQ(rec.report.corrupt, 0u);
  EXPECT_FALSE(rec.report.torn_tail);
  EXPECT_EQ(rec.records[0].kind, RecordKind::kData);
  EXPECT_EQ(rec.records[0].a, 7u);
  EXPECT_EQ(rec.records[0].b, 3u);
  EXPECT_EQ(rec.records[0].data, p0);
  EXPECT_EQ(rec.records[2].kind, RecordKind::kIntent);
  EXPECT_EQ(rec.records[2].a, 11u);
  EXPECT_EQ(rec.records[2].data, intent);
  EXPECT_EQ(rec.records[4].kind, RecordKind::kTruncate);
  for (std::size_t i = 0; i < rec.records.size(); ++i)
    EXPECT_EQ(rec.records[i].seq, i + 1);
  EXPECT_TRUE(wal2.has_pending(9, 0));
  EXPECT_FALSE(wal2.has_pending(7, 3));
  EXPECT_FALSE(wal2.intent_open(11));

  // recover() is idempotent: a second scan returns the same records.
  auto rec2 = wal2.recover();
  ASSERT_EQ(rec2.records.size(), rec.records.size());
  for (std::size_t i = 0; i < rec.records.size(); ++i) {
    EXPECT_EQ(rec2.records[i].seq, rec.records[i].seq);
    EXPECT_EQ(rec2.records[i].data, rec.records[i].data);
  }
}

TEST(NvmWalUnit, TornAppendDetectedAndOverwritten) {
  obs::Registry reg;
  fault::FaultInjector fi(0x7011, &reg);
  NvmDevice dev(kDev, &fi, &reg);
  WriteAheadLog wal(dev, reg, &fi);
  sim::Nanos c{};

  ASSERT_EQ(wal.append_data(1, 0, page(4096, 10), c), AppendStatus::kOk);
  ASSERT_EQ(wal.append_data(1, 1, page(4096, 11), c), AppendStatus::kOk);
  fi.arm(kFaultWalTornAppend, 1.0);
  EXPECT_EQ(wal.append_data(1, 2, page(4096, 12), c), AppendStatus::kIoError);
  EXPECT_TRUE(wal.degraded());
  fi.disarm(kFaultWalTornAppend);

  // Scan after the "power cut": the torn frame is dropped whole.
  WriteAheadLog wal2(dev, reg, &fi);
  auto rec = wal2.recover();
  EXPECT_TRUE(rec.report.torn_tail);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_FALSE(wal2.degraded());  // recovery state is rebuilt from media

  // The tail rewound onto the torn bytes: a new append overwrites them and
  // the next scan sees three whole frames.
  const auto p2 = page(4096, 13);
  ASSERT_EQ(wal2.append_data(1, 2, p2, c), AppendStatus::kOk);
  WriteAheadLog wal3(dev, reg, &fi);
  auto rec3 = wal3.recover();
  EXPECT_FALSE(rec3.report.torn_tail);
  ASSERT_EQ(rec3.records.size(), 3u);
  EXPECT_EQ(rec3.records[2].data, p2);
  // The torn frame may have consumed a seq (its header landed whole, so
  // the scan classifies it corrupt rather than torn); monotonicity is the
  // contract, not density.
  EXPECT_GT(rec3.records[2].seq, rec3.records[1].seq);
}

TEST(NvmWalUnit, TornEpochHeaderFallsBackToCommittedRecords) {
  // Torn-tail edge: every frame's commit word is durable, but the power cut
  // landed mid-checkpoint — the NEW epoch header slot is torn. The scan
  // must fall back to the intact old-epoch header and walk the still-present
  // frames again (idempotent re-replay) rather than trust half a header and
  // lose acked records.
  obs::Registry reg;
  NvmDevice dev(kDev, nullptr, &reg);
  WriteAheadLog wal(dev, reg);
  sim::Nanos c{};

  const auto p0 = page(4096, 7);
  ASSERT_EQ(wal.append_data(7, 3, p0, c), AppendStatus::kOk);
  wal.note_drained(7, 3, c);
  wal.maybe_checkpoint(c);  // epoch 1 -> 2: new header lands in slot 0
  ASSERT_EQ(wal.live_bytes(), 0u);

  // Tear the epoch-2 slot (even epoch -> slot 0). Its CRC now fails, so
  // only the epoch-1 slot is readable — exactly the state a crash between
  // the header write and its persist fence leaves behind.
  dev.raw()[8] ^= std::byte{0x01};
  const auto rec = wal.recover();
  EXPECT_FALSE(rec.report.torn_tail);
  ASSERT_EQ(rec.report.scanned, 2u);  // the data frame and its drain marker
  EXPECT_EQ(rec.records[0].kind, RecordKind::kData);
  EXPECT_EQ(rec.records[0].a, 7u);
  EXPECT_EQ(rec.records[0].b, 3u);
  EXPECT_EQ(rec.records[0].data,
            std::vector<std::byte>(p0.begin(), p0.end()));
  EXPECT_EQ(rec.records[1].kind, RecordKind::kDrained);
  // The re-scanned drain marker still supersedes the logged page.
  EXPECT_EQ(wal.pending_pages(), 0u);

  // The rolled-back log is fully usable: the next checkpoint rewrites the
  // torn slot and retires the old epoch for good.
  wal.maybe_checkpoint(c);
  const auto rec2 = wal.recover();
  EXPECT_EQ(rec2.report.scanned, 0u);
  EXPECT_FALSE(rec2.report.torn_tail);
}

TEST(NvmWalUnit, ZeroLengthMarkerFrameAtReserveBoundary) {
  // Torn-tail edge: the shortest frame the format admits — zero-length
  // payload, header + commit word only — sitting flush at the marker
  // reserve boundary. The scan must parse it without reading past the empty
  // payload and must keep walking records cleanly to the true end of log.
  constexpr std::uint64_t kFrame = WriteAheadLog::kFrameHeaderBytes + 16 +
                                   4096 + WriteAheadLog::kCommitBytes;
  // Sized so two data appends land the tail exactly on the bulky limit
  // (size - reserve): the crafted marker then occupies the first reserve
  // bytes, where only bookkeeping records may live.
  constexpr std::uint64_t kSize =
      WriteAheadLog::kDataStart + 2 * kFrame + WriteAheadLog::kReserveBytes;
  obs::Registry reg;
  NvmDevice dev(kSize, nullptr, &reg);
  WriteAheadLog wal(dev, reg);
  sim::Nanos c{};

  const auto p0 = page(4096, 1);
  ASSERT_EQ(wal.append_data(1, 0, p0, c), AppendStatus::kOk);
  ASSERT_EQ(wal.append_data(1, 1, p0, c), AppendStatus::kOk);
  EXPECT_EQ(wal.live_bytes(), 2 * kFrame);
  // Bulky appends are refused at the boundary; the reserve is intact.
  EXPECT_EQ(wal.append_data(1, 2, p0, c), AppendStatus::kFull);

  // Hand-craft the zero-length kDrained frame at the boundary: valid header
  // CRC, len = 0, next expected seq, valid commit word over just the seq.
  const std::uint64_t off = WriteAheadLog::kDataStart + 2 * kFrame;
  std::array<std::byte, WriteAheadLog::kFrameHeaderBytes +
                            WriteAheadLog::kCommitBytes>
      f{};
  const std::uint64_t seq = 3;
  std::memcpy(f.data() + 8, &seq, sizeof(seq));
  f[16] = std::byte{4};  // RecordKind::kDrained
  const std::uint32_t hcrc = ec::crc32c(std::span<const std::byte>(f).subspan(
      4, WriteAheadLog::kFrameHeaderBytes - 4));
  std::memcpy(f.data(), &hcrc, sizeof(hcrc));
  const std::uint32_t commit = ec::crc32c_u64(seq);
  std::memcpy(f.data() + WriteAheadLog::kFrameHeaderBytes, &commit,
              sizeof(commit));
  std::copy(f.begin(), f.end(), dev.raw().begin() + off);

  const auto rec = wal.recover();
  EXPECT_FALSE(rec.report.torn_tail);
  ASSERT_EQ(rec.report.scanned, 3u);
  EXPECT_EQ(rec.records[2].kind, RecordKind::kDrained);
  EXPECT_EQ(rec.records[2].a, 0u);  // defensive parse: no fields to read
  // A zero-length drain names no page: both real pages stay pending.
  EXPECT_EQ(wal.pending_pages(), 2u);

  // Appending resumes after the crafted frame — real drain markers still
  // fit in what is left of the reserve.
  wal.note_drained(1, 0, c);
  EXPECT_EQ(wal.pending_pages(), 1u);
}

TEST(NvmWalUnit, RotInPayloadSkippedNotFatal) {
  obs::Registry reg;
  fault::FaultInjector fi(0x707, &reg);
  NvmDevice dev(kDev, &fi, &reg);
  WriteAheadLog wal(dev, reg, &fi);
  sim::Nanos c{};

  const auto p0 = page(4096, 20);
  const auto p2 = page(4096, 22);
  ASSERT_EQ(wal.append_data(2, 0, p0, c), AppendStatus::kOk);
  fi.arm(kFaultWalRot, 1.0);
  ASSERT_EQ(wal.append_data(2, 1, page(4096, 21), c), AppendStatus::kOk);
  fi.disarm(kFaultWalRot);
  ASSERT_EQ(wal.append_data(2, 2, p2, c), AppendStatus::kOk);

  // The rotted middle frame fails its commit CRC: skipped, counted, and the
  // scan keeps walking to the good frame behind it.
  WriteAheadLog wal2(dev, reg, &fi);
  auto rec = wal2.recover();
  EXPECT_EQ(rec.report.corrupt, 1u);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[0].data, p0);
  EXPECT_EQ(rec.records[1].data, p2);
  EXPECT_EQ(rec.records[1].seq, 3u);
  EXPECT_GE(reg.counter("wal/corrupt_records").value(), 1u);
}

TEST(NvmWalUnit, CheckpointTruncatesOnceDrained) {
  obs::Registry reg;
  NvmDevice dev(kDev, nullptr, &reg);
  WriteAheadLog wal(dev, reg);
  sim::Nanos c{};

  ASSERT_EQ(wal.append_data(3, 0, page(4096, 30), c), AppendStatus::kOk);
  ASSERT_EQ(wal.append_data(3, 1, page(4096, 31), c), AppendStatus::kOk);
  wal.maybe_checkpoint(c);  // pages still pending: must be a no-op
  EXPECT_EQ(wal.pending_pages(), 2u);
  EXPECT_GT(wal.live_bytes(), 0u);

  wal.note_drained(3, 0, c);
  wal.note_drained(3, 1, c);
  EXPECT_EQ(wal.pending_pages(), 0u);
  wal.maybe_checkpoint(c);
  EXPECT_EQ(wal.live_bytes(), 0u);
  EXPECT_GE(reg.counter("wal/checkpoints").value(), 1u);

  // Post-checkpoint, the pre-checkpoint frames are residue: the scan stops
  // cleanly at the rewound tail and sees an empty log.
  WriteAheadLog wal2(dev, reg);
  auto rec = wal2.recover();
  EXPECT_EQ(rec.records.size(), 0u);
  EXPECT_FALSE(rec.report.torn_tail);

  // And the log is reusable: new appends land with the advanced seq.
  ASSERT_EQ(wal2.append_data(3, 2, page(4096, 32), c), AppendStatus::kOk);
  WriteAheadLog wal3(dev, reg);
  auto rec3 = wal3.recover();
  ASSERT_EQ(rec3.records.size(), 1u);
  EXPECT_GE(rec3.records[0].seq, 3u);
}

TEST(NvmWalUnit, RingFullBackpressureThenRecovery) {
  obs::Registry reg;
  // Small ring: fits only a couple of page frames above the reserve.
  NvmDevice dev(24 * 1024, nullptr, &reg);
  WriteAheadLog wal(dev, reg);
  sim::Nanos c{};

  int ok = 0;
  AppendStatus last = AppendStatus::kOk;
  for (int i = 0; i < 8 && last == AppendStatus::kOk; ++i) {
    last = wal.append_data(4, static_cast<std::uint64_t>(i), page(4096, 40 + i),
                           c);
    if (last == AppendStatus::kOk) ++ok;
  }
  ASSERT_EQ(last, AppendStatus::kFull);  // typed backpressure, not a crash
  EXPECT_GE(ok, 1);
  EXPECT_TRUE(wal.degraded());
  EXPECT_GE(reg.counter("wal/ring_full").value(), 1u);
  EXPECT_EQ(reg.gauge("wal/degraded").load(), 1);

  // The tiny drain markers fit in the reserve even when data appends don't:
  // the flusher can always make progress toward the checkpoint.
  for (int i = 0; i < ok; ++i) {
    wal.note_drained(4, static_cast<std::uint64_t>(i), c);
  }
  wal.maybe_checkpoint(c);
  EXPECT_FALSE(wal.degraded());
  EXPECT_EQ(reg.gauge("wal/degraded").load(), 0);
  EXPECT_EQ(wal.append_data(4, 9, page(4096, 49), c), AppendStatus::kOk);
}

TEST(NvmWalUnit, DeviceWriteFailDegradesAndProbeClears) {
  obs::Registry reg;
  fault::FaultInjector fi(0x3ad, &reg);
  NvmDevice dev(kDev, &fi, &reg);
  WriteAheadLog wal(dev, reg, &fi);
  sim::Nanos c{};

  fi.arm(kFaultNvmWriteFail, 1.0);
  EXPECT_EQ(wal.append_data(5, 0, page(4096, 50), c), AppendStatus::kIoError);
  EXPECT_TRUE(wal.degraded());
  EXPECT_GE(reg.counter("wal/append_io_errors").value(), 1u);
  // Still failing: the checkpoint's header write doubles as the device
  // probe, and a failed probe keeps the latch set.
  wal.maybe_checkpoint(c);
  EXPECT_TRUE(wal.degraded());

  fi.disarm(kFaultNvmWriteFail);
  wal.maybe_checkpoint(c);
  EXPECT_FALSE(wal.degraded());
  EXPECT_EQ(wal.append_data(5, 0, page(4096, 50), c), AppendStatus::kOk);
}

// ---------------------------------------------------------------- system

core::DpcOptions wal_system_opts(fault::FaultInjector* fi) {
  core::DpcOptions o;
  o.queues = 1;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 64, 8};
  // Disable the opportunistic background drain (poll flushes up to
  // evict_batch pages whenever anything is dirty): these tests need dirty
  // pages to still be pending when fsync arrives.
  o.cache_ctl.evict_batch = 0;
  o.with_dfs = false;
  o.enable_nvm_wal = true;
  o.fault = fi;
  return o;
}

/// The tentpole contract end to end: fsync acks at NVM persistence (fast
/// path, pages still undrained), then host DRAM *and* the DPU die — and the
/// acked bytes come back from the log alone.
TEST(NvmWalSystem, FsyncAcksAtNvmAndReplaysAfterPowerLoss) {
  obs::Registry freg;
  fault::FaultInjector fi(0x11, &freg);
  core::DpcSystem sys(wal_system_opts(&fi));

  const auto ino = sys.create(kvfs::kRootIno, "spine").ino;
  ASSERT_NE(ino, 0u);
  const auto d0 = page(4096, 90);
  const auto d1 = page(4096, 91);
  ASSERT_TRUE(sys.write(ino, 0, d0).ok());
  ASSERT_TRUE(sys.write(ino, 4096, d1).ok());
  ASSERT_TRUE(sys.fsync(ino).ok());

  // The ack came from the log, not the synchronous flush.
  EXPECT_GE(sys.dispatch_stats().wal_fast_acks.load(), 1u);
  ASSERT_NE(sys.wal(), nullptr);
  EXPECT_GE(sys.wal()->pending_pages(), 2u);

  // Power loss on BOTH sides: host cache pages gone, DPU restarted. The
  // only copy of the acked pages is the NVM log.
  sys.wipe_host_cache();
  const auto rep = sys.restart_dpu();
  EXPECT_TRUE(rep.clean());
  EXPECT_GE(rep.fs.wal.applied, 2u);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(sys.read(ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, d0);
  ASSERT_TRUE(sys.read(ino, 4096, out, /*direct=*/true).ok());
  EXPECT_EQ(out, d1);
  // Replay drained the log and checkpointed it empty.
  EXPECT_EQ(sys.wal()->pending_pages(), 0u);
  EXPECT_EQ(sys.wal()->open_intents(), 0u);
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

/// Regression (satellite): when the synchronous flush path fails to write a
/// page down, fsync must NOT ack — the re-queued dirty page means the bytes
/// are not durable. Pre-fix, fsync returned success here.
TEST(NvmWalSystem, SyncFsyncRefusesAckWhileFlushFailedPagesRemain) {
  obs::Registry freg;
  fault::FaultInjector fi(0x5a7, &freg);
  auto opts = wal_system_opts(&fi);
  opts.enable_nvm_wal = false;  // force the synchronous path
  core::DpcSystem sys(opts);

  const auto ino = sys.create(kvfs::kRootIno, "f").ino;
  ASSERT_NE(ino, 0u);
  ASSERT_TRUE(sys.write(ino, 0, page(4096, 60)).ok());

  fi.arm(cache::kFaultFlushWritePage, 1.0);
  const auto f = sys.fsync(ino);
  EXPECT_EQ(f.err, EIO) << "fsync acked with flush-failed pages still dirty";
  fi.disarm(cache::kFaultFlushWritePage);

  EXPECT_TRUE(sys.fsync(ino).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(sys.read(ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, page(4096, 60));
}

/// Degradation ladder, ring-full rung: a log too small for the burst keeps
/// serving — typed kFull inside, synchronous fallback outside, no hang, no
/// lost acked write — and recovers once the flusher drains.
TEST(NvmWalSystem, RingFullDegradesToSyncPathAndRecovers) {
  obs::Registry freg;
  fault::FaultInjector fi(0x4f11, &freg);
  auto opts = wal_system_opts(&fi);
  opts.nvm_log_bytes = 24 * 1024;  // a couple of page frames at most
  core::DpcSystem sys(opts);

  const auto ino = sys.create(kvfs::kRootIno, "burst").ino;
  ASSERT_NE(ino, 0u);
  std::vector<std::vector<std::byte>> pages;
  for (int i = 0; i < 8; ++i) {
    pages.push_back(page(4096, 70 + static_cast<unsigned>(i)));
    ASSERT_TRUE(
        sys.write(ino, static_cast<std::uint64_t>(i) * 4096, pages.back())
            .ok());
    ASSERT_TRUE(sys.fsync(ino).ok()) << "fsync " << i;  // must never wedge
  }
  EXPECT_GE(sys.metrics().counter("wal/ring_full").value(), 1u);
  EXPECT_GE(sys.dispatch_stats().wal_fallbacks.load(), 1u);

  // Every acked fsync survives the power cycle, whichever rung served it.
  sys.wipe_host_cache();
  EXPECT_TRUE(sys.restart_dpu().clean());
  std::vector<std::byte> out(4096);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        sys.read(ino, static_cast<std::uint64_t>(i) * 4096, out, true).ok());
    EXPECT_EQ(out, pages[static_cast<std::size_t>(i)]) << "page " << i;
  }
  // The fallback's flush drained the log: the degraded latch cleared.
  EXPECT_FALSE(sys.wal()->degraded());
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

/// Degradation ladder, NVM-fault rung: a persistently failing device makes
/// every append kIoError; fsync falls back, still acks durably, and the
/// checkpoint probe un-degrades once the device heals.
TEST(NvmWalSystem, NvmFaultFallsBackThenHeals) {
  obs::Registry freg;
  fault::FaultInjector fi(0xdead, &freg);
  core::DpcSystem sys(wal_system_opts(&fi));

  fi.arm(kFaultNvmWriteFail, 1.0);
  const auto ino = sys.create(kvfs::kRootIno, "sick").ino;
  ASSERT_NE(ino, 0u);
  const auto d0 = page(4096, 80);
  ASSERT_TRUE(sys.write(ino, 0, d0).ok());
  ASSERT_TRUE(sys.fsync(ino).ok());
  EXPECT_GE(sys.dispatch_stats().wal_fallbacks.load(), 1u);
  EXPECT_TRUE(sys.wal()->degraded());

  fi.disarm(kFaultNvmWriteFail);
  // First post-heal fsync still takes the fallback (latch set) but its
  // flush's checkpoint probe succeeds; the next one is fast again.
  const auto d1 = page(4096, 81);
  ASSERT_TRUE(sys.write(ino, 0, d1).ok());
  ASSERT_TRUE(sys.fsync(ino).ok());
  EXPECT_FALSE(sys.wal()->degraded());
  const auto fast_before = sys.dispatch_stats().wal_fast_acks.load();
  const auto d2 = page(4096, 82);
  ASSERT_TRUE(sys.write(ino, 0, d2).ok());
  ASSERT_TRUE(sys.fsync(ino).ok());
  EXPECT_GT(sys.dispatch_stats().wal_fast_acks.load(), fast_before);

  sys.wipe_host_cache();
  EXPECT_TRUE(sys.restart_dpu().clean());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(sys.read(ino, 0, out, true).ok());
  EXPECT_EQ(out, d2);
}

/// The journal's intents ride the same log: a namespace op's intent record
/// is WAL-resident, and mount-style recovery replays it from there.
TEST(NvmWalSystem, JournalIntentsRideTheWal) {
  obs::Registry freg;
  fault::FaultInjector fi(0x10a, &freg);
  core::DpcSystem sys(wal_system_opts(&fi));

  const auto ino = sys.create(kvfs::kRootIno, "j").ino;
  ASSERT_NE(ino, 0u);
  EXPECT_GE(sys.metrics().counter("kvfs.journal/wal_appends").value(), 1u);
  EXPECT_GE(sys.metrics().counter("wal/intent_records").value(), 1u);
  // All intents committed: nothing left open, and a restart replays clean.
  EXPECT_EQ(sys.wal()->open_intents(), 0u);
  EXPECT_TRUE(sys.restart_dpu().clean());
  EXPECT_TRUE(kvfs::fsck(sys.kv_store()).clean());
}

}  // namespace
}  // namespace dpc::nvm
