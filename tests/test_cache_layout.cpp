#include "cache/layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/check.hpp"

namespace dpc::cache {
namespace {

TEST(CacheLayout, HeaderInitialized) {
  pcie::MemoryRegion host("host", 64 << 20);
  pcie::RegionAllocator alloc(host);
  CacheGeometry geo{4096, CacheMode::kWrite, 256, 16};
  CacheLayout layout(geo, alloc);

  EXPECT_EQ(host.load<std::uint32_t>(
                layout.header_field(HeaderOffsets::kPageSize)),
            4096u);
  EXPECT_EQ(
      host.load<std::uint32_t>(layout.header_field(HeaderOffsets::kMode)),
      1u);  // write cache
  EXPECT_EQ(
      host.load<std::uint32_t>(layout.header_field(HeaderOffsets::kTotal)),
      256u);
  EXPECT_EQ(
      host.load<std::uint32_t>(layout.header_field(HeaderOffsets::kFree)),
      256u);
  EXPECT_EQ(layout.entries_per_bucket(), 16u);
}

TEST(CacheLayout, BucketListsLinkTheirEntries) {
  pcie::MemoryRegion host("host", 64 << 20);
  pcie::RegionAllocator alloc(host);
  CacheGeometry geo{4096, CacheMode::kWrite, 64, 8};
  CacheLayout layout(geo, alloc);

  for (std::uint32_t b = 0; b < geo.buckets; ++b) {
    std::uint32_t idx = layout.bucket_head_entry(b);
    std::set<std::uint32_t> seen;
    while (idx != kEndOfList) {
      EXPECT_TRUE(seen.insert(idx).second) << "cycle in bucket " << b;
      const auto e = host.load<CacheEntry>(layout.entry_off(idx));
      EXPECT_EQ(static_cast<PageStatus>(e.status), PageStatus::kFree);
      idx = e.next;
    }
    EXPECT_EQ(seen.size(), layout.entries_per_bucket());
  }
}

TEST(CacheLayout, EntryAndPageCorrespond) {
  // §3.3: "finding the position of the cache entry is equivalent to
  // locating the cache page" — entry i ↔ page i, both computable.
  pcie::MemoryRegion host("host", 64 << 20);
  pcie::RegionAllocator alloc(host);
  CacheGeometry geo{4096, CacheMode::kWrite, 128, 8};
  CacheLayout layout(geo, alloc);
  for (std::uint32_t i : {0u, 1u, 64u, 127u}) {
    EXPECT_EQ(layout.entry_off(i) - layout.entry_off(0),
              std::uint64_t{i} * sizeof(CacheEntry));
    EXPECT_EQ(layout.page_off(i) - layout.page_off(0),
              std::uint64_t{i} * geo.page_size);
    EXPECT_EQ(layout.page_off(i) % geo.page_size, 0u);
  }
  EXPECT_THROW(layout.entry_off(128), dpc::CheckFailure);
}

TEST(CacheLayout, HashCoversAllBuckets) {
  pcie::MemoryRegion host("host", 64 << 20);
  pcie::RegionAllocator alloc(host);
  CacheGeometry geo{4096, CacheMode::kWrite, 256, 32};
  CacheLayout layout(geo, alloc);
  std::set<std::uint32_t> buckets;
  for (std::uint64_t ino = 1; ino <= 8; ++ino)
    for (std::uint64_t lpn = 0; lpn < 64; ++lpn)
      buckets.insert(layout.bucket_of(ino, lpn));
  EXPECT_EQ(buckets.size(), 32u);  // all buckets reachable
  // Deterministic.
  EXPECT_EQ(layout.bucket_of(7, 9), layout.bucket_of(7, 9));
}

TEST(CacheLayout, GeometryValidation) {
  pcie::MemoryRegion host("host", 64 << 20);
  pcie::RegionAllocator alloc(host);
  // Buckets must divide pages evenly (§3.3: equal-sized buckets).
  CacheGeometry bad{4096, CacheMode::kWrite, 100, 32};
  EXPECT_THROW(CacheLayout(bad, alloc), dpc::CheckFailure);
  CacheGeometry bad_page{1000, CacheMode::kWrite, 64, 8};
  EXPECT_THROW(CacheLayout(bad_page, alloc), dpc::CheckFailure);
}

TEST(CacheLayout, ReadLockWordEncoding) {
  EXPECT_EQ(read_lock_word(1) & 3u,
            static_cast<std::uint32_t>(LockState::kRead));
  EXPECT_TRUE(is_read_locked(read_lock_word(5)));
  EXPECT_EQ(read_lock_holders(read_lock_word(5)), 5u);
  EXPECT_FALSE(is_read_locked(0));
  EXPECT_FALSE(is_read_locked(static_cast<std::uint32_t>(LockState::kWrite)));
}

TEST(CacheLayout, FootprintAccounts) {
  pcie::MemoryRegion host("host", 64 << 20);
  pcie::RegionAllocator alloc(host);
  CacheGeometry geo{4096, CacheMode::kWrite, 1024, 64};
  CacheLayout layout(geo, alloc);
  // At least pages + meta.
  EXPECT_GE(layout.footprint(),
            1024ull * 4096 + 1024ull * sizeof(CacheEntry));
}

}  // namespace
}  // namespace dpc::cache
