// Gray-failure tolerance unit tests (DESIGN.md §5l): fail-slow injection
// determinism, the per-peer health scoreboard (EWMA + streaming quantile +
// adaptive deadline + quarantine round trip), hedged-read correctness
// (cancelled losers charge nothing, reconstructs are bit-identical, the
// token budget caps speculation), and the KV integrity/liveness split
// (corrupt answers never open the circuit breaker).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dfs/backend.hpp"
#include "ec/reed_solomon.hpp"
#include "fault/health.hpp"
#include "fault/injector.hpp"
#include "fault/retry.hpp"
#include "kv/kv_store.hpp"
#include "kv/remote.hpp"
#include "sim/rng.hpp"

namespace dpc {
namespace {

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

// ------------------------------------------------------- slow injection

TEST(TailSlowInjection, DeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    fault::FaultInjector fi(seed);
    fault::FaultInjector::SlowSpec s;
    s.multiplier = 2.0;
    s.stall = sim::micros(100.0);
    s.stall_probability = 0.5;
    fi.arm_slow("t/slow", s);
    std::vector<std::int64_t> out;
    for (int i = 0; i < 200; ++i)
      out.push_back(fi.slow_penalty("t/slow", 0, sim::micros(10.0)).ns);
    return out;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(TailSlowInjection, LimpingPeerIsKeyed) {
  fault::FaultInjector fi(4);
  fault::FaultInjector::SlowSpec s;
  s.multiplier = 10.0;
  s.peer = 3;
  fi.arm_slow("t/limp", s);
  const sim::Nanos base = sim::micros(10.0);
  // Only the limping peer pays; the penalty is the multiplier's *excess*.
  EXPECT_EQ(fi.slow_penalty("t/limp", 3, base).ns, 9 * base.ns);
  EXPECT_EQ(fi.slow_penalty("t/limp", 2, base).ns, 0);
  EXPECT_EQ(fi.slow_penalty("t/unarmed", 3, base).ns, 0);
  fi.disarm_slow("t/limp");
  EXPECT_FALSE(fi.slow_armed("t/limp"));
  EXPECT_EQ(fi.slow_penalty("t/limp", 3, base).ns, 0);
}

// ------------------------------------------------------- health board

TEST(TailHealth, EwmaAndQuantileTrack) {
  fault::HealthBoard hb("t", 4);
  EXPECT_EQ(hb.ewma(0).ns, 0);
  EXPECT_EQ(hb.deadline(), hb.config().deadline_ceiling);  // unmeasured
  for (int i = 0; i < 64; ++i) hb.record(0, sim::micros(10.0), true);
  EXPECT_EQ(hb.ewma(0).ns, sim::micros(10.0).ns);
  EXPECT_EQ(hb.p99(0).ns, sim::micros(10.0).ns);
  // A regime shift pulls the EWMA toward the new level and eventually
  // rolls the old samples out of the quantile window.
  for (int i = 0; i < 256; ++i) hb.record(0, sim::micros(20.0), true);
  EXPECT_NEAR(static_cast<double>(hb.ewma(0).ns),
              static_cast<double>(sim::micros(20.0).ns), 2.0);
  EXPECT_EQ(hb.p99(0).ns, sim::micros(20.0).ns);
}

TEST(TailHealth, AdaptiveDeadlineScalesCohortP99) {
  fault::HealthBoard hb("t", 4);
  for (int p = 0; p < 4; ++p)
    for (int i = 0; i < 32; ++i) hb.record(p, sim::micros(10.0), true);
  // 3 × 10 µs is below the floor: clamp up.
  EXPECT_EQ(hb.deadline(), hb.config().deadline_floor);
  for (int p = 0; p < 4; ++p)
    for (int i = 0; i < 256; ++i) hb.record(p, sim::micros(100.0), true);
  EXPECT_EQ(hb.deadline().ns, 3 * sim::micros(100.0).ns);
  EXPECT_EQ(hb.hedge_delay().ns,
            static_cast<std::int64_t>(1.5 * sim::micros(100.0).ns));
}

TEST(TailHealth, CensoredTimeoutsDoNotInflateDeadline) {
  // Regression: a timeout is recorded at the deadline that cut it. Feeding
  // that censored value into the quantile window would let the deadline
  // chase its own output (p99 → deadline → 3× deadline → …) until the
  // stalls it exists to cut fit underneath it.
  fault::HealthBoard hb("t", 4);
  for (int p = 0; p < 4; ++p)
    for (int i = 0; i < 64; ++i) hb.record(p, sim::micros(60.0), true);
  const sim::Nanos before = hb.deadline();
  EXPECT_EQ(before.ns, 3 * sim::micros(60.0).ns);
  for (int i = 0; i < 5; ++i) hb.record(0, before, false);
  EXPECT_EQ(hb.deadline(), before);
  EXPECT_EQ(hb.p99(0).ns, sim::micros(60.0).ns);
  // …but the strikes are very much counted.
  hb.record(0, before, false);  // 6th consecutive → quarantined
  EXPECT_TRUE(hb.quarantined(0));
}

TEST(TailHealth, AdaptiveDeadlineReplacesFixedKvTimeout) {
  // Identical outage, identical retry/backoff salts; the only difference
  // is what each failed attempt waits: the health board's adaptive
  // deadline (150 µs floor) vs the fixed kKvOpTimeout.
  const auto run = [](bool health) {
    obs::Registry reg;
    fault::FaultInjector fi(11, &reg);
    kv::KvStore store;
    fault::RetryPolicy rp;
    rp.max_attempts = 6;
    kv::RemoteKv kv(store, &fi, &reg, rp, {});
    if (health) kv.enable_health();
    for (int i = 0; i < 64; ++i) EXPECT_TRUE(kv.get("warm").ok());
    fi.arm(kv::RemoteKv::kFaultSite, 1.0);
    const auto r = kv.get("warm");
    EXPECT_EQ(r.err, kv::RemoteErr::kTimeout);
    return r.cost;
  };
  const sim::Nanos with = run(true);
  const sim::Nanos without = run(false);
  // Warm p99 is ~25 µs, so 3× clamps up to the 150 µs floor; every one of
  // the 6 attempts waits 350 µs less than the fixed 500 µs timeout.
  EXPECT_EQ(without.ns - with.ns,
            6 * (sim::calib::kKvOpTimeout.ns - sim::micros(150.0).ns));
}

TEST(TailQuarantine, RoundTrip) {
  obs::Registry reg;
  fault::HealthConfig cfg;
  cfg.slow_strikes = 3;
  cfg.probe_interval = 4;
  cfg.reintegrate_successes = 2;
  fault::HealthBoard hb("t", 2, cfg, &reg);
  for (int p = 0; p < 2; ++p)
    for (int i = 0; i < 16; ++i) hb.record(p, sim::micros(10.0), true);
  EXPECT_GT(hb.score(0), 0.0);

  for (int i = 0; i < 3; ++i) hb.record(0, sim::micros(150.0), false);
  EXPECT_TRUE(hb.quarantined(0));
  EXPECT_EQ(hb.quarantines(), 1u);
  EXPECT_EQ(hb.score(0), 0.0);
  EXPECT_EQ(hb.ranked().back(), 0);  // quarantined sorts last

  // Every 4th suppressed access probes; the rest are routed around.
  EXPECT_FALSE(hb.allow(0));
  EXPECT_FALSE(hb.allow(0));
  EXPECT_FALSE(hb.allow(0));
  EXPECT_TRUE(hb.allow(0));  // probe
  hb.record(0, sim::micros(150.0), false);  // probe failed: streak resets

  for (int i = 0; i < 3; ++i) EXPECT_FALSE(hb.allow(0));
  EXPECT_TRUE(hb.allow(0));
  hb.record(0, sim::micros(12.0), true);  // healthy probe 1/2
  EXPECT_TRUE(hb.quarantined(0));         // not yet
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(hb.allow(0));
  EXPECT_TRUE(hb.allow(0));
  hb.record(0, sim::micros(12.0), true);  // healthy probe 2/2 → back in
  EXPECT_FALSE(hb.quarantined(0));
  EXPECT_EQ(hb.reintegrations(), 1u);
  EXPECT_TRUE(hb.allow(0));
  // The limp-era window was dropped: stats restart from the probe sample.
  EXPECT_EQ(hb.p99(0).ns, sim::micros(12.0).ns);
  EXPECT_EQ(reg.counter("health/t/quarantines").value(), 1u);
  EXPECT_EQ(reg.counter("health/t/reintegrations").value(), 1u);
  EXPECT_GE(reg.counter("health/t/probes").value(), 3u);
}

// ------------------------------------------------------- hedged reads

struct HedgeRig {
  obs::Registry reg;
  fault::FaultInjector fi{7, &reg};
  dfs::DataServers ds{sim::calib::kDataServers, &fi, &reg};
  ec::ReedSolomon rs{4, 2};
  dfs::FileMeta meta;
  std::vector<std::byte> data = bytes(32 * 1024, 1);

  HedgeRig() {
    ds.enable_health();
    meta.ino = 5;
    meta.size = data.size();  // one RS(4,2) stripe, 8 KiB units
    dfs::OpProfile wp;
    EXPECT_TRUE(dfs::striped_write(ds, rs, meta, 0, data, wp));
    // Warm the scoreboard so deadlines/hedge delays are measured, not the
    // generous unmeasured ceiling.
    std::vector<std::byte> buf(data.size());
    dfs::OpProfile warm;
    for (int i = 0; i < 32; ++i)
      EXPECT_TRUE(dfs::hedged_striped_read(ds, rs, meta, 0, buf, warm));
    EXPECT_EQ(std::memcmp(buf.data(), data.data(), data.size()), 0);
  }
};

TEST(TailHedge, CancelledLosersChargeNothing) {
  HedgeRig rig;
  // One data server stalls every access by 80 µs: within the deadline, but
  // far past the hedge delay — the speculative-parity case.
  const int victim = rig.ds.server_of(rig.meta.ino, 0, 0);
  fault::FaultInjector::SlowSpec s;
  s.stall = sim::micros(80.0);
  s.stall_probability = 1.0;
  s.peer = victim;
  rig.fi.arm_slow(dfs::kFaultDsSlow, s);

  std::vector<std::byte> buf(rig.data.size());
  dfs::OpProfile prof;
  bool reconstructed = false;
  ASSERT_TRUE(dfs::hedged_striped_read(rig.ds, rig.rs, rig.meta, 0, buf,
                                       prof, &reconstructed));
  // First k clean shards win (3 primaries + the hedged parity); the stripe
  // is served via RS reconstruction, bit-identical to the original.
  EXPECT_TRUE(reconstructed);
  EXPECT_EQ(std::memcmp(buf.data(), rig.data.data(), rig.data.size()), 0);
  // The stalled loser was cancelled before its payload: exactly k shard
  // reads are charged, and the critical path beats the stalled arrival
  // (~113 µs) — it is hedge delay (~49 µs) + one clean shard (~33 µs).
  EXPECT_EQ(prof.ds_ops, 4u);
  EXPECT_LT(prof.crit.ns, sim::micros(100.0).ns);
  const auto& hc = rig.ds.hedge_counters();
  EXPECT_GE(hc.issued->value(), 1u);
  EXPECT_GE(hc.won->value(), 1u);
  EXPECT_GE(hc.cancelled->value(), 1u);
  EXPECT_EQ(hc.wasted->value(), 0u);
}

TEST(TailHedge, QuarantineRoundTripServesBitIdentical) {
  HedgeRig rig;
  // ×10 limp: every access to the victim blows the adaptive deadline, so
  // reads strike it into quarantine and route around via reconstruction.
  const int victim = rig.ds.server_of(rig.meta.ino, 0, 0);
  fault::FaultInjector::SlowSpec s;
  s.multiplier = 10.0;
  s.peer = victim;
  rig.fi.arm_slow(dfs::kFaultDsSlow, s);

  std::vector<std::byte> buf(rig.data.size());
  const int strikes = rig.ds.health()->config().slow_strikes;
  for (int i = 0; i < strikes; ++i) {
    dfs::OpProfile p;
    ASSERT_TRUE(dfs::hedged_striped_read(rig.ds, rig.rs, rig.meta, 0, buf, p));
    EXPECT_EQ(std::memcmp(buf.data(), rig.data.data(), rig.data.size()), 0);
  }
  EXPECT_TRUE(rig.ds.health()->quarantined(victim));
  EXPECT_EQ(rig.ds.health()->quarantines(), 1u);

  // Quarantined: the victim is skipped outright (no deadline paid) and the
  // covering shards launch immediately — latency back at healthy levels.
  dfs::OpProfile q;
  ASSERT_TRUE(dfs::hedged_striped_read(rig.ds, rig.rs, rig.meta, 0, buf, q));
  EXPECT_EQ(std::memcmp(buf.data(), rig.data.data(), rig.data.size()), 0);
  EXPECT_LT(q.crit.ns, sim::micros(50.0).ns);

  // Cure the limp; reintegration probes bring the victim back.
  rig.fi.disarm_slow(dfs::kFaultDsSlow);
  for (int i = 0; i < 40 && rig.ds.health()->quarantined(victim); ++i) {
    dfs::OpProfile p;
    ASSERT_TRUE(dfs::hedged_striped_read(rig.ds, rig.rs, rig.meta, 0, buf, p));
    EXPECT_EQ(std::memcmp(buf.data(), rig.data.data(), rig.data.size()), 0);
  }
  EXPECT_FALSE(rig.ds.health()->quarantined(victim));
  EXPECT_EQ(rig.ds.health()->reintegrations(), 1u);
}

TEST(TailHedge, BudgetCapsSpeculation) {
  fault::HealthConfig cfg;
  cfg.hedge_budget = 0.1;
  cfg.hedge_token_cap = 2.0;
  fault::HealthBoard hb("t", 4, cfg);
  EXPECT_FALSE(hb.try_hedge(1));  // nothing earned yet
  hb.note_primary(10);            // earns exactly one token
  EXPECT_TRUE(hb.try_hedge(1));
  EXPECT_FALSE(hb.try_hedge(1));
  hb.note_primary(1000);  // a long healthy stretch banks only the cap
  EXPECT_TRUE(hb.try_hedge(2));
  EXPECT_FALSE(hb.try_hedge(1));

  fault::HealthConfig off;
  off.hedge_budget = 0.0;
  fault::HealthBoard none("t2", 4, off);
  none.note_primary(1000);
  EXPECT_FALSE(none.try_hedge(1));  // budget zero disables hedging outright
}

// ------------------------------------------------------- KV integrity

TEST(TailKvCorrupt, NoBreakerOpensOnIntegrityErrors) {
  obs::Registry reg;
  fault::FaultInjector fi(3, &reg);
  kv::KvStore store;
  store.attach_fault(&fi);
  fault::RetryPolicy rp;
  rp.max_attempts = 3;
  fault::CircuitBreaker::Config bc;
  bc.failure_threshold = 4;
  kv::RemoteKv kv(store, &fi, &reg, rp, bc);
  kv.enable_health();
  const auto val = bytes(128, 2);

  // Rot the stored value (bit rot strikes the cell at write time); every
  // subsequent read then returns a corrupt value. The wire and the server
  // answer on time — this is an integrity error, not a liveness one, and
  // must open neither the breaker nor the quarantine.
  fi.arm(kv::kFaultKvBitRot, 1.0);
  ASSERT_TRUE(kv.put("k", val).ok());
  for (int i = 0; i < 20; ++i) {
    const auto r = kv.get("k");
    EXPECT_EQ(r.err, kv::RemoteErr::kCorrupt);
  }
  EXPECT_EQ(kv.breaker_state(), fault::CircuitBreaker::State::kClosed);
  EXPECT_FALSE(kv.health()->quarantined(0));
  EXPECT_EQ(reg.counter("kv.remote/corrupt_reads").value(), 20u);
  EXPECT_EQ(reg.counter("breaker/opens").value(), 0u);
  fi.disarm(kv::kFaultKvBitRot);

  // A real outage must still open it — integrity tolerance must not have
  // blinded the liveness signal.
  fi.arm(kv::RemoteKv::kFaultSite, 1.0);
  (void)kv.get("k");
  (void)kv.get("k");
  EXPECT_EQ(kv.breaker_state(), fault::CircuitBreaker::State::kOpen);
}

}  // namespace
}  // namespace dpc
