// Per-tenant QoS: wire-format tenant id, token-bucket admission, DRR
// weighted fair scheduling, class-ordered shedding, scrubber demotion
// under overload, and the end-to-end kThrottled retry path through
// DpcSystem (admission rejection honored with the device's retry-after
// hint as a backoff floor).
#include "dpu/qos.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dpc_system.hpp"
#include "dpu/scrubber.hpp"
#include "kv/kv_store.hpp"
#include "nvme/spec.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace dpc::dpu {
namespace {

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

StagedCmd staged(nvme::TenantId tenant, std::uint32_t charge,
                 sim::Nanos ingest_vt = {}) {
  StagedCmd c;
  c.tenant = tenant;
  c.charge = charge;
  c.ingest_vt = ingest_vt;
  return c;
}

// ------------------------------------------------------------ wire format

TEST(QosSpec, TenantRoundTripsThroughSqe) {
  nvme::NvmeFsCmd cmd;
  cmd.tenant = 5;
  cmd.inline_op = nvme::InlineOp::kWrite;
  cmd.inode = 42;
  cmd.write_len = 0x00ABCDEF;  // full 24-bit payload field, no bleed
  const nvme::Sqe sqe = nvme::encode_nvme_fs(cmd);
  EXPECT_EQ(nvme::tenant_of(sqe), 5);
  const nvme::NvmeFsCmd back = nvme::decode_nvme_fs(sqe);
  EXPECT_EQ(back.tenant, 5);
  EXPECT_EQ(back.write_len, 0x00ABCDEFu);
  EXPECT_EQ(back.inode, 42u);
}

TEST(QosSpec, ThrottledIsRetryable) {
  EXPECT_TRUE(nvme::is_retryable(nvme::Status::kThrottled));
  // The integrity status stays non-retryable: throttling must not have
  // loosened that contract.
  EXPECT_FALSE(nvme::is_retryable(nvme::Status::kDataIntegrityError));
}

// -------------------------------------------------------------- admission

TEST(QosAdmission, TokenBucketThrottlesThenRefillsInModelledTime) {
  obs::Registry reg;
  QosConfig cfg;
  cfg.enabled = true;
  cfg.tenants[1].rate_bytes_per_sec = 1'000'000;  // 1 MB/s
  cfg.tenants[1].burst_bytes = 8192;
  QosManager qos(cfg, reg);

  // Buckets start full: the first burst is the configured burst.
  EXPECT_TRUE(qos.admit(1, 8192).ok);
  const auto denied = qos.admit(1, 4096);
  EXPECT_FALSE(denied.ok);
  // Hint covers the deficit at the configured rate: 4096 B at 1 MB/s is
  // ~4.1 ms, well above the floor.
  EXPECT_GE(denied.retry_after.ns, cfg.min_retry_after.ns);
  EXPECT_NEAR(static_cast<double>(denied.retry_after.ns), 4.096e6, 1e5);
  EXPECT_EQ(reg.counter("qos/throttled").load(), 1u);
  EXPECT_EQ(reg.counter("qos/t1/throttled").load(), 1u);

  // Refill happens via advance() — modelled time, no wall clock.
  qos.advance(sim::millis(5.0));
  EXPECT_TRUE(qos.admit(1, 4096).ok);
  // ...but never above the burst cap.
  qos.advance(sim::millis(10'000.0));
  EXPECT_TRUE(qos.admit(1, 8192).ok);
  EXPECT_FALSE(qos.admit(1, 8192).ok);
}

TEST(QosAdmission, GlobalCapsRejectBestEffortButExemptGuaranteed) {
  obs::Registry reg;
  QosConfig cfg;
  cfg.enabled = true;
  cfg.max_queued_cmds = 2;
  cfg.overload_highwater = 3;
  cfg.tenants[1].cls = TenantClass::kGuaranteed;
  QosManager qos(cfg, reg);

  EXPECT_TRUE(qos.admit(0, 4096).ok);
  EXPECT_TRUE(qos.admit(0, 4096).ok);
  EXPECT_FALSE(qos.overloaded());
  const auto denied = qos.admit(0, 4096);
  EXPECT_FALSE(denied.ok);
  EXPECT_EQ(denied.retry_after.ns, cfg.min_retry_after.ns);

  // The guaranteed tenant sails past the global cap — the cap exists to
  // protect it — and its staging still counts toward overload.
  EXPECT_TRUE(qos.admit(1, 4096).ok);
  EXPECT_EQ(qos.queued(), 3);
  EXPECT_TRUE(qos.overloaded());
  EXPECT_EQ(reg.gauge("qos/queued_cmds").load(), 3);

  qos.on_dispatch(0, 4096);
  qos.on_dispatch(0, 4096);
  qos.on_dispatch(1, 4096);
  EXPECT_EQ(qos.queued(), 0);
  EXPECT_FALSE(qos.overloaded());
  EXPECT_EQ(reg.gauge("qos/inflight_bytes").load(), 0);
  EXPECT_EQ(reg.counter("qos/admitted").load(), 3u);
  EXPECT_EQ(reg.counter("qos/t1/admitted").load(), 1u);
}

// ------------------------------------------------------------- scheduling

TEST(QosScheduler, DrrSharesDispatchByWeight) {
  obs::Registry reg;
  QosConfig cfg;
  cfg.enabled = true;
  cfg.quantum_bytes = 16 * 1024;
  cfg.tenants[1].weight = 3;
  cfg.tenants[2].weight = 1;
  QosManager qos(cfg, reg);
  DrrScheduler sched(&qos);

  for (int i = 0; i < 40; ++i) sched.push(staged(1, 4096));
  for (int i = 0; i < 40; ++i) sched.push(staged(2, 4096));
  ASSERT_EQ(sched.size(), 80u);

  int from_t1 = 0;
  int from_t2 = 0;
  for (int i = 0; i < 16; ++i) {
    const auto cmd = sched.pop();
    ASSERT_TRUE(cmd.has_value());
    if (cmd->tenant == 1) ++from_t1;
    if (cmd->tenant == 2) ++from_t2;
  }
  // quantum × weight deficits: 12 commands of 4 KB per visit for weight 3,
  // 4 for weight 1 — a 3:1 split, work-conserving and exact here.
  EXPECT_EQ(from_t1, 12);
  EXPECT_EQ(from_t2, 4);

  // Drain the rest; nobody starves and nothing is lost.
  while (sched.pop().has_value()) {
  }
  EXPECT_TRUE(sched.empty());
}

TEST(QosScheduler, GuaranteedClassPreemptsWeakerClassesRegardlessOfWeight) {
  obs::Registry reg;
  QosConfig cfg;
  cfg.enabled = true;
  cfg.tenants[1].cls = TenantClass::kGuaranteed;
  cfg.tenants[1].weight = 1;
  cfg.tenants[2].cls = TenantClass::kBackground;
  cfg.tenants[2].weight = 64;  // weight cannot buy past a stronger class
  QosManager qos(cfg, reg);
  DrrScheduler sched(&qos);

  // Background work staged first and heavily weighted…
  for (int i = 0; i < 8; ++i) sched.push(staged(2, 4096));
  sched.push(staged(1, 4096));
  // …yet the guaranteed command dispatches next: classes are strict
  // priorities, weights only share bandwidth within a class.
  const auto first = sched.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tenant, 1);

  // With the guaranteed queue empty the background backlog drains; a
  // late-arriving guaranteed command again jumps it.
  EXPECT_EQ(sched.pop()->tenant, 2);
  sched.push(staged(1, 4096));
  EXPECT_EQ(sched.pop()->tenant, 1);
  while (sched.pop().has_value()) {
  }
  EXPECT_TRUE(sched.empty());
}

TEST(QosScheduler, ShedsBackgroundBeforeBestEffortNeverGuaranteed) {
  obs::Registry reg;
  QosConfig cfg;
  cfg.enabled = true;
  cfg.tenants[1].cls = TenantClass::kGuaranteed;
  cfg.tenants[2].cls = TenantClass::kBestEffort;
  cfg.tenants[3].cls = TenantClass::kBackground;
  QosManager qos(cfg, reg);
  DrrScheduler sched(&qos);

  // All three staged at vt=0, all equally stale.
  sched.push(staged(1, 4096));
  sched.push(staged(2, 4096));
  sched.push(staged(3, 4096));

  const sim::Nanos now = sim::millis(10.0);
  const sim::Nanos max_delay = sim::millis(1.0);
  auto first = sched.shed_stale(now, max_delay);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tenant, 3) << "background sheds first";
  auto second = sched.shed_stale(now, max_delay);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tenant, 2) << "then best-effort";
  EXPECT_FALSE(sched.shed_stale(now, max_delay).has_value())
      << "guaranteed is never shed";
  const auto survivor = sched.pop();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->tenant, 1);
}

TEST(QosScheduler, FifoWithoutManagerKeepsOrderAndNeverSheds) {
  DrrScheduler sched(nullptr);
  sched.push(staged(2, 4096, sim::Nanos{0}));
  sched.push(staged(1, 65536, sim::Nanos{0}));
  sched.push(staged(2, 4096, sim::Nanos{0}));
  EXPECT_FALSE(
      sched.shed_stale(sim::millis(100.0), sim::Nanos{1}).has_value());
  EXPECT_EQ(sched.pop()->tenant, 2);
  EXPECT_EQ(sched.pop()->tenant, 1);
  EXPECT_EQ(sched.pop()->tenant, 2);
  EXPECT_FALSE(sched.pop().has_value());
}

// ---------------------------------------------- degradation: scrub yields

TEST(QosDegradation, ScrubberYieldsWhileOverloadedAndResumesAfter) {
  obs::Registry reg;
  QosConfig cfg;
  cfg.enabled = true;
  cfg.overload_highwater = 0;  // overloaded() from the first probe on
  QosManager qos(cfg, reg);

  kv::KvStore kv;
  kv.put("scrub-me", bytes(4096, 0xA));
  ASSERT_TRUE(kv.corrupt_value("scrub-me", 17));

  ScrubberConfig scfg;
  scfg.items_per_pass = 64;
  scfg.pace = sim::nanos(0);
  Scrubber scrub(scfg, reg);
  scrub.attach_kv(&kv);
  scrub.attach_qos(&qos);

  // Every due pass is surrendered while the admission controller reports
  // overload; nothing is scanned and the pass is not rescheduled away.
  EXPECT_EQ(scrub.poll(), 0);
  EXPECT_EQ(scrub.poll(), 0);
  EXPECT_EQ(reg.counter("scrub/yields").load(), 2u);
  EXPECT_EQ(reg.counter("scrub/scanned").load(), 0u);

  // Pressure gone (no manager): the very next poll runs a full pass and
  // still finds the damage — yielding deferred work, never dropped it.
  scrub.attach_qos(nullptr);
  EXPECT_GT(scrub.poll(), 0);
  EXPECT_EQ(reg.counter("scrub/yields").load(), 2u);
  EXPECT_EQ(scrub.totals().detected, 1u);
}

// ----------------------------------------------------- end-to-end system

core::DpcOptions qos_opts() {
  core::DpcOptions o;
  o.queues = 1;
  o.queue_depth = 8;
  o.max_io = 128 * 1024;
  o.enable_cache = false;
  o.with_dfs = false;
  o.qos.enabled = true;
  return o;
}

TEST(QosSystem, ThrottledOpRetriesWithDeviceHintThenFails) {
  core::DpcOptions o = qos_opts();
  // Tenant 0 gets a bucket sized for a handful of commands: the first ops
  // drain it, and refill (4096 B per modelled second, advanced only by
  // dispatched service costs) is far slower than the retry loop, so once
  // throttled the attempts exhaust deterministically.
  o.qos.tenants[0].rate_bytes_per_sec = 4096;
  o.qos.tenants[0].burst_bytes = 64 * 1024;
  // A large hint floor makes the honored backoff unmistakable next to the
  // policy's µs-scale exponential backoff.
  o.qos.min_retry_after = sim::millis(50.0);
  core::DpcSystem sys(o);
  core::DpcSystem::set_thread_tenant(0);

  const auto c = sys.create(kvfs::kRootIno, "f");
  ASSERT_TRUE(c.ok());
  const auto data = bytes(8192, 0xB);

  core::Io failed{};
  bool saw_success = false;
  for (int i = 0; i < 20 && failed.err == 0; ++i) {
    const auto w = sys.write(c.ino, 0, data, /*direct=*/true);
    if (w.ok())
      saw_success = true;
    else
      failed = w;
  }
  EXPECT_TRUE(saw_success) << "bucket admits at least the first write";
  ASSERT_NE(failed.err, 0) << "bucket never throttled in 20 writes";

  obs::Registry& reg = sys.metrics();
  EXPECT_GT(reg.counter("qos/throttled").load(), 0u);
  EXPECT_GT(reg.counter("qos/t0/throttled").load(), 0u);
  EXPECT_GT(reg.counter("retry/throttled").load(), 0u);
  // The retry-after hint is a backoff *floor*: every throttled attempt
  // waits ≥ min_retry_after (50 ms here), so the failed op's three
  // inter-attempt backoffs dwarf the policy's µs-scale exponential curve —
  // the cost proves the device hint was honored.
  EXPECT_GE(failed.cost.ns, sim::millis(120.0).ns);
  core::DpcSystem::set_thread_tenant(0);
}

TEST(QosSystem, PerTenantMetricScopingFollowsThreadTenant) {
  core::DpcSystem sys(qos_opts());
  obs::Registry& reg = sys.metrics();
  const std::uint64_t t0_before = reg.counter("qos/t0/ops").load();

  core::DpcSystem::set_thread_tenant(3);
  EXPECT_EQ(core::DpcSystem::thread_tenant(), 3);
  const auto c = sys.create(kvfs::kRootIno, "t3-file");
  ASSERT_TRUE(c.ok());
  const auto data = bytes(8192, 0xC);
  ASSERT_TRUE(sys.write(c.ino, 0, data, /*direct=*/true).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(sys.read(c.ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, data);
  core::DpcSystem::set_thread_tenant(0);

  EXPECT_GE(reg.counter("qos/t3/ops").load(), 3u)
      << "create+write+read all scoped to tenant 3";
  EXPECT_GE(reg.histogram("qos/t3/latency_ns").count(), 3u);
  EXPECT_EQ(reg.counter("qos/t0/ops").load(), t0_before)
      << "tenant 0 saw none of tenant 3's traffic";
}

}  // namespace
}  // namespace dpc::dpu
