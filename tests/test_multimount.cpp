// Several DPC mounts (application servers) sharing one disaggregated KV
// store — the paper's diskless deployment. Namespace and data written by
// one mount must be visible to the others, and allocation must never
// collide across mounts.
#include <gtest/gtest.h>

#include <thread>

#include "core/dpc_system.hpp"
#include "kvfs/fsck.hpp"
#include "sim/rng.hpp"

namespace dpc::core {
namespace {

DpcOptions mount_opts(kv::KvStore* store) {
  DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = 64 * 1024;
  o.with_dfs = false;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 64, 8};
  o.shared_store = store;
  // Cross-mount visibility requires bypassing the per-mount caches for the
  // checks below; tests drop caches explicitly where needed.
  return o;
}

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

TEST(MultiMount, NamespaceVisibleAcrossMounts) {
  kv::KvStore store;
  DpcSystem a(mount_opts(&store));
  DpcSystem b(mount_opts(&store));

  const auto dir = a.mkdir(kvfs::kRootIno, "shared");
  ASSERT_TRUE(dir.ok());
  const auto f = a.create(dir.ino, "hello");
  ASSERT_TRUE(f.ok());
  const auto data = bytes(8192, 1);
  ASSERT_TRUE(a.write(f.ino, 0, data, /*direct=*/true).ok());

  // Mount b sees the namespace and the bytes.
  const auto found = b.resolve("/shared/hello");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.ino, f.ino);
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(b.read(found.ino, 0, out, /*direct=*/true).ok());
  EXPECT_EQ(out, data);
}

TEST(MultiMount, AllocationNeverCollides) {
  kv::KvStore store;
  DpcSystem a(mount_opts(&store));
  DpcSystem b(mount_opts(&store));

  std::vector<std::uint64_t> inos;
  for (int i = 0; i < 20; ++i) {
    const auto fa = a.create(kvfs::kRootIno, "a" + std::to_string(i));
    const auto fb = b.create(kvfs::kRootIno, "b" + std::to_string(i));
    ASSERT_TRUE(fa.ok());
    ASSERT_TRUE(fb.ok());
    inos.push_back(fa.ino);
    inos.push_back(fb.ino);
  }
  std::sort(inos.begin(), inos.end());
  EXPECT_EQ(std::adjacent_find(inos.begin(), inos.end()), inos.end())
      << "duplicate inode numbers across mounts";
}

TEST(MultiMount, ConcurrentMountsStayConsistent) {
  kv::KvStore store;
  DpcSystem a(mount_opts(&store));
  DpcSystem b(mount_opts(&store));
  std::atomic<int> errors{0};
  auto churn = [&errors](DpcSystem& sys, int id) {
    for (int i = 0; i < 40; ++i) {
      const auto name = "m" + std::to_string(id) + "-" + std::to_string(i);
      const auto c = sys.create(kvfs::kRootIno, name);
      if (!c.ok()) {
        ++errors;
        continue;
      }
      if (!sys.write(c.ino, 0, bytes(3 * 8192, static_cast<std::uint64_t>(i)),
                     true)
               .ok())
        ++errors;
      if (i % 3 == 0 && !sys.unlink(kvfs::kRootIno, name).ok()) ++errors;
    }
  };
  std::thread ta([&] { churn(a, 1); });
  std::thread tb([&] { churn(b, 2); });
  ta.join();
  tb.join();
  EXPECT_EQ(errors.load(), 0);

  // The shared keyspace is still structurally sound.
  const auto report = kvfs::fsck(store);
  EXPECT_TRUE(report.clean())
      << (report.issues.empty()
              ? ""
              : std::string(kvfs::to_string(report.issues[0].kind)) + ": " +
                    report.issues[0].detail);
}

TEST(MultiMount, DirectWritesVisibleWithoutFsync) {
  kv::KvStore store;
  DpcSystem a(mount_opts(&store));
  DpcSystem b(mount_opts(&store));
  const auto f = a.create(kvfs::kRootIno, "direct");
  const auto v1 = bytes(4096, 10);
  const auto v2 = bytes(4096, 11);
  ASSERT_TRUE(a.write(f.ino, 0, v1, true).ok());
  std::vector<std::byte> out(4096);
  // b reads direct (its own cache is cold and not polluted).
  ASSERT_TRUE(b.read(f.ino, 0, out, true).ok());
  EXPECT_EQ(out, v1);
  ASSERT_TRUE(a.write(f.ino, 0, v2, true).ok());
  b.kvfs().drop_caches();  // attribute freshness across mounts
  ASSERT_TRUE(b.read(f.ino, 0, out, true).ok());
  EXPECT_EQ(out, v2);
}

}  // namespace
}  // namespace dpc::core
