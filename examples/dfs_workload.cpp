// Shared distributed file service through DPC: the offloaded DFS client
// (client-side EC, direct I/O, delegations, metadata-view routing — all
// running on the DPU) against the MDS cluster and EC-striped data servers.
// Demonstrates the offload's CPU story and a degraded read surviving two
// lost shards.
//
//   $ ./dfs_workload
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/dpc_system.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace dpc;

  core::DpcSystem dpc;
  dpc.start_dpu();

  // Create a preallocated big file on the DFS (dispatch bit = distributed).
  const auto f = dpc.dfs_create("/data/training.bin", 1ULL << 30);
  if (!f.ok()) {
    std::cerr << "dfs create failed\n";
    return 1;
  }
  std::cout << "created /data/training.bin (ino " << f.ino
            << ", RS(4,2) striped across "
            << dpc.data_servers()->servers() << " data servers)\n";

  // Write a few stripes; the DPU computes the erasure code and fans the
  // shards out — the host only submitted nvme-fs commands.
  sim::Rng rng(1);
  std::vector<std::byte> block(32 * 1024);  // one full RS(4,2) stripe
  for (auto& b : block) b = static_cast<std::byte>(rng.next_below(256));
  for (int s = 0; s < 8; ++s) {
    const auto io =
        dpc.dfs_write(f.ino, static_cast<std::uint64_t>(s) * block.size(),
                      block);
    if (!io.ok()) {
      std::cerr << "write failed: errno " << io.err << '\n';
      return 1;
    }
  }
  std::cout << "wrote 8 full stripes (" << 8 * block.size() / 1024
            << " KiB) — parity shards live on the backend:\n";
  for (std::uint32_t role = 0; role < 6; ++role) {
    std::cout << "  stripe 0, shard " << role << " ("
              << (role < 4 ? "data" : "parity") << ") on server "
              << dpc.data_servers()->server_of(f.ino, 0, role) << '\n';
  }

  // Read back through the same path.
  std::vector<std::byte> out(block.size());
  dpc.dfs_read(f.ino, 0, out);
  std::cout << "read back stripe 0: "
            << (out == block ? "verified" : "CORRUPT!") << '\n';

  // Fault injection: lose two shards of stripe 0 (the RS(4,2) tolerance),
  // then reconstruct through the client-side degraded path.
  dpc.data_servers()->drop_shard(f.ino, 0, 1);
  dpc.data_servers()->drop_shard(f.ino, 0, 4);
  std::cout << "\ndropped shard 1 (data) and shard 4 (parity) of stripe 0\n";

  dfs::DfsClient recovery(42, *dpc.mds(), *dpc.data_servers(),
                          dfs::ClientConfig::dpc_offloaded());
  const auto opened = recovery.open("/data/training.bin");
  std::fill(out.begin(), out.end(), std::byte{0});
  const auto degraded = recovery.read_degraded(opened.ino, 0, out);
  std::cout << "degraded read: " << (degraded.ok() ? "ok" : "FAILED") << ", "
            << (out == block ? "bytes verified after reconstruction"
                             : "CORRUPT!")
            << '\n';

  // Where did the CPU go? (On a file this client owns — the delegation on
  // training.bin still belongs to the DPC mount.)
  const auto scratch = recovery.create("/data/scratch.bin", 1 << 20);
  const auto w = recovery.write(scratch.ino, 0, block);
  std::cout << "\nper-op cost profile of one striped write (measured):\n"
            << std::fixed << std::setprecision(1)
            << "  host CPU  " << w.prof.host_cpu.us() << " us\n"
            << "  DPU CPU   " << w.prof.dpu_cpu.us() << " us (EC + client stack)\n"
            << "  MDS       " << w.prof.mds.us() << " us across "
            << w.prof.mds_ops << " ops\n"
            << "  servers   " << w.prof.ds.us() << " us across "
            << w.prof.ds_ops << " shard ops\n";

  dpc.stop_dpu();
  return 0;
}
