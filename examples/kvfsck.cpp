// kvfsck — offline consistency check of a KVFS keyspace.
//
// Builds a file system, takes a healthy fsck baseline, then injects the
// kinds of damage a crashed client could leave behind and shows the
// checker pinpointing each one.
//
//   $ ./kvfsck
#include <iostream>

#include "kv/remote.hpp"
#include "kvfs/fsck.hpp"
#include "kvfs/kvfs.hpp"
#include "sim/rng.hpp"

namespace {

void print_report(const dpc::kvfs::FsckReport& report) {
  std::cout << "  " << report.inodes << " inodes (" << report.directories
            << " dirs, " << report.small_files << " small + "
            << report.big_files << " big files), " << report.blocks
            << " blocks, " << report.data_bytes << " data bytes\n";
  if (report.clean()) {
    std::cout << "  CLEAN\n";
    return;
  }
  for (const auto& issue : report.issues) {
    std::cout << "  [" << dpc::kvfs::to_string(issue.kind) << "] ino "
              << issue.ino << ": " << issue.detail << '\n';
  }
}

}  // namespace

int main() {
  using namespace dpc;
  using namespace dpc::kvfs;

  kv::KvStore store;
  kv::RemoteKv remote(store);
  Kvfs fs(remote);

  // Populate a small tree.
  sim::Rng rng(1);
  const auto projects = fs.mkdir(kRootIno, "projects", 0755).value;
  const auto dpc_dir = fs.mkdir(projects, "dpc", 0755).value;
  std::vector<std::byte> small(2000), big(3 * kBigBlock);
  for (auto& b : small) b = static_cast<std::byte>(rng.next_below(256));
  for (auto& b : big) b = static_cast<std::byte>(rng.next_below(256));
  const auto notes = fs.create(dpc_dir, "notes.md", 0644).value;
  fs.write(notes, 0, small);
  const auto dataset = fs.create(dpc_dir, "dataset.bin", 0644).value;
  fs.write(dataset, 0, big);
  fs.create(projects, "README", 0644);

  std::cout << "== healthy filesystem ==\n";
  print_report(fsck(store));

  std::cout << "\n== injecting damage ==\n";
  // 1. Lose the big file's second block (simulated lost KV).
  const auto obj = decode_file_object(*store.get(big_object_key(dataset)));
  store.erase(block_key(obj.blocks[1]));
  std::cout << "  erased block " << obj.blocks[1] << " of dataset.bin\n";
  // 2. Drop notes.md's attribute → its dentry dangles.
  store.erase(attr_key(notes));
  std::cout << "  erased the attribute KV of notes.md\n";
  // 3. Strand an orphan small-file KV.
  store.put(small_key(31337), kv::to_bytes("who am I"));
  std::cout << "  planted an orphan small-file KV (ino 31337)\n";

  std::cout << "\n== fsck after damage ==\n";
  print_report(fsck(store));
  return 0;
}
