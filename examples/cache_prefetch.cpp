// The hybrid cache at work (§3.3): buffered writes absorbed in host memory
// and flushed by the DPU control plane, then a sequential scan accelerated
// by the DPU's readahead — watch the hit rate climb as the prefetcher
// learns the stream.
//
//   $ ./cache_prefetch
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/dpc_system.hpp"

int main() {
  using namespace dpc;

  core::DpcOptions opts;
  opts.cache_geo = {4096, cache::CacheMode::kWrite, 2048, 128};  // 8 MB
  core::DpcSystem dpc(opts);
  dpc.start_dpu();

  const auto f = dpc.create(kvfs::kRootIno, "dataset.bin");
  std::vector<std::byte> block(8192);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<std::byte>(i & 0xFF);

  // Phase 1 — buffered writes: absorbed by the host-resident data plane,
  // drained asynchronously by the DPU flusher.
  constexpr int kBlocks = 2048;  // 16 MB, 2x the cache
  for (int i = 0; i < kBlocks; ++i)
    dpc.write(f.ino, static_cast<std::uint64_t>(i) * block.size(), block,
              /*direct=*/false);
  dpc.fsync(f.ino);
  const auto* cs = dpc.cache_stats();
  const auto* ctl = dpc.control_stats();
  std::cout << "phase 1 (buffered writes): " << cs->writes_cached.load()
            << " pages absorbed in host memory, " << ctl->pages_flushed
            << " flushed to the KV store by the DPU ("
            << ctl->dif_checksums << " DIF checksums), "
            << cs->write_stalls.load() << " stalls\n";

  // Phase 2 — cold sequential scan: the DPU prefetcher detects the stream
  // and pulls pages into host memory ahead of the reader.
  std::vector<std::byte> out(block.size());
  const auto h0 = cs->read_hits.load();
  const auto m0 = cs->read_misses.load();
  int window_hits = 0;
  std::cout << "\nphase 2 (sequential scan) hit rate per 256-op window:\n";
  for (int i = 0; i < kBlocks; ++i) {
    const auto io = dpc.read(
        f.ino, static_cast<std::uint64_t>(i) * block.size(), out, false);
    window_hits += io.cache_hit ? 1 : 0;
    if ((i + 1) % 256 == 0) {
      std::cout << "  ops " << std::setw(4) << i - 254 << "–" << std::setw(4)
                << i + 1 << ": " << std::fixed << std::setprecision(1)
                << 100.0 * window_hits / 256 << "% hits\n";
      window_hits = 0;
    }
  }
  const auto hits = cs->read_hits.load() - h0;
  const auto misses = cs->read_misses.load() - m0;
  std::cout << "scan total: " << hits << " hits / " << misses
            << " misses (" << std::setprecision(1)
            << 100.0 * static_cast<double>(hits) /
                   static_cast<double>(hits + misses)
            << "%), " << ctl->pages_prefetched
            << " pages prefetched by the DPU\n";

  // Phase 3 — the same scan again: now everything the cache kept is free.
  const auto atomics =
      dpc.dma_counters().ops(pcie::DmaClass::kAtomic);
  std::cout << "\nPCIe atomics spent on lock words so far: " << atomics
            << " (the §3.3 concurrency-control protocol)\n";

  dpc.stop_dpu();
  return 0;
}
