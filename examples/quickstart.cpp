// Quickstart: bring up the full DPC stack (fs-adapter → nvme-fs →
// IO_Dispatch → KVFS → disaggregated KV store, with the hybrid cache and
// DPU workers running) and use it like a local file system.
//
//   $ ./quickstart
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/dpc_system.hpp"

int main() {
  using namespace dpc;

  // 1. Mount: one DpcSystem is one mounted DPC client. start_dpu() spawns
  //    the worker threads standing in for the DPU's cores.
  core::DpcSystem dpc;
  dpc.start_dpu();
  std::cout << "mounted DPC (KVFS standalone service over nvme-fs)\n";

  // 2. Namespace ops: everything speaks inode + name, like the VFS would.
  const auto etc = dpc.mkdir(kvfs::kRootIno, "etc");
  const auto logs = dpc.mkdir(kvfs::kRootIno, "logs");
  if (!etc.ok() || !logs.ok()) {
    std::cerr << "mkdir failed\n";
    return 1;
  }

  const auto conf = dpc.create(etc.ino, "app.conf");
  const std::string config = "threads=8\ncache=hybrid\ntransport=nvme-fs\n";
  dpc.write(conf.ino, 0,
            std::as_bytes(std::span{config.data(), config.size()}),
            /*direct=*/true);

  // 3. Buffered I/O goes through the hybrid cache: the write below is
  //    absorbed by host memory and flushed to the KV store by the DPU.
  const auto log = dpc.create(logs.ino, "app.log");
  std::vector<std::byte> block(8192, std::byte{'x'});
  for (int i = 0; i < 16; ++i)
    dpc.write(log.ino, static_cast<std::uint64_t>(i) * block.size(), block,
              /*direct=*/false);
  dpc.fsync(log.ino);

  // 4. Read back through path resolution.
  const auto found = dpc.resolve("/etc/app.conf");
  std::vector<std::byte> out(config.size());
  dpc.read(found.ino, 0, out, /*direct=*/true);
  std::cout << "read back /etc/app.conf:\n"
            << std::string(reinterpret_cast<const char*>(out.data()),
                           out.size());

  // 5. List a directory (inode-KV prefix scan under the hood).
  std::vector<kvfs::DirEntry> entries;
  dpc.readdir(kvfs::kRootIno, &entries);
  std::cout << "root directory:";
  for (const auto& e : entries) std::cout << ' ' << e.name;
  std::cout << '\n';

  // 6. Introspection: what did the offload actually do?
  const auto& dma = dpc.dma_counters();
  std::cout << "\nlink traffic: "
            << dma.ops(pcie::DmaClass::kDescriptor) << " descriptor DMAs, "
            << dma.ops(pcie::DmaClass::kData) << " data DMAs, "
            << dma.ops(pcie::DmaClass::kAtomic) << " PCIe atomics, "
            << dma.total_bytes() << " bytes moved\n";
  if (const auto* cs = dpc.cache_stats()) {
    std::cout << "hybrid cache: " << cs->writes_cached.load()
              << " writes absorbed, " << cs->read_hits.load() << " hits, "
              << cs->read_misses.load() << " misses\n";
  }
  if (const auto* ctl = dpc.control_stats()) {
    std::cout << "DPU control plane: " << ctl->pages_flushed
              << " pages flushed (with DIF), " << ctl->pages_prefetched
              << " prefetched\n";
  }
  std::cout << "KV store now holds " << dpc.kv_store().size()
            << " keys / " << dpc.kv_store().bytes_stored() << " bytes\n";
  std::cout << "modelled latencies: " << dpc.latency_summary() << "\n";

  dpc.stop_dpu();
  return 0;
}
