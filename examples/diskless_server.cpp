// Diskless application server (the paper's M3 motivation): replace the
// under-utilized local disks with DPC's standalone KVFS service backed by
// disaggregated storage. This example plays a container host storing and
// serving "image layers" — the use case the paper cites ("virtualization
// cloud vendors use local disks to store container or virtual machine
// images").
//
//   $ ./diskless_server
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/dpc_system.hpp"
#include "sim/rng.hpp"

namespace {

std::vector<std::byte> make_layer(std::size_t bytes, std::uint64_t seed) {
  dpc::sim::Rng rng(seed);
  std::vector<std::byte> v(bytes);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

}  // namespace

int main() {
  using namespace dpc;

  core::DpcOptions opts;
  opts.max_io = 1 << 20;
  core::DpcSystem dpc(opts);
  dpc.start_dpu();

  // Image registry layout: /images/<name>/layer-N
  const auto images = dpc.mkdir(kvfs::kRootIno, "images");
  struct Image {
    const char* name;
    int layers;
    std::size_t layer_bytes;
  };
  const Image catalog[] = {
      {"alpine", 2, 512 * 1024},
      {"postgres", 4, 2 << 20},
      {"webapp", 3, 1 << 20},
  };

  std::uint64_t total = 0;
  for (const auto& img : catalog) {
    const auto dir = dpc.mkdir(images.ino, img.name);
    for (int l = 0; l < img.layers; ++l) {
      const auto f = dpc.create(dir.ino, "layer-" + std::to_string(l));
      const auto layer =
          make_layer(img.layer_bytes, static_cast<std::uint64_t>(l) + 1);
      const auto io = dpc.write(f.ino, 0, layer, /*direct=*/true);
      if (!io.ok()) {
        std::cerr << "push failed: errno " << io.err << '\n';
        return 1;
      }
      total += layer.size();
    }
    std::cout << "pushed " << img.name << " (" << img.layers << " layers, "
              << img.layers * img.layer_bytes / 1024 << " KiB)\n";
  }

  // "Pull" an image: resolve paths and stream the layers back, verifying.
  std::cout << "\npulling postgres...\n";
  for (int l = 0; l < 4; ++l) {
    const auto path = "/images/postgres/layer-" + std::to_string(l);
    const auto f = dpc.resolve(path);
    kvfs::Attr attr;
    dpc.getattr(f.ino, &attr);
    std::vector<std::byte> out(attr.size);
    const auto io = dpc.read(f.ino, 0, out, /*direct=*/false);
    const auto expect = make_layer(attr.size, static_cast<std::uint64_t>(l) + 1);
    std::cout << "  " << path << ": " << io.bytes << " bytes, "
              << (out == expect ? "verified" : "CORRUPT!") << '\n';
  }

  // Garbage-collect an image.
  const auto alpine = dpc.resolve("/images/alpine");
  std::vector<kvfs::DirEntry> layers;
  dpc.readdir(alpine.ino, &layers);
  for (const auto& e : layers) dpc.unlink(alpine.ino, e.name);
  dpc.rmdir(images.ino, "alpine");
  std::cout << "\ngarbage-collected alpine\n";

  std::cout << "\nno local disks touched: " << total
            << " bytes live in the disaggregated KV store ("
            << dpc.kv_store().size() << " KVs, "
            << dpc.kv_store().bytes_stored() << " bytes)\n"
            << "host did " << std::fixed << std::setprecision(1)
            << "only adapter work; file semantics ran on the DPU ("
            << dpc.dispatch_stats().header_ops.load() << " metadata ops, "
            << dpc.dispatch_stats().inline_writes.load() << " writes, "
            << dpc.dispatch_stats().inline_reads.load() << " reads)\n";

  dpc.stop_dpu();
  return 0;
}
