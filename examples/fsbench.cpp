// fsbench — a small fio/vdbench-style workload driver for the DPC stack
// (the in-repo counterpart of the tools Table 1 lists). Spawns real host
// threads against a live DpcSystem with DPU workers running and reports
// wall-clock throughput, modelled latency percentiles, cache behaviour and
// link traffic.
//
//   $ ./fsbench --pattern=rand-write --size=8192 --threads=4 --ops=2000
//   $ ./fsbench --pattern=seq-read --buffered   # watch the prefetcher work
#include <atomic>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/dpc_system.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"
#include "sim/workload.hpp"

namespace {

struct Args {
  dpc::sim::Pattern pattern = dpc::sim::Pattern::kRandWrite;
  std::uint32_t io_size = 8192;
  int threads = 4;
  int ops_per_thread = 2000;
  std::uint64_t file_mb = 64;
  bool direct = true;

  static void usage() {
    std::cout
        << "fsbench options:\n"
           "  --pattern=rand-read|rand-write|seq-read|seq-write|mixed\n"
           "  --size=<bytes>        I/O size (default 8192)\n"
           "  --threads=<n>         concurrent host threads (default 4)\n"
           "  --ops=<n>             ops per thread (default 2000)\n"
           "  --file-mb=<n>         working-set size (default 64)\n"
           "  --buffered            go through the hybrid cache\n"
           "  --direct              bypass the cache (default)\n";
  }
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return a.rfind(prefix, 0) == 0 ? a.c_str() + std::strlen(prefix)
                                     : nullptr;
    };
    if (const char* v = val("--pattern=")) {
      const std::string p = v;
      if (p == "rand-read") args.pattern = dpc::sim::Pattern::kRandRead;
      else if (p == "rand-write") args.pattern = dpc::sim::Pattern::kRandWrite;
      else if (p == "seq-read") args.pattern = dpc::sim::Pattern::kSeqRead;
      else if (p == "seq-write") args.pattern = dpc::sim::Pattern::kSeqWrite;
      else if (p == "mixed") args.pattern = dpc::sim::Pattern::kMixed;
      else return false;
    } else if (const char* v2 = val("--size=")) {
      args.io_size = static_cast<std::uint32_t>(std::atoi(v2));
    } else if (const char* v3 = val("--threads=")) {
      args.threads = std::atoi(v3);
    } else if (const char* v4 = val("--ops=")) {
      args.ops_per_thread = std::atoi(v4);
    } else if (const char* v5 = val("--file-mb=")) {
      args.file_mb = static_cast<std::uint64_t>(std::atoi(v5));
    } else if (a == "--buffered") {
      args.direct = false;
    } else if (a == "--direct") {
      args.direct = true;
    } else {
      return false;
    }
  }
  return args.io_size > 0 && args.threads > 0 && args.ops_per_thread > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpc;
  Args args;
  if (!parse(argc, argv, args)) {
    Args::usage();
    return 1;
  }

  core::DpcOptions opts;
  opts.queues = std::min(args.threads, 8);
  opts.queue_depth = 16;
  opts.max_io = std::max<std::uint32_t>(args.io_size, 64 * 1024);
  core::DpcSystem dpc(opts);
  dpc.start_dpu();

  // Working set.
  const auto file = dpc.create(kvfs::kRootIno, "fsbench.dat");
  std::vector<std::byte> warm(1 << 20, std::byte{0x42});
  for (std::uint64_t mb = 0; mb < args.file_mb; ++mb)
    dpc.write(file.ino, mb << 20, warm, /*direct=*/true);

  std::cout << "fsbench: " << to_string(args.pattern) << " "
            << args.io_size << "B x " << args.threads << " threads x "
            << args.ops_per_thread << " ops, "
            << (args.direct ? "DIRECT_IO" : "buffered") << ", file "
            << args.file_mb << " MB\n";

  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < args.threads; ++t) {
    workers.emplace_back([&, t] {
      dpc::sim::WorkloadSpec spec;
      spec.pattern = args.pattern;
      spec.io_size = args.io_size;
      spec.file_size = args.file_mb << 20;
      dpc::sim::WorkloadGen gen(spec, static_cast<std::uint64_t>(t));
      std::vector<std::byte> buf(args.io_size, static_cast<std::byte>(t));
      std::vector<std::byte> out(args.io_size);
      for (int i = 0; i < args.ops_per_thread; ++i) {
        const auto op = gen.next();
        const bool ok =
            op.type == dpc::sim::OpType::kRead
                ? dpc.read(file.ino, op.offset, out, args.direct).ok()
                : dpc.write(file.ino, op.offset, buf, args.direct).ok();
        if (!ok) errors.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double total_ops =
      static_cast<double>(args.threads) * args.ops_per_thread;

  dpc::sim::Table t({"metric", "value"});
  t.add_row({"wall-clock ops/s", dpc::sim::Table::fmt_si(total_ops / wall)});
  t.add_row({"wall-clock MB/s",
             dpc::sim::Table::fmt(total_ops * args.io_size / wall / 1e6, 1)});
  t.add_row({"errors", std::to_string(errors.load())});
  const auto& rd = dpc.latency(core::DpcSystem::OpClass::kRead);
  const auto& wr = dpc.latency(core::DpcSystem::OpClass::kWrite);
  if (rd.count() > 0) {
    t.add_row({"modelled read lat p50/p99 (us)",
               dpc::sim::Table::fmt(rd.percentile(50).us(), 1) + " / " +
                   dpc::sim::Table::fmt(rd.percentile(99).us(), 1)});
  }
  if (wr.count() > 0) {
    t.add_row({"modelled write lat p50/p99 (us)",
               dpc::sim::Table::fmt(wr.percentile(50).us(), 1) + " / " +
                   dpc::sim::Table::fmt(wr.percentile(99).us(), 1)});
  }
  if (const auto* cs = dpc.cache_stats()) {
    const auto hits = cs->read_hits.load();
    const auto misses = cs->read_misses.load();
    if (hits + misses > 0)
      t.add_row({"cache read hit-rate",
                 dpc::sim::Table::fmt(
                     100.0 * static_cast<double>(hits) /
                         static_cast<double>(hits + misses),
                     1) +
                     "%"});
    t.add_row({"writes absorbed", std::to_string(cs->writes_cached.load())});
  }
  if (const auto* ctl = dpc.control_stats()) {
    t.add_row({"DPU pages flushed", std::to_string(ctl->pages_flushed)});
    t.add_row({"DPU pages prefetched",
               std::to_string(ctl->pages_prefetched)});
  }
  const auto& dmac = dpc.dma_counters();
  t.add_row({"link DMA transactions",
             std::to_string(dmac.ops(pcie::DmaClass::kDescriptor) +
                            dmac.ops(pcie::DmaClass::kData))});
  t.add_row({"link bytes", dpc::sim::Table::fmt_si(
                               static_cast<double>(dmac.total_bytes()))});
  t.print(std::cout);

  dpc.stop_dpu();
  return errors.load() == 0 ? 0 : 1;
}
