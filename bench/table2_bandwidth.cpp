// Reproduces Table 2: sequential 1 MB read/write bandwidth — local Ext4 vs
// KVFS — at 1 and 32 threads.
//
//            | workload        | Ext4    | KVFS
//   1 thread | 1MB seq. read   | 1.8GB/s | 5.0GB/s
//            | 1MB seq. write  | 1.6GB/s | 3.1GB/s
//   32 thr   | 1MB seq. read   | 3.0GB/s | 7.6GB/s
//            | 1MB seq. write  | 2.0GB/s | 5.0GB/s
//
// Functional phase verifies 1 MB sequential streams round-trip through both
// real stacks; the timing phase solves the streaming networks (Ext4: host
// kernel + drive streaming rate; KVFS: nvme-fs wire + DPU + disaggregated
// KV wire — the paper: "read/write bandwidth is limited by the read/write
// performance of our disaggregated KV store").
#include <iostream>

#include "bench_common.hpp"
#include "core/dpc_system.hpp"
#include "hostfs/ext4like.hpp"
#include "sim/mva.hpp"

namespace {

using namespace dpc;
using namespace dpc::sim;

constexpr std::uint32_t kMB = 1 << 20;

void run_functional() {
  std::vector<std::byte> buf(kMB, std::byte{0x77});
  std::vector<std::byte> out(kMB);

  ssd::SsdModel disk;
  hostfs::Ext4likeOptions eo;
  eo.total_blocks = 1 << 16;
  hostfs::Ext4like ext4(disk, eo);
  const auto eino = ext4.create(hostfs::kRootIno, "seq", 0644).value;
  for (int mb = 0; mb < 8; ++mb) {
    DPC_CHECK(ext4.write(eino, static_cast<std::uint64_t>(mb) * kMB, buf,
                         true)
                  .ok());
  }
  for (int mb = 0; mb < 8; ++mb) {
    DPC_CHECK(ext4.read(eino, static_cast<std::uint64_t>(mb) * kMB, out,
                        true)
                  .ok());
    DPC_CHECK(out == buf);
  }

  core::DpcOptions o;
  o.queues = 2;
  o.queue_depth = 8;
  o.max_io = kMB;
  o.with_dfs = false;
  core::DpcSystem sys(o);
  const auto kino = sys.create(kvfs::kRootIno, "seq").ino;
  for (int mb = 0; mb < 8; ++mb) {
    DPC_CHECK(sys.write(kino, static_cast<std::uint64_t>(mb) * kMB, buf,
                        true)
                  .ok());
  }
  for (int mb = 0; mb < 8; ++mb) {
    DPC_CHECK(
        sys.read(kino, static_cast<std::uint64_t>(mb) * kMB, out, true).ok());
    DPC_CHECK(out == buf);
  }
  bench::emit_metrics_json(sys.metrics(), "table2_bandwidth");
}

double ext4_gbps(bool write, int threads) {
  using namespace sim::calib;
  ClosedNetwork net;
  net.add_queueing("host-cpu", kHostHwThreads,
                   write ? kExt4SeqHostPerMBWrite : kExt4SeqHostPerMBRead);
  // Streaming drive: one serial stream engine at the datasheet rate.
  net.add_queueing("ssd-stream", 1,
                   ssd::SsdModel::sequential_transfer(!write, kMB));
  const auto res = net.solve(threads);
  return res.throughput_ops * kMB / 1e9;
}

double kvfs_gbps(bool write, int threads) {
  using namespace sim::calib;
  ClosedNetwork net;
  net.add_queueing("host-cpu", kHostHwThreads, kKvfsSeqHostPerMB);
  net.add_queueing("pcie-wire", 1, pcie_wire_demand(kMB, write));
  net.add_queueing("dpu-cores", kDpuCores,
                   write ? kKvfsSeqDpuPerMBWrite : kKvfsSeqDpuPerMBRead);
  net.add_queueing("kv-wire", 1,
                   write ? kv_write_transfer(kMB) : kv_read_transfer(kMB));
  const auto res = net.solve(threads);
  return res.throughput_ops * kMB / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline("Table 2 — sequential bandwidth, Ext4 vs KVFS",
                  "1T: 1.8/1.6 vs 5.0/3.1 GB/s; 32T: 3.0/2.0 vs 7.6/5.0 GB/s");
  run_functional();
  std::cout << "functional phase: 8 MB streamed through both stacks, "
               "byte-verified\n\n";

  sim::Table t({"threads", "workload", "Ext4 GB/s", "KVFS GB/s",
                "paper Ext4", "paper KVFS"});
  const char* paper_ext4[] = {"1.8", "1.6", "3.0", "2.0"};
  const char* paper_kvfs[] = {"5.0", "3.1", "7.6", "5.0"};
  int pi = 0;
  for (const int n : {1, 32}) {
    for (const bool write : {false, true}) {
      t.add_row({std::to_string(n),
                 write ? "1MB seq. write" : "1MB seq. read",
                 sim::Table::fmt(ext4_gbps(write, n), 1),
                 sim::Table::fmt(kvfs_gbps(write, n), 1), paper_ext4[pi],
                 paper_kvfs[pi]});
      ++pi;
    }
  }
  bench::print_table(t, args);
  return 0;
}
