// Micro-benchmarks of the Reed–Solomon codec: encode / delta-parity /
// reconstruct throughput on the build machine, across RS geometries and
// shard sizes. These real numbers back the calib.hpp EC-cost constants
// (host ~0.45 ns/B vs the DPU engine's modelled 0.18 ns/B) and the DESIGN.md
// ablation on client-side vs server-side EC.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "ec/crc32c.hpp"
#include "ec/reed_solomon.hpp"
#include "sim/rng.hpp"

namespace {

using namespace dpc;

std::vector<std::vector<std::byte>> shards(int n, std::size_t len,
                                           std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(n),
                                          std::vector<std::byte>(len));
  for (auto& s : out)
    for (auto& b : s) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

void BM_RsEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const auto len = static_cast<std::size_t>(state.range(2));
  ec::ReedSolomon rs(k, m);
  auto data = shards(k, len, 1);
  auto parity = shards(m, len, 2);
  std::vector<std::span<const std::byte>> dv(data.begin(), data.end());
  std::vector<std::span<std::byte>> pv(parity.begin(), parity.end());
  for (auto _ : state) {
    rs.encode(dv, pv);
    benchmark::DoNotOptimize(parity[0][0]);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * k *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_RsEncode)
    ->Args({4, 2, 8 * 1024})
    ->Args({4, 2, 64 * 1024})
    ->Args({8, 4, 8 * 1024})
    ->Args({10, 4, 64 * 1024})
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_RsDeltaParity(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  ec::ReedSolomon rs(4, 2);
  auto parity = shards(1, len, 3);
  auto delta = shards(1, len, 4);
  for (auto _ : state) {
    rs.apply_delta(parity[0], 0, 2, delta[0]);
    benchmark::DoNotOptimize(parity[0][0]);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_RsDeltaParity)->Arg(8 * 1024)->Arg(64 * 1024)
    DPC_BENCH_PIN(dpc::bench::kItersMid);

void BM_RsReconstructTwoLost(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  ec::ReedSolomon rs(4, 2);
  auto all = shards(6, len, 5);
  {
    std::vector<std::span<const std::byte>> dv;
    for (int d = 0; d < 4; ++d) dv.emplace_back(all[static_cast<std::size_t>(d)]);
    std::vector<std::span<std::byte>> pv;
    for (int p = 4; p < 6; ++p) pv.emplace_back(all[static_cast<std::size_t>(p)]);
    rs.encode(dv, pv);
  }
  bool present[6] = {false, true, true, false, true, true};
  for (auto _ : state) {
    auto work = all;  // fresh erased copy each round
    std::vector<std::span<std::byte>> views(work.begin(), work.end());
    rs.reconstruct(views, present);
    benchmark::DoNotOptimize(work[0][0]);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 6 *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_RsReconstructTwoLost)->Arg(8 * 1024)->Arg(64 * 1024)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_Crc32c(benchmark::State& state) {
  const auto data = shards(1, static_cast<std::size_t>(state.range(0)), 6);
  const int sabotage = dpc::bench::sabotage_factor();
  for (auto _ : state) {
    for (int s = 0; s < sabotage; ++s)
      benchmark::DoNotOptimize(ec::crc32c(data[0]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(64 * 1024)
    DPC_BENCH_PIN(dpc::bench::kItersMid);

// The bit-at-a-time reference next to the slice-by-8 production path: the
// ratio is the payoff of the table kernel, and a regression here means the
// integrity envelope's per-4K stamp/verify tax (SSD blocks, KV values,
// nvme-fs payload trailers) grew across the whole stack.
void BM_Crc32cBytewise(benchmark::State& state) {
  const auto data = shards(1, static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::crc32c_bytewise(data[0]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32cBytewise)->Arg(4096)->Arg(64 * 1024)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

}  // namespace
