// Shared Fig. 1 / Fig. 9 machinery: run a workload functionally through a
// DfsClient to *measure* its per-op OpProfile (host/DPU CPU, MDS and
// data-server service, hop counts), then solve the closed queueing network
// those measurements imply.
//
// Network delay handling: the standard NFS client's proxied path serializes
// its hops (client → entry MDS → home MDS → data servers), so its measured
// prof.net is taken as-is. The optimized/DPC clients fan shard I/O out in
// parallel, so their delay is one round trip plus the payload transfer —
// the shard *service* demands still land on the data-server station.
#pragma once

#include <functional>
#include <string>

#include "bench_common.hpp"
#include "sim/check.hpp"
#include "dfs/backend.hpp"
#include "dfs/client.hpp"
#include "sim/mva.hpp"
#include "sim/rng.hpp"
#include "sim/workload.hpp"

namespace dpc::bench {

struct DfsPoint {
  double ops = 0;        // IOPS / ops-per-second
  double lat_us = 0;
  double host_cores = 0; // busy host cores
  double dpu_cores = 0;
};

/// Average per-op profile measured over a functional run.
struct MeanProfile {
  dfs::OpProfile total;
  int ops = 0;

  sim::Nanos mean(sim::Nanos dfs::OpProfile::* field) const {
    if (ops == 0) return sim::Nanos{0};
    return sim::Nanos{(total.*field).ns / ops};
  }
  double mean_count(std::uint32_t dfs::OpProfile::* field) const {
    return ops == 0 ? 0.0
                    : static_cast<double>(total.*field) / ops;
  }
};

inline DfsPoint solve_dfs(const dfs::ClientConfig& cfg, const MeanProfile& mp,
                          std::uint32_t payload_bytes, bool is_write,
                          int threads) {
  using namespace sim;
  using namespace sim::calib;
  ClosedNetwork net;
  const Nanos host = mp.mean(&dfs::OpProfile::host_cpu);
  const int hcpu = net.add_queueing("host-cpu", kHostHwThreads, host);
  int dcpu = -1;
  if (cfg.on_dpu) {
    dcpu = net.add_queueing("dpu-cores", kDpuCores,
                            mp.mean(&dfs::OpProfile::dpu_cpu));
    net.add_queueing("pcie-wire", 1,
                     pcie_wire_demand(payload_bytes, is_write));
  }
  net.add_queueing("mds", kMdsServers, mp.mean(&dfs::OpProfile::mds));
  net.add_queueing("data-servers", kDataServers * kDataServerChannels,
                   mp.mean(&dfs::OpProfile::ds));
  // Aggregate DFS fabric bandwidth; the proxied (standard-NFS) path moves
  // every payload twice (client -> MDS -> data servers).
  {
    const double gbps = is_write ? kDfsWriteGBps : kDfsReadGBps;
    const double passes = cfg.direct_io ? 1.0 : 2.0;
    net.add_queueing("dfs-wire", 1,
                     Nanos{static_cast<std::int64_t>(
                         passes * payload_bytes / (gbps * 1e9) * 1e9)});
  }
  if (cfg.direct_io) {
    // Parallel shard fan-out: one RTT + the payload transfer.
    const double gbps = is_write ? kDfsWriteGBps : kDfsReadGBps;
    net.add_delay("net", kNetHop * 2 +
                             Nanos{static_cast<std::int64_t>(
                                 payload_bytes / (gbps * 1e9) * 1e9)});
  } else {
    net.add_delay("net", mp.mean(&dfs::OpProfile::net));
  }

  const auto res = net.solve(threads);
  DfsPoint p;
  p.ops = res.throughput_ops;
  p.lat_us = res.response.us();
  p.host_cores = cpu_busy_cores(res.throughput_ops, host);
  if (dcpu >= 0)
    p.dpu_cores = cpu_busy_cores(res.throughput_ops,
                                 mp.mean(&dfs::OpProfile::dpu_cpu));
  (void)hcpu;
  return p;
}

/// Runs `ops` iterations of `body`, accumulating each op's profile.
inline MeanProfile measure(int ops,
                           const std::function<dfs::IoResult(int)>& body) {
  MeanProfile mp;
  for (int i = 0; i < ops; ++i) {
    const auto io = body(i);
    DPC_CHECK_MSG(io.ok(), "functional DFS op failed: errno " << io.err);
    mp.total += io.prof;
    ++mp.ops;
  }
  return mp;
}

}  // namespace dpc::bench
