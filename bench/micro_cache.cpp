// Micro-benchmarks of the hybrid cache's real data structures: host-plane
// hit/insert paths (the latencies behind Fig. 8's buffered numbers), the
// PCIe-atomic lock protocol, the DPU flush pass, and the plain page-cache
// baseline for comparison.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "cache/control_plane.hpp"
#include "cache/host_plane.hpp"
#include "cache/page_cache.hpp"

namespace {

using namespace dpc;
using namespace dpc::cache;

struct NullBackend final : CacheBackend {
  bool read_page(std::uint64_t, std::uint64_t, std::span<std::byte> dst,
                 sim::Nanos&) override {
    std::fill(dst.begin(), dst.end(), std::byte{0x11});
    return true;
  }
  bool write_page(std::uint64_t, std::uint64_t, std::span<const std::byte>,
                  sim::Nanos&) override {
    return true;
  }
};

struct Rig {
  Rig()
      : host("host", 256 << 20),
        alloc(host),
        dpu("dpu", 1 << 20),
        dma(host, dpu),
        layout(CacheGeometry{4096, CacheMode::kWrite, 4096, 256}, alloc),
        plane(host, layout),
        ctl(dma, layout, backend, std::make_unique<ClockEviction>()) {}

  pcie::MemoryRegion host;
  pcie::RegionAllocator alloc;
  pcie::MemoryRegion dpu;
  pcie::DmaEngine dma;
  CacheLayout layout;
  HostCachePlane plane;
  NullBackend backend;
  DpuCacheControl ctl;
};

void BM_HostCacheHitRead(benchmark::State& state) {
  Rig rig;
  std::vector<std::byte> page(4096, std::byte{1});
  rig.plane.write(1, 0, page);
  std::vector<std::byte> out(4096);
  const int sabotage = dpc::bench::sabotage_factor();
  for (auto _ : state) {
    for (int s = 0; s < sabotage; ++s)
      benchmark::DoNotOptimize(rig.plane.read(1, 0, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_HostCacheHitRead)
    DPC_BENCH_PIN(dpc::bench::kItersFast);

void BM_HostCacheWriteAbsorb(benchmark::State& state) {
  Rig rig;
  std::vector<std::byte> page(4096, std::byte{2});
  std::uint64_t lpn = 0;
  for (auto _ : state) {
    // Cycle over a working set smaller than the cache: pure absorbs.
    benchmark::DoNotOptimize(rig.plane.write(1, lpn++ % 2048, page));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_HostCacheWriteAbsorb)
    DPC_BENCH_PIN(dpc::bench::kItersFast);

void BM_HostCacheMissLookup(benchmark::State& state) {
  Rig rig;
  std::vector<std::byte> out(4096);
  std::uint64_t lpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.plane.read(99, lpn++, out));
  }
}
BENCHMARK(BM_HostCacheMissLookup)
    DPC_BENCH_PIN(dpc::bench::kItersFast);

void BM_DpuFlushPassPerPage(benchmark::State& state) {
  Rig rig;
  std::vector<std::byte> page(4096, std::byte{3});
  for (auto _ : state) {
    state.PauseTiming();
    for (std::uint64_t lpn = 0; lpn < 256; ++lpn)
      rig.plane.write(1, lpn, page);
    state.ResumeTiming();
    benchmark::DoNotOptimize(rig.ctl.flush_pass());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_DpuFlushPassPerPage)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_DpuPrefetchPerPage(benchmark::State& state) {
  Rig rig;
  std::uint64_t base = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.ctl.prefetch(7, base, 64));
    base += 64;
    if (base > 3000) {
      state.PauseTiming();
      for (std::uint64_t lpn = 0; lpn < base; ++lpn)
        rig.plane.invalidate(7, lpn);
      base = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_DpuPrefetchPerPage)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_PcieAtomicLockUnlock(benchmark::State& state) {
  Rig rig;
  sim::Nanos cost{};
  for (auto _ : state) {
    const auto r = rig.dma.atomic_cas_host(rig.layout.bucket_lock_off(0), 0, 1);
    benchmark::DoNotOptimize(r.success);
    rig.dma.atomic_swap_host(rig.layout.bucket_lock_off(0), 0);
  }
  (void)cost;
}
BENCHMARK(BM_PcieAtomicLockUnlock)
    DPC_BENCH_PIN(dpc::bench::kItersFast);

void BM_PageCacheHit(benchmark::State& state) {
  PageCache pc(4096, 4096);
  std::vector<std::byte> page(4096, std::byte{4});
  auto noop = [](std::uint64_t, std::uint64_t, std::span<const std::byte>) {};
  pc.write(1, 0, page, noop);
  std::vector<std::byte> out(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.read(1, 0, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_PageCacheHit)
    DPC_BENCH_PIN(dpc::bench::kItersFast);

}  // namespace
