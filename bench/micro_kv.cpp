// Micro-benchmarks of the disaggregated-KV substrate and the KVFS layered
// on it — including the small/big file cutoff sweep (the §3.4 design choice
// of 8 KB: whole-KV rewrite below it, in-place 8K block updates above).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "kv/kv_store.hpp"
#include "kv/remote.hpp"
#include "kvfs/kvfs.hpp"
#include "sim/rng.hpp"

namespace {

using namespace dpc;

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

void BM_KvPutGet(benchmark::State& state) {
  kv::KvStore kv;
  const auto val = bytes(static_cast<std::size_t>(state.range(0)), 1);
  std::uint64_t i = 0;
  const int sabotage = dpc::bench::sabotage_factor();
  for (auto _ : state) {
    for (int s = 0; s < sabotage; ++s) {
      const std::string key = "k" + std::to_string(i++ % 1024);
      kv.put(key, val);
      benchmark::DoNotOptimize(kv.get(key));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KvPutGet)->Arg(256)->Arg(8192)
    DPC_BENCH_PIN(dpc::bench::kItersMid);

void BM_KvPrefixScan(benchmark::State& state) {
  kv::KvStore kv;
  const auto val = bytes(64, 2);
  for (int i = 0; i < state.range(0); ++i)
    kv.put("dir/" + std::to_string(i), val);
  for (auto _ : state) {
    std::size_t n = 0;
    kv.scan_prefix("dir/", [&](std::string_view, const kv::Bytes&) {
      ++n;
      return true;
    });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KvPrefixScan)->Arg(64)->Arg(1024)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_KvSubWrite(benchmark::State& state) {
  kv::KvStore kv;
  kv.write_sub("big", 0, bytes(1 << 20, 3));
  const auto patch = bytes(8192, 4);
  sim::Rng rng(5);
  for (auto _ : state) {
    const auto off = rng.next_below(120) * 8192;
    kv.write_sub("big", off, patch);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_KvSubWrite)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

/// The 8 KB small/big cutoff ablation: overwrite cost per write size.
/// Below the cutoff the whole KV is rewritten; above it, only the touched
/// 8 KB blocks are updated in place.
void BM_KvfsOverwrite(benchmark::State& state) {
  kv::KvStore store;
  kv::RemoteKv remote(store);
  kvfs::Kvfs fs(remote);
  const auto file_size = static_cast<std::size_t>(state.range(0));
  const auto ino = fs.create(kvfs::kRootIno, "f", 0644).value;
  fs.write(ino, 0, bytes(file_size, 6));
  const auto patch = bytes(4096, 7);
  sim::Rng rng(8);
  for (auto _ : state) {
    const auto off = rng.next_below(file_size / 4096) * 4096;
    benchmark::DoNotOptimize(fs.write(ino, off, patch).ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_KvfsOverwrite)
    ->Arg(4 * 1024)    // small-file KV: whole rewrite
    ->Arg(8 * 1024)    // at the cutoff
    ->Arg(256 * 1024)  // big-file KV: in-place blocks
    ->Arg(4 << 20)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_KvfsPathResolution(benchmark::State& state) {
  kv::KvStore store;
  kv::RemoteKv remote(store);
  kvfs::Kvfs fs(remote);
  // Build a path of the requested depth.
  kvfs::Ino dir = kvfs::kRootIno;
  std::string path;
  for (int d = 0; d < state.range(0); ++d) {
    const std::string name = "d" + std::to_string(d);
    dir = fs.mkdir(dir, name, 0755).value;
    path += "/" + name;
  }
  const bool cached = state.range(1) != 0;
  for (auto _ : state) {
    if (!cached) fs.drop_caches();
    benchmark::DoNotOptimize(fs.resolve(path).ok());
  }
}
BENCHMARK(BM_KvfsPathResolution)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({8, 0})
    ->Args({8, 1})  // dentry cache on/off: the §3.4 lookup acceleration
    DPC_BENCH_PIN(dpc::bench::kItersMid);

void BM_KvfsCreateUnlink(benchmark::State& state) {
  kv::KvStore store;
  kv::RemoteKv remote(store);
  kvfs::Kvfs fs(remote);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string name = "f" + std::to_string(i++);
    benchmark::DoNotOptimize(fs.create(kvfs::kRootIno, name, 0644).ok());
    benchmark::DoNotOptimize(fs.unlink(kvfs::kRootIno, name).ok());
  }
}
BENCHMARK(BM_KvfsCreateUnlink)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

}  // namespace
