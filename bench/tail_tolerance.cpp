// Tail-tolerance bench: gray failure (fail-slow) sweeps across the DFS and
// KV backends, hedging/health ON vs OFF (DESIGN.md §5l).
//
// Two identically-seeded stacks run the same workload. The ON stack has the
// full gray-failure machinery (per-peer health scoreboard, adaptive
// deadlines, quarantine, hedged reads); the OFF stack attaches a neutered
// health board (deadline pinned at 50 ms, hedge budget zero, quarantine
// unreachable) so it executes the same code path but simply waits out every
// slow peer — the "fixed deadline, no hedging" client.
//
// Sweeps:
//   1. limping data server — server 0's service time ×10 (sustained). ON
//      must strike/quarantine it and keep read p99 ≤ 2× healthy; OFF tracks
//      the limp (p99 ≥ ~10× healthy). Every read is memcmp'd against the
//      golden file, so degraded/hedged serving is also proven bit-identical.
//   2. reintegration — the limp is cured; ON's probes must reintegrate the
//      server.
//   3. intermittent DS stalls — 80 µs GC-pause stalls at low probability.
//      ON's speculative hedges must fire (issued/won/cancelled > 0), stay
//      inside the token budget, and beat OFF's p99.
//   4. limping MDS — relative-EWMA quarantine (the slow-not-timing-out
//      flavor of gray failure) on the metadata scoreboard.
//   5. KV stalls / outage / heal — adaptive deadline cuts 2 ms stalls at
//      ~150 µs (ON p99 ≤ ½ OFF p99); a full outage fast-fails via
//      quarantine after one op (first-op cost ≤ 0.6× the fixed-timeout
//      stack); healing reintegrates.
//
// Emits BENCH_tail.json (ON-stack registry snapshot: health/, hedge/,
// tail/ summary gauges) for the regress gate.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dfs/backend.hpp"
#include "dfs/client.hpp"
#include "fault/health.hpp"
#include "fault/injector.hpp"
#include "kv/kv_store.hpp"
#include "kv/remote.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

using namespace dpc;

constexpr std::uint32_t kUnit = 8 * 1024;
constexpr int kK = 4;
constexpr std::uint32_t kStripeBytes = kUnit * kK;  // one full stripe: 32 KiB
constexpr int kStripes = 32;                        // 1 MiB file
constexpr int kLimpServer = 0;

constexpr int kKvKeys = 64;
constexpr std::size_t kKvValue = 256;

std::int64_t pctl(std::vector<std::int64_t> v, double q) {
  DPC_CHECK(!v.empty());
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(v.size() - 1) * q);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

double us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

/// The OFF configuration: same code path, gray-failure machinery inert.
/// Deadline pinned far above any injected slowness (never cuts), hedge
/// budget zero (every speculation denied), quarantine unreachable.
fault::HealthConfig off_health() {
  fault::HealthConfig c;
  c.deadline_floor = c.deadline_ceiling = sim::millis(50.0);
  c.hedge_budget = 0.0;
  c.hedge_token_cap = 0.0;
  c.slow_ratio = 1e12;
  c.slow_strikes = 1 << 30;
  return c;
}

// ------------------------------------------------------------ DFS sweep

struct DsStack {
  obs::Registry reg;
  fault::FaultInjector fi;
  dfs::MdsCluster mds;
  dfs::DataServers ds;
  dfs::DfsClient client;
  dfs::Ino ino = 0;
  std::vector<std::byte> golden;

  DsStack(std::uint64_t seed, const fault::HealthConfig& hc)
      : fi(seed, &reg),
        mds(),
        ds(sim::calib::kDataServers, &fi, &reg),
        client(1, mds, ds, hedged_cfg(), &reg) {
    ds.enable_health(hc);
    mds.attach_fault(&fi);
    mds.enable_health(&reg, hc);

    sim::Rng rng(seed ^ 0x7a11);
    golden.resize(static_cast<std::size_t>(kStripeBytes) * kStripes);
    for (auto& b : golden) b = static_cast<std::byte>(rng.next_below(256));
    const auto c = client.create("/tail", golden.size());
    DPC_CHECK(c.ok());
    ino = c.ino;
    DPC_CHECK(client.write(ino, 0, golden).ok());
  }

  static dfs::ClientConfig hedged_cfg() {
    dfs::ClientConfig c = dfs::ClientConfig::dpc_offloaded();
    c.hedged_reads = true;
    return c;
  }

  /// One full-stripe read, verified against the golden image; returns the
  /// op's modelled critical-path latency.
  std::int64_t read_stripe(int s) {
    std::vector<std::byte> buf(kStripeBytes);
    const std::uint64_t off = static_cast<std::uint64_t>(kStripeBytes) * s;
    const auto r = client.read(ino, off, buf);
    DPC_CHECK(r.ok());
    DPC_CHECK(std::memcmp(buf.data(), golden.data() + off, kStripeBytes) == 0);
    return r.prof.crit.ns;
  }

  std::vector<std::int64_t> run_reads(int ops, std::uint64_t salt) {
    sim::Rng rng(salt);
    std::vector<std::int64_t> lat;
    lat.reserve(static_cast<std::size_t>(ops));
    for (int i = 0; i < ops; ++i)
      lat.push_back(read_stripe(static_cast<int>(rng.next_below(kStripes))));
    return lat;
  }
};

// ------------------------------------------------------------- KV sweep

struct KvStack {
  obs::Registry own_reg;  // OFF stack keeps its metrics out of the snapshot
  obs::Registry* reg;
  fault::FaultInjector fi;
  kv::KvStore store;
  kv::RemoteKv kv;

  KvStack(std::uint64_t seed, bool health, obs::Registry* shared)
      : reg(shared != nullptr ? shared : &own_reg),
        fi(seed, reg),
        store(),
        kv(store, &fi, reg, retry(), {}) {
    if (health) kv.enable_health();
    std::vector<std::byte> val(kKvValue);
    for (int i = 0; i < kKvKeys; ++i) {
      for (auto& b : val) b = static_cast<std::byte>(i & 0xff);
      DPC_CHECK(kv.put("k" + std::to_string(i), val).ok());
    }
  }

  /// Small backoff base so the retry-budget charge is dominated by the
  /// per-attempt deadline (the quantity this bench contrasts ON vs OFF).
  static fault::RetryPolicy retry() {
    fault::RetryPolicy r;
    r.max_attempts = 6;
    r.base_backoff = sim::micros(20.0);
    return r;
  }

  /// One get; result verified when the op succeeds. Returns modelled cost.
  std::int64_t get_one(int i, bool* ok = nullptr) {
    const auto r = kv.get("k" + std::to_string(i % kKvKeys));
    if (r.ok()) {
      DPC_CHECK(r.value.has_value());
      DPC_CHECK(r.value->size() == kKvValue);
      DPC_CHECK((*r.value)[0] == static_cast<std::byte>((i % kKvKeys) & 0xff));
    }
    if (ok != nullptr) *ok = r.ok();
    return r.cost.ns;
  }

  std::vector<std::int64_t> run_gets(int ops) {
    std::vector<std::int64_t> lat;
    lat.reserve(static_cast<std::size_t>(ops));
    for (int i = 0; i < ops; ++i) lat.push_back(get_one(i));
    return lat;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline("Tail tolerance under gray failure",
                  "DESIGN.md §5l (fail-slow model; hedged reads)");
  const std::uint64_t seed = fault::FaultInjector::seed_from_env(42);
  std::cout << "fault seed: " << seed << " (DPC_FAULT_SEED overrides)\n\n";

  sim::Table table({"phase", "stack", "ops", "p50_us", "p99_us", "note"});
  auto row = [&](const std::string& phase, const std::string& stack,
                 std::size_t ops, std::int64_t p50, std::int64_t p99,
                 const std::string& note) {
    table.add_row({phase, stack, std::to_string(ops),
                   sim::Table::fmt(us(p50)), sim::Table::fmt(us(p99)), note});
  };

  DsStack on(seed, {});
  DsStack off(seed, off_health());

  // ---- phase 1: healthy baseline --------------------------------------
  const auto on_healthy = on.run_reads(400, seed ^ 1);
  const auto off_healthy = off.run_reads(400, seed ^ 1);
  const std::int64_t on_healthy_p99 = pctl(on_healthy, 0.99);
  const std::int64_t off_healthy_p99 = pctl(off_healthy, 0.99);
  row("ds healthy", "on", on_healthy.size(), pctl(on_healthy, 0.5),
      on_healthy_p99, "");
  row("ds healthy", "off", off_healthy.size(), pctl(off_healthy, 0.5),
      off_healthy_p99, "");

  // ---- phase 2: limping data server (sustained ×10) -------------------
  fault::FaultInjector::SlowSpec limp;
  limp.multiplier = 10.0;
  limp.peer = kLimpServer;
  on.fi.arm_slow(dfs::kFaultDsSlow, limp);
  off.fi.arm_slow(dfs::kFaultDsSlow, limp);
  const auto on_limp = on.run_reads(1600, seed ^ 2);
  const auto off_limp = off.run_reads(400, seed ^ 2);
  const std::int64_t on_limp_p99 = pctl(on_limp, 0.99);
  const std::int64_t off_limp_p99 = pctl(off_limp, 0.99);
  row("ds limp x10", "on", on_limp.size(), pctl(on_limp, 0.5), on_limp_p99,
      "quarantined=" + std::to_string(on.ds.health()->quarantines()));
  row("ds limp x10", "off", off_limp.size(), pctl(off_limp, 0.5),
      off_limp_p99, "waits out the limp");

  // The tentpole SLO: hedging/quarantine holds read p99 at ≤ 2× healthy
  // while a fixed-deadline stack degrades with the limp (×10 service time
  // lands p99 at ~10× healthy — the limper serves half the stripes).
  DPC_CHECK(on.ds.health()->quarantines() >= 1);
  DPC_CHECK(on.ds.health()->quarantined(kLimpServer));
  DPC_CHECK(on_limp_p99 <= 2 * on_healthy_p99);
  DPC_CHECK(static_cast<double>(off_limp_p99) >=
            9.9 * static_cast<double>(off_healthy_p99));

  // ---- phase 3: cure the limp; ON must reintegrate --------------------
  on.fi.disarm_slow(dfs::kFaultDsSlow);
  off.fi.disarm_slow(dfs::kFaultDsSlow);
  const auto on_heal = on.run_reads(400, seed ^ 3);
  row("ds heal", "on", on_heal.size(), pctl(on_heal, 0.5),
      pctl(on_heal, 0.99),
      "reintegrations=" + std::to_string(on.ds.health()->reintegrations()));
  DPC_CHECK(on.ds.health()->reintegrations() >= 1);
  DPC_CHECK(!on.ds.health()->quarantined(kLimpServer));

  // ---- phase 4: intermittent stalls → speculative hedges --------------
  fault::FaultInjector::SlowSpec stall;
  stall.stall = sim::micros(80.0);
  stall.stall_probability = 0.008;  // rare: stays out of the healthy p99
  on.fi.arm_slow(dfs::kFaultDsSlow, stall);
  off.fi.arm_slow(dfs::kFaultDsSlow, stall);
  const auto on_stall = on.run_reads(2000, seed ^ 4);
  const auto off_stall = off.run_reads(800, seed ^ 4);
  on.fi.disarm_slow(dfs::kFaultDsSlow);
  off.fi.disarm_slow(dfs::kFaultDsSlow);
  const std::int64_t on_stall_p99 = pctl(on_stall, 0.99);
  const std::int64_t off_stall_p99 = pctl(off_stall, 0.99);
  const auto& hc = on.ds.hedge_counters();
  row("ds stall 80us", "on", on_stall.size(), pctl(on_stall, 0.5),
      on_stall_p99,
      "hedges=" + std::to_string(hc.issued->value()) + " won=" +
          std::to_string(hc.won->value()));
  row("ds stall 80us", "off", off_stall.size(), pctl(off_stall, 0.5),
      off_stall_p99, "denied=" +
          std::to_string(off.ds.hedge_counters().denied->value()));
  DPC_CHECK(hc.issued->value() >= 1);
  DPC_CHECK(hc.won->value() >= 1);
  DPC_CHECK(hc.cancelled->value() >= 1);
  // Budget: speculation capped at hedge_budget of primary reads (+ the
  // token cap a healthy stretch may bank).
  DPC_CHECK(static_cast<double>(hc.issued->value()) <=
            on.ds.health()->config().hedge_budget *
                    static_cast<double>(hc.primary->value()) +
                on.ds.health()->config().hedge_token_cap);
  DPC_CHECK(on_stall_p99 < off_stall_p99);
  // OFF's hedges must all have been denied by its zero budget.
  DPC_CHECK(off.ds.hedge_counters().issued->value() == 0);

  // ---- phase 5: limping MDS → relative-EWMA quarantine ----------------
  // The MDS stays inside every deadline; it is quarantined purely for
  // being a sustained slow_ratio× outlier against the cohort median.
  {
    dfs::OpProfile prof;
    std::vector<dfs::Ino> minos;
    for (int i = 0; i < 8; ++i) {
      const auto m =
          on.mds.create("/m" + std::to_string(i), 0, 0, true, prof);
      DPC_CHECK(m.has_value());
      minos.push_back(m->ino);
    }
    for (int pass = 0; pass < 8; ++pass)
      for (const auto ino : minos)
        DPC_CHECK(on.mds.stat(ino, 0, true, prof).has_value());
    const int home = on.mds.home_of(on.ino);
    fault::FaultInjector::SlowSpec mlimp;
    mlimp.multiplier = 12.0;
    mlimp.peer = home;
    on.fi.arm_slow(dfs::kFaultMdsSlow, mlimp);
    for (int i = 0; i < 64; ++i)
      DPC_CHECK(on.mds.stat(on.ino, 0, true, prof).has_value());
    on.fi.disarm_slow(dfs::kFaultMdsSlow);
    DPC_CHECK(on.mds.health()->quarantines() >= 1);
    DPC_CHECK(on.mds.health()->quarantined(home));
    table.add_row({"mds limp x12", "on", "64", "-", "-",
                   "ewma quarantine on mds" + std::to_string(home)});
  }

  // ---- KV backend ------------------------------------------------------
  KvStack kv_on(seed ^ 0xcafe, true, &on.reg);
  KvStack kv_off(seed ^ 0xcafe, false, nullptr);

  const auto kv_on_healthy = kv_on.run_gets(512);
  const auto kv_off_healthy = kv_off.run_gets(512);
  row("kv healthy", "on", kv_on_healthy.size(), pctl(kv_on_healthy, 0.5),
      pctl(kv_on_healthy, 0.99), "");
  row("kv healthy", "off", kv_off_healthy.size(), pctl(kv_off_healthy, 0.5),
      pctl(kv_off_healthy, 0.99), "");

  // ---- phase 6: KV stalls — adaptive deadline cuts them ---------------
  fault::FaultInjector::SlowSpec kstall;
  kstall.stall = sim::millis(2.0);
  kstall.stall_probability = 0.08;
  kv_on.fi.arm_slow(kv::RemoteKv::kSlowSite, kstall);
  kv_off.fi.arm_slow(kv::RemoteKv::kSlowSite, kstall);
  const auto kv_on_stall = kv_on.run_gets(512);
  const auto kv_off_stall = kv_off.run_gets(512);
  kv_on.fi.disarm_slow(kv::RemoteKv::kSlowSite);
  kv_off.fi.disarm_slow(kv::RemoteKv::kSlowSite);
  const std::int64_t kv_on_stall_p99 = pctl(kv_on_stall, 0.99);
  const std::int64_t kv_off_stall_p99 = pctl(kv_off_stall, 0.99);
  row("kv stall 2ms", "on", kv_on_stall.size(), pctl(kv_on_stall, 0.5),
      kv_on_stall_p99, "deadline cuts + retry");
  row("kv stall 2ms", "off", kv_off_stall.size(), pctl(kv_off_stall, 0.5),
      kv_off_stall_p99, "waits out each stall");
  DPC_CHECK(static_cast<double>(kv_on_stall_p99) <=
            0.5 * static_cast<double>(kv_off_stall_p99));

  // ---- phase 7: KV outage — quarantine beats fixed timeouts -----------
  kv_on.fi.arm(kv::RemoteKv::kFaultSite, 1.0);
  kv_off.fi.arm(kv::RemoteKv::kFaultSite, 1.0);
  bool ok = false;
  const std::int64_t kv_on_first = kv_on.get_one(0, &ok);
  DPC_CHECK(!ok);
  const std::int64_t kv_off_first = kv_off.get_one(0, &ok);
  DPC_CHECK(!ok);
  // Retrying at the adaptive deadline (~150 µs per attempt) gives up far
  // cheaper than retrying at the fixed 500 µs kKvOpTimeout.
  DPC_CHECK(static_cast<double>(kv_on_first) <=
            0.6 * static_cast<double>(kv_off_first));
  DPC_CHECK(kv_on.kv.health()->quarantines() >= 1);
  std::vector<std::int64_t> kv_on_outage, kv_off_outage;
  for (int i = 1; i <= 160; ++i) {
    kv_on_outage.push_back(kv_on.get_one(i));
    kv_off_outage.push_back(kv_off.get_one(i));
  }
  // Quarantined: the median outage op is a free fast-fail, not a retry run.
  DPC_CHECK(pctl(kv_on_outage, 0.5) == 0);
  row("kv outage", "on", kv_on_outage.size() + 1, pctl(kv_on_outage, 0.5),
      pctl(kv_on_outage, 0.99),
      "first_op_us=" + sim::Table::fmt(us(kv_on_first)));
  row("kv outage", "off", kv_off_outage.size() + 1, pctl(kv_off_outage, 0.5),
      pctl(kv_off_outage, 0.99),
      "first_op_us=" + sim::Table::fmt(us(kv_off_first)));

  // ---- phase 8: KV heals — probes reintegrate, breaker closes ---------
  kv_on.fi.disarm(kv::RemoteKv::kFaultSite);
  kv_off.fi.disarm(kv::RemoteKv::kFaultSite);
  bool on_ok = false, off_ok = false;
  for (int i = 0; i < 256; ++i) {
    kv_on.get_one(i, &on_ok);
    kv_off.get_one(i, &off_ok);
  }
  DPC_CHECK(on_ok);
  DPC_CHECK(off_ok);
  DPC_CHECK(kv_on.kv.health()->reintegrations() >= 1);
  DPC_CHECK(kv_on.kv.breaker_state() == fault::CircuitBreaker::State::kClosed);
  table.add_row({"kv heal", "both", "256", "-", "-",
                 "reintegrations=" +
                     std::to_string(kv_on.kv.health()->reintegrations())});

  print_table(table, args);

  std::cout << "tail SLOs: ds limp p99 on/healthy = "
            << sim::Table::fmt(static_cast<double>(on_limp_p99) /
                               static_cast<double>(on_healthy_p99), 2)
            << "x (<= 2x), off/healthy = "
            << sim::Table::fmt(static_cast<double>(off_limp_p99) /
                               static_cast<double>(off_healthy_p99), 2)
            << "x (>= 9.9x); kv stall p99 on/off = "
            << sim::Table::fmt(static_cast<double>(kv_on_stall_p99) /
                               static_cast<double>(kv_off_stall_p99), 2)
            << " (<= 0.5)\n\n";

  // Summary gauges ride in the snapshot next to the health/hedge counters.
  auto set = [&](std::string_view name, std::int64_t v) {
    on.reg.gauge(name).set(v);
  };
  set("tail/ds_healthy_p99_ns", on_healthy_p99);
  set("tail/ds_limp_on_p99_ns", on_limp_p99);
  set("tail/ds_limp_off_p99_ns", off_limp_p99);
  set("tail/ds_stall_on_p99_ns", on_stall_p99);
  set("tail/ds_stall_off_p99_ns", off_stall_p99);
  set("tail/kv_stall_on_p99_ns", kv_on_stall_p99);
  set("tail/kv_stall_off_p99_ns", kv_off_stall_p99);
  set("tail/kv_outage_on_first_ns", kv_on_first);
  set("tail/kv_outage_off_first_ns", kv_off_first);
  bench::emit_metrics_json(on.reg, "tail");
  return 0;
}
