// Micro-benchmarks of the real transport data structures on the build
// machine: nvme-fs SQ/CQ round trips vs virtio-fs chain round trips, at
// several payload sizes. These are wall-clock measurements of the
// functional layer (ring protocol + counted DMA copies), backing the
// DESIGN.md ablation notes on protocol overhead.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "core/virtual_client.hpp"

namespace {

using namespace dpc;

void BM_NvmeFsWrite(benchmark::State& state) {
  core::NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 16;
  o.max_io = 1 << 20;
  core::NvmeRawHarness h(o);
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)),
                             std::byte{0x5A});
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.do_write(0, buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["dma_ops/op"] = static_cast<double>(
      (h.counters().ops(pcie::DmaClass::kDescriptor) +
       h.counters().ops(pcie::DmaClass::kData)) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_NvmeFsWrite)->Arg(4096)->Arg(8192)->Arg(65536)->Arg(1 << 20)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_NvmeFsRead(benchmark::State& state) {
  core::NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 16;
  o.max_io = 1 << 20;
  core::NvmeRawHarness h(o);
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.do_read(0, buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_NvmeFsRead)->Arg(4096)->Arg(65536)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_VirtioFsWrite(benchmark::State& state) {
  core::VirtioRawHarness::Options o;
  o.queue_size = 64;
  o.request_slots = 16;
  o.max_io = 1 << 20;
  core::VirtioRawHarness h(o);
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)),
                             std::byte{0x5A});
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.do_write(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["dma_ops/op"] = static_cast<double>(
      (h.counters().ops(pcie::DmaClass::kDescriptor) +
       h.counters().ops(pcie::DmaClass::kData)) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_VirtioFsWrite)
    ->Arg(4096)->Arg(8192)->Arg(65536)->Arg(1 << 20)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_VirtioFsRead(benchmark::State& state) {
  core::VirtioRawHarness::Options o;
  o.queue_size = 64;
  o.request_slots = 16;
  o.max_io = 1 << 20;
  core::VirtioRawHarness h(o);
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.do_read(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VirtioFsRead)->Arg(4096)->Arg(65536)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

// Batched submission (IniDriver::submit_batch): one SQ doorbell per run of
// N commands, one SQE-batch fetch and one coalesced CQE transaction on the
// TGT. Compare time/op against BM_NvmeFsWrite to see the per-op doorbell +
// descriptor-DMA amortization.
void BM_NvmeFsWriteBatched(benchmark::State& state) {
  core::NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 64;  // > the widest Arg: the batch must fit the depth-1 pool
  o.max_io = 1 << 20;
  core::NvmeRawHarness h(o);
  const int batch = static_cast<int>(state.range(0));
  std::vector<std::byte> buf(4096, std::byte{0x5A});
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.do_write_batch(0, batch, buf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
  state.counters["doorbells/op"] = static_cast<double>(
      h.counters().ops(pcie::DmaClass::kDoorbell) /
      static_cast<double>(state.iterations() * batch));
}
BENCHMARK(BM_NvmeFsWriteBatched)->Arg(8)->Arg(32)
    DPC_BENCH_PIN(dpc::bench::kItersSlow);

void BM_SqeEncodeDecode(benchmark::State& state) {
  nvme::NvmeFsCmd cmd;
  cmd.inline_op = nvme::InlineOp::kWrite;
  cmd.inode = 42;
  cmd.offset = 1 << 20;
  cmd.write_len = 8192;
  for (auto _ : state) {
    const auto sqe = nvme::encode_nvme_fs(cmd);
    benchmark::DoNotOptimize(nvme::decode_nvme_fs(sqe));
  }
}
BENCHMARK(BM_SqeEncodeDecode)
    DPC_BENCH_PIN(dpc::bench::kItersFast);

}  // namespace
