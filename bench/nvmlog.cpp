// NVM write-ahead durability bench: fsync tail latency with the log on
// (fsync acks at NVM persistence, pages drain in the background) versus
// off (every fsync takes the synchronous flush + KV barrier), over two
// workloads:
//
//   * fsync-heavy — one hot file, a 4 KiB buffered write + fsync per op,
//     the rotating 8-page working set keeping every fsync one dirty page;
//   * mail-spool  — create + 4 KiB write + fsync per message, the classic
//     durability-bound small-file pattern (each create's journal intent
//     rides the same log on the ON arm).
//
// A third scenario fills a deliberately tiny log to show the degradation
// ladder: ring-full appends return typed backpressure, fsync falls back
// to the synchronous path, and every op still acks — graceful, not wedged.
//
// Pump mode (no worker threads) with the opportunistic background drain
// disabled, so costs are pure modelled time and deterministic: every
// fsync meets its dirty page and the ON/OFF split isolates exactly the
// log-append vs synchronous-flush difference. Asserts p99(OFF) >= 5x
// p99(ON) for both workloads and emits BENCH_nvmlog.json for
// bench/regress (deterministic "nvmlog/…" counters + latency gauges).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dpc_system.hpp"
#include "nvm/wal.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

using namespace dpc;

constexpr int kFsyncOps = 256;
constexpr int kMailMsgs = 128;
constexpr std::size_t kPage = 4096;

std::vector<std::byte> page_bytes(std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(kPage);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

core::DpcOptions make_opts(bool wal_on) {
  core::DpcOptions opts;
  opts.queues = 1;
  opts.queue_depth = 8;
  opts.max_io = 128 * 1024;
  opts.cache_geo = {kPage, cache::CacheMode::kWrite, 64, 8};
  // Disable the opportunistic background drain so each fsync meets its
  // dirty page — both arms, so the comparison isolates the ack path.
  opts.cache_ctl.evict_batch = 0;
  opts.with_dfs = false;
  opts.enable_nvm_wal = wal_on;
  return opts;
}

struct ArmResult {
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t fast_acks = 0;
  std::uint64_t fallbacks = 0;
};

std::int64_t percentile(std::vector<std::int64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

ArmResult finish_arm(core::DpcSystem& sys, std::vector<std::int64_t>& lat) {
  ArmResult r;
  r.p50_ns = percentile(lat, 0.50);
  r.p99_ns = percentile(lat, 0.99);
  r.wal_appends = sys.metrics().counter("wal/appends").value();
  r.fast_acks = sys.dispatch_stats().wal_fast_acks.load();
  r.fallbacks = sys.dispatch_stats().wal_fallbacks.load();
  return r;
}

/// One hot file, hot-page rewrite: write 4 KiB at offset 0, fsync, repeat.
/// Each round leaves exactly one fresh dirty page — the ON arm re-logs its
/// new bytes to NVM, the OFF arm re-flushes them through the KV write +
/// barrier, so the split isolates the per-fsync ack path.
ArmResult run_fsync_heavy(bool wal_on) {
  core::DpcSystem sys(make_opts(wal_on));
  const auto ino = sys.create(kvfs::kRootIno, "hot").ino;
  DPC_CHECK_MSG(ino != 0, "create failed in fsync-heavy arm");
  std::vector<std::int64_t> lat;
  lat.reserve(kFsyncOps);
  for (int i = 0; i < kFsyncOps; ++i) {
    const auto data = page_bytes(100 + static_cast<unsigned>(i));
    DPC_CHECK_MSG(sys.write(ino, 0, data).ok(), "write " << i);
    const auto f = sys.fsync(ino);
    DPC_CHECK_MSG(f.ok(), "fsync " << i << " err " << f.err);
    lat.push_back(f.cost.ns);
  }
  return finish_arm(sys, lat);
}

/// Mail-spool: each message is create + one-page write + fsync.
ArmResult run_mail_spool(bool wal_on) {
  core::DpcSystem sys(make_opts(wal_on));
  const auto spool = sys.mkdir(kvfs::kRootIno, "spool").ino;
  DPC_CHECK_MSG(spool != 0, "mkdir failed in mail-spool arm");
  std::vector<std::int64_t> lat;
  lat.reserve(kMailMsgs);
  for (int i = 0; i < kMailMsgs; ++i) {
    const auto ino = sys.create(spool, "m" + std::to_string(i)).ino;
    DPC_CHECK_MSG(ino != 0, "create m" << i);
    const auto data = page_bytes(9000 + static_cast<unsigned>(i));
    DPC_CHECK_MSG(sys.write(ino, 0, data).ok(), "write m" << i);
    const auto f = sys.fsync(ino);
    DPC_CHECK_MSG(f.ok(), "fsync m" << i << " err " << f.err);
    lat.push_back(f.cost.ns);
  }
  return finish_arm(sys, lat);
}

struct DegradeResult {
  std::uint64_t ring_full = 0;
  std::uint64_t fallbacks = 0;
  bool all_served = true;
};

/// Degradation ladder: a log too small for the burst. Appends hit typed
/// ring-full backpressure, fsync falls back synchronously, nothing wedges.
DegradeResult run_ring_full() {
  auto opts = make_opts(true);
  opts.nvm_log_bytes = 24 * 1024;  // a couple of page frames at most
  core::DpcSystem sys(opts);
  const auto ino = sys.create(kvfs::kRootIno, "burst").ino;
  DPC_CHECK_MSG(ino != 0, "create failed in ring-full arm");
  DegradeResult r;
  for (int i = 0; i < 16; ++i) {
    const auto data = page_bytes(7000 + static_cast<unsigned>(i));
    const auto off = static_cast<std::uint64_t>(i) * kPage;
    if (!sys.write(ino, off, data).ok() || !sys.fsync(ino).ok())
      r.all_served = false;
  }
  r.ring_full = sys.metrics().counter("wal/ring_full").value();
  r.fallbacks = sys.dispatch_stats().wal_fallbacks.load();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline("NVM write-ahead durability tier",
                  "fsync acks at NVM persistence — log-append fast path "
                  "vs synchronous flush + KV barrier");

  const ArmResult heavy_on = run_fsync_heavy(true);
  const ArmResult heavy_off = run_fsync_heavy(false);
  const ArmResult mail_on = run_mail_spool(true);
  const ArmResult mail_off = run_mail_spool(false);
  const DegradeResult degrade = run_ring_full();

  const auto speedup = [](const ArmResult& off, const ArmResult& on) {
    return static_cast<double>(off.p99_ns) /
           static_cast<double>(std::max<std::int64_t>(1, on.p99_ns));
  };

  sim::Table t({"arm", "fsync p50 (us)", "fsync p99 (us)", "p99 off/on",
                "wal appends", "fast acks", "fallbacks"});
  const auto row = [&](const char* name, const ArmResult& a, double ratio) {
    t.add_row({name, sim::Table::fmt(a.p50_ns / 1000.0),
               sim::Table::fmt(a.p99_ns / 1000.0),
               ratio > 0 ? sim::Table::fmt(ratio) : std::string("-"),
               std::to_string(a.wal_appends), std::to_string(a.fast_acks),
               std::to_string(a.fallbacks)});
  };
  row("fsync-heavy, WAL on", heavy_on, 0);
  row("fsync-heavy, WAL off", heavy_off, speedup(heavy_off, heavy_on));
  row("mail-spool, WAL on", mail_on, 0);
  row("mail-spool, WAL off", mail_off, speedup(mail_off, mail_on));
  bench::print_table(t, args);
  std::cout << "ring-full degradation: served="
            << (degrade.all_served ? "all" : "DROPPED") << " ring_full="
            << degrade.ring_full << " fallbacks=" << degrade.fallbacks
            << "\n";

  // Machine-readable trail. Pump mode + modelled time: every counter is
  // deterministic, so bench/regress gates on them exactly.
  obs::Registry reg;
  reg.counter("nvmlog/fsync_heavy_ops").add(kFsyncOps);
  reg.counter("nvmlog/mail_msgs").add(kMailMsgs);
  reg.counter("nvmlog/wal_appends_heavy").add(heavy_on.wal_appends);
  reg.counter("nvmlog/wal_appends_mail").add(mail_on.wal_appends);
  reg.counter("nvmlog/fast_acks_heavy").add(heavy_on.fast_acks);
  reg.counter("nvmlog/fast_acks_mail").add(mail_on.fast_acks);
  reg.counter("nvmlog/ring_full_events").add(degrade.ring_full);
  reg.counter("nvmlog/ring_full_fallbacks").add(degrade.fallbacks);
  reg.gauge("nvmlog/heavy_on_p99_ns").set(heavy_on.p99_ns);
  reg.gauge("nvmlog/heavy_off_p99_ns").set(heavy_off.p99_ns);
  reg.gauge("nvmlog/mail_on_p99_ns").set(mail_on.p99_ns);
  reg.gauge("nvmlog/mail_off_p99_ns").set(mail_off.p99_ns);
  reg.gauge("nvmlog/heavy_speedup_x100")
      .set(static_cast<std::int64_t>(speedup(heavy_off, heavy_on) * 100));
  reg.gauge("nvmlog/mail_speedup_x100")
      .set(static_cast<std::int64_t>(speedup(mail_off, mail_on) * 100));
  bench::emit_metrics_json(reg, "nvmlog");

  // Acceptance bounds (ISSUE 8): the log must buy >= 5x on fsync p99, the
  // ON arms must actually take the fast path, and ring-full pressure must
  // degrade gracefully — typed backpressure, fallback acks, no wedge.
  DPC_CHECK_MSG(speedup(heavy_off, heavy_on) >= 5.0,
                "fsync-heavy: WAL buys only "
                    << speedup(heavy_off, heavy_on) << "x p99 ("
                    << heavy_on.p99_ns << "ns on vs " << heavy_off.p99_ns
                    << "ns off)");
  DPC_CHECK_MSG(speedup(mail_off, mail_on) >= 5.0,
                "mail-spool: WAL buys only "
                    << speedup(mail_off, mail_on) << "x p99 ("
                    << mail_on.p99_ns << "ns on vs " << mail_off.p99_ns
                    << "ns off)");
  DPC_CHECK_MSG(heavy_on.fast_acks >= static_cast<std::uint64_t>(kFsyncOps),
                "fsync-heavy ON arm took only " << heavy_on.fast_acks
                                                << " fast acks");
  DPC_CHECK_MSG(heavy_off.fast_acks == 0 && heavy_off.wal_appends == 0,
                "WAL-off arm touched the log");
  DPC_CHECK_MSG(degrade.all_served, "ring-full scenario dropped an op");
  DPC_CHECK_MSG(degrade.ring_full >= 1 && degrade.fallbacks >= 1,
                "tiny log never hit ring-full backpressure (ring_full="
                    << degrade.ring_full << ", fallbacks="
                    << degrade.fallbacks << ")");
  std::cout << "nvm log bench: PASS\n";
  return 0;
}
