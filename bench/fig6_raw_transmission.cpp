// Reproduces Fig. 6: raw host↔DPU transmission IOPS and latency of nvme-fs
// vs virtio-fs under 1…64 concurrent threads, plus the §4.1 bandwidth
// paragraph (1 MB sequential, 16 threads).
//
// Method: the per-op transport profile (DMA transactions and payload bytes)
// is *measured* by driving the real ring protocols against the virtual
// client; those measurements plus the calibration constants become the
// station demands of a closed queueing network solved with exact MVA per
// thread count. The virtio network has a single-server station for the one
// DPFS-HAL thread — the multi-queue contrast the paper draws.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/virtual_client.hpp"
#include "dpu/dpu.hpp"
#include "sim/mva.hpp"

namespace {

using namespace dpc;
using namespace dpc::sim;

struct TransportProfile {
  std::uint64_t dma_ops = 0;      // descriptor + data transactions
  std::uint64_t wire_bytes = 0;   // payload on the link
};

TransportProfile measure_nvme(bool write, std::uint32_t size) {
  core::NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 8;
  o.max_io = 2 << 20;
  core::NvmeRawHarness h(o);
  std::vector<std::byte> buf(size);
  h.counters().reset();
  write ? h.do_write(0, buf) : h.do_read(0, buf);
  return {h.counters().ops(pcie::DmaClass::kDescriptor) +
              h.counters().ops(pcie::DmaClass::kData),
          h.counters().bytes(pcie::DmaClass::kData)};
}

TransportProfile measure_virtio(bool write, std::uint32_t size) {
  core::VirtioRawHarness::Options o;
  o.queue_size = 64;
  o.request_slots = 8;
  o.max_io = 2 << 20;
  core::VirtioRawHarness h(o);
  std::vector<std::byte> buf(size);
  h.counters().reset();
  write ? h.do_write(buf) : h.do_read(buf);
  return {h.counters().ops(pcie::DmaClass::kDescriptor) +
              h.counters().ops(pcie::DmaClass::kData),
          h.counters().bytes(pcie::DmaClass::kData)};
}

struct Point {
  double iops = 0;
  double lat_us = 0;
};

/// Solves the closed network for one transport at one thread count.
Point solve(bool nvme, bool write, const TransportProfile& prof, int threads) {
  using namespace sim::calib;
  ClosedNetwork net;

  // Host-side software stack.
  Nanos host = nvme ? kSyscallVfs + kFsAdapterOp + kHostNvmeCompletion
                    : kSyscallVfs + kFuseLayerOp + kVirtioCompletion;
  if (!nvme && !write) host += kVirtioReadReturnExtra;
  net.add_queueing("host-cpu", kHostPhysicalCores, host);

  // Link: DMA setup phases run on the device's DMA engines; payload bytes
  // serialize on the wire with direction-dependent efficiency.
  net.add_queueing("dma-engines", kPcieDmaEngines,
                   kDmaSetup * static_cast<std::int64_t>(prof.dma_ops));
  net.add_queueing("pcie-wire", 1,
                   pcie_wire_demand(prof.wire_bytes, /*host_to_dpu=*/write));

  // DPU-side processing: 24 cores behind multi-queue nvme-fs; one HAL
  // thread behind the single virtio queue. Past 32 runnable contexts both
  // pay scheduling overhead (the paper's peak-then-decline).
  const Nanos sched = dpu::Dpu::sched_overhead(threads);
  if (nvme) {
    Nanos d = kDpuVirtualClientOp + sched;
    if (write) d += kDpuVirtualClientWriteExtra;
    net.add_queueing("dpu-cores", kDpuCores, d);
  } else {
    const double bounce_gbps =
        write ? kVirtioBounceWriteGBps : kVirtioBounceReadGBps;
    const Nanos copy{static_cast<std::int64_t>(
        static_cast<double>(prof.wire_bytes) / (bounce_gbps * 1e9) * 1e9)};
    const double slow =
        1.0 + kHalSchedFactorPerThread *
                  std::max(0, threads - kDpuSchedSweetSpot);
    const Nanos base = kDpfsHalOp + copy;
    net.add_queueing("dpfs-hal", 1,
                     Nanos{static_cast<std::int64_t>(
                         static_cast<double>(base.ns) * slow)});
  }

  const auto res = net.solve(threads);
  return {res.throughput_ops, res.response.us()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Fig. 6 — raw host-DPU transmission (virtual client)",
      "nvme-fs best 20.6/26.6 us, virtio-fs 36.5/34 us; 2-3x IOPS gap at "
      "high concurrency; peak at 32 threads");

  const std::vector<int> threads = {1, 2, 4, 8, 16, 32, 64};

  for (const std::uint32_t size : {4096u, 8192u}) {
    for (const bool write : {false, true}) {
      const auto np = measure_nvme(write, size);
      const auto vp = measure_virtio(write, size);
      sim::Table t({"threads", "nvme-fs IOPS", "nvme-fs lat(us)",
                    "virtio IOPS", "virtio lat(us)", "IOPS ratio"});
      for (const int n : threads) {
        const auto a = solve(true, write, np, n);
        const auto b = solve(false, write, vp, n);
        t.add_row({std::to_string(n), sim::Table::fmt_si(a.iops),
                   sim::Table::fmt(a.lat_us), sim::Table::fmt_si(b.iops),
                   sim::Table::fmt(b.lat_us),
                   sim::Table::fmt(a.iops / b.iops, 2)});
      }
      std::cout << (write ? "-- write " : "-- read ") << size / 1024
                << "K  (measured per-op: nvme " << np.dma_ops
                << " DMAs, virtio " << vp.dma_ops << " DMAs) --\n";
      bench::print_table(t, args);
    }
  }

  // §4.1 bandwidth paragraph: 1 MB sequential, 16 threads.
  std::cout << "-- 1MB sequential bandwidth @ 16 threads --\n";
  sim::Table bw({"transport", "op", "GB/s", "paper GB/s"});
  const char* paper[] = {"6.3", "5.1", "15.1", "14.3"};
  int pi = 0;
  for (const bool nvme : {false, true}) {
    for (const bool write : {false, true}) {
      const auto prof =
          nvme ? measure_nvme(write, 1 << 20) : measure_virtio(write, 1 << 20);
      const auto p = solve(nvme, write, prof, 16);
      const double gbps = p.iops * (1 << 20) / 1e9;
      bw.add_row({nvme ? "nvme-fs" : "virtio-fs", write ? "write" : "read",
                  sim::Table::fmt(gbps, 1), paper[pi++]});
    }
  }
  bench::print_table(bw, args);

  // Metrics trail: a batch of raw 8K round trips on one harness, so the
  // JSON carries the per-stage trace histograms alongside the tables.
  {
    core::NvmeRawHarness::Options o;
    o.queues = 1;
    o.depth = 8;
    o.max_io = 2 << 20;
    core::NvmeRawHarness h(o);
    std::vector<std::byte> buf(8192);
    for (int i = 0; i < 64; ++i) {
      h.do_write(0, buf);
      h.do_read(0, buf);
    }
    bench::emit_metrics_json(h.metrics(), "fig6_raw_transmission");
  }
  return 0;
}
