// Reproduces Fig. 2(b) vs Fig. 4: the DMA-operation count of one 8 KB write
// (and read) through virtio-fs/DPFS versus nvme-fs/DPC.
//
// Nothing here is asserted from constants — the counts are read off the
// counting DmaEngine after driving the *real* ring protocols.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/virtual_client.hpp"

namespace {

using namespace dpc;

struct Sample {
  std::uint64_t descriptor = 0;
  std::uint64_t data = 0;
  std::uint64_t doorbell = 0;
  std::uint64_t bytes = 0;
  std::uint64_t total() const { return descriptor + data; }
};

Sample run_nvme(bool write, std::uint32_t size) {
  core::NvmeRawHarness::Options o;
  o.queues = 1;
  o.depth = 8;
  o.max_io = 1 << 20;
  core::NvmeRawHarness h(o);
  std::vector<std::byte> buf(size, std::byte{0x5A});
  h.counters().reset();
  if (write)
    h.do_write(0, buf);
  else
    h.do_read(0, buf);
  Sample s;
  s.descriptor = h.counters().ops(pcie::DmaClass::kDescriptor);
  s.data = h.counters().ops(pcie::DmaClass::kData);
  s.doorbell = h.counters().ops(pcie::DmaClass::kDoorbell);
  s.bytes = h.counters().total_bytes();
  return s;
}

Sample run_virtio(bool write, std::uint32_t size) {
  core::VirtioRawHarness::Options o;
  o.queue_size = 64;
  o.request_slots = 8;
  o.max_io = 1 << 20;
  core::VirtioRawHarness h(o);
  std::vector<std::byte> buf(size, std::byte{0x5A});
  h.counters().reset();
  if (write)
    h.do_write(buf);
  else
    h.do_read(buf);
  Sample s;
  s.descriptor = h.counters().ops(pcie::DmaClass::kDescriptor);
  s.data = h.counters().ops(pcie::DmaClass::kData);
  s.doorbell = h.counters().ops(pcie::DmaClass::kDoorbell);
  s.bytes = h.counters().total_bytes();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline("Fig. 2(b) / Fig. 4 — DMA operations per I/O",
                  "virtio-fs needs 11 DMA ops for an 8 KB write; "
                  "nvme-fs needs 4");

  sim::Table t({"transport", "op", "size", "desc DMAs", "data DMAs",
                "total DMAs", "doorbells", "bytes moved"});
  for (const std::uint32_t size : {4096u, 8192u, 65536u}) {
    for (const bool write : {true, false}) {
      const auto n = run_nvme(write, size);
      const auto v = run_virtio(write, size);
      const char* op = write ? "write" : "read";
      t.add_row({"nvme-fs", op, std::to_string(size),
                 std::to_string(n.descriptor), std::to_string(n.data),
                 std::to_string(n.total()), std::to_string(n.doorbell),
                 std::to_string(n.bytes)});
      t.add_row({"virtio-fs", op, std::to_string(size),
                 std::to_string(v.descriptor), std::to_string(v.data),
                 std::to_string(v.total()), std::to_string(v.doorbell),
                 std::to_string(v.bytes)});
    }
  }
  bench::print_table(t, args);

  const auto n8 = run_nvme(true, 8192);
  const auto v8 = run_virtio(true, 8192);
  std::cout << "paper: 8K write = 11 DMAs (virtio-fs) vs 4 (nvme-fs)\n"
            << "measured: " << v8.total() << " vs " << n8.total() << "  ("
            << sim::Table::fmt(
                   static_cast<double>(v8.total()) /
                       static_cast<double>(n8.total()),
                   2)
            << "x)\n";

  // Metrics trail: one harness, a batch of 8K ops, so the JSON carries the
  // per-stage trace histograms (submit→fetch→dispatch→backend→cqe→reap).
  {
    core::NvmeRawHarness::Options o;
    o.queues = 1;
    o.depth = 8;
    o.max_io = 1 << 20;
    core::NvmeRawHarness h(o);
    std::vector<std::byte> buf(8192, std::byte{0x5A});
    for (int i = 0; i < 64; ++i) {
      h.do_write(0, buf);
      h.do_read(0, buf);
    }
    bench::emit_metrics_json(h.metrics(), "fig2_fig4_dma_count");
  }
  return 0;
}
