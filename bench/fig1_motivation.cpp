// Reproduces Fig. 1 (motivation): a standard NFS client vs an optimized NFS
// client (client-side EC + I/O forwarding elimination + delegations + DIO)
// on 8K random read, random write and a 70/30 mixed workload. The paper's
// point: ~4x the IOPS for ~4-6x the CPU cores — the "datacenter tax".
#include <iostream>

#include "dfs_model.hpp"

namespace {

using namespace dpc;
using namespace dpc::bench;

constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr int kThreads = 32;
constexpr int kMeasureOps = 400;

/// Bench-wide metrics registry: every measured client pools its counters
/// here, emitted as BENCH_fig1_motivation.json.
dpc::obs::Registry g_registry;

struct ClientRun {
  MeanProfile read_prof;
  MeanProfile write_prof;
};

ClientRun measure_client(dfs::MdsCluster& mds, dfs::DataServers& ds,
                         const dfs::ClientConfig& cfg, dfs::ClientId id) {
  dfs::DfsClient client(id, mds, ds, cfg, &g_registry);
  // Several files so entry-MDS → home-MDS forwarding averages over homes.
  constexpr int kFiles = 8;
  std::vector<dfs::Ino> inos;
  sim::Rng rng(id);
  std::vector<std::byte> buf(kIoSize);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));
  for (int f = 0; f < kFiles; ++f) {
    const auto created = client.create(
        "/fig1-" + std::to_string(id) + "-" + std::to_string(f), 1ULL << 30);
    DPC_CHECK(created.ok());
    inos.push_back(created.ino);
    sim::WorkloadGen warm({sim::Pattern::kSeqWrite, kIoSize, 1 << 20}, id);
    for (int i = 0; i < 16; ++i)
      DPC_CHECK(client.write(created.ino, warm.next().offset, buf).ok());
  }

  ClientRun run;
  sim::WorkloadGen wgen({sim::Pattern::kRandWrite, kIoSize, 1 << 20}, id);
  run.write_prof = measure(kMeasureOps, [&](int i) {
    return client.write(inos[static_cast<std::size_t>(i % kFiles)],
                        wgen.next().offset, buf);
  });
  sim::WorkloadGen rgen({sim::Pattern::kRandRead, kIoSize, 1 << 20}, id);
  std::vector<std::byte> out(kIoSize);
  run.read_prof = measure(kMeasureOps, [&](int i) {
    return client.read(inos[static_cast<std::size_t>(i % kFiles)],
                       rgen.next().offset, out);
  });
  return run;
}

/// 70/30 mix: blend the per-op profiles.
MeanProfile blend(const MeanProfile& rd, const MeanProfile& wr,
                  double read_frac) {
  MeanProfile mix;
  mix.ops = 1000;
  auto scale_add = [&](const MeanProfile& src, double f) {
    const double per_op = f * mix.ops / std::max(1, src.ops);
    dfs::OpProfile p = src.total;
    auto s = [&](sim::Nanos dfs::OpProfile::* field) {
      mix.total.*field += sim::Nanos{static_cast<std::int64_t>(
          static_cast<double>((p.*field).ns) * per_op)};
    };
    s(&dfs::OpProfile::host_cpu);
    s(&dfs::OpProfile::dpu_cpu);
    s(&dfs::OpProfile::pcie);
    s(&dfs::OpProfile::mds);
    s(&dfs::OpProfile::ds);
    s(&dfs::OpProfile::net);
  };
  scale_add(rd, read_frac);
  scale_add(wr, 1.0 - read_frac);
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Fig. 1 — standard vs optimized NFS client (the motivation)",
      "optimization buys ~4x IOPS at ~4-6x the CPU cores");

  dfs::MdsCluster mds;
  dfs::DataServers ds;
  const auto nfs =
      measure_client(mds, ds, dfs::ClientConfig::standard_nfs(), 1);
  const auto opt = measure_client(mds, ds, dfs::ClientConfig::optimized(), 2);

  sim::Table t({"workload", "NFS IOPS", "NFS cores", "NFS+opt IOPS",
                "NFS+opt cores", "IOPS x", "cores x"});
  struct Case {
    const char* name;
    MeanProfile n, o;
    bool is_write;
  };
  const std::vector<Case> cases = {
      {"8K rand read", nfs.read_prof, opt.read_prof, false},
      {"8K rand write", nfs.write_prof, opt.write_prof, true},
      {"8K mix (70r/30w)", blend(nfs.read_prof, nfs.write_prof, 0.7),
       blend(opt.read_prof, opt.write_prof, 0.7), true},
  };
  for (const auto& c : cases) {
    const auto pn = solve_dfs(dfs::ClientConfig::standard_nfs(), c.n, kIoSize,
                              c.is_write, kThreads);
    const auto po = solve_dfs(dfs::ClientConfig::optimized(), c.o, kIoSize,
                              c.is_write, kThreads);
    t.add_row({c.name, sim::Table::fmt_si(pn.ops),
               sim::Table::fmt(pn.host_cores, 1), sim::Table::fmt_si(po.ops),
               sim::Table::fmt(po.host_cores, 1),
               sim::Table::fmt(po.ops / pn.ops, 1) + "x",
               sim::Table::fmt(po.host_cores / pn.host_cores, 1) + "x"});
  }
  bench::print_table(t, args);
  std::cout << "paper: optimized client ~4x IOPS, ~4-6x CPU cores\n";
  bench::emit_metrics_json(g_registry, "fig1_motivation");
  return 0;
}
