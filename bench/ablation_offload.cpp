// Ablations over the design choices DESIGN.md §6 calls out, measured on
// the functional layer:
//   1. redundancy: RS(4,2) delta-parity RMW vs full-stripe writes vs
//      3-way replication — shard ops and bytes per user write;
//   2. flush-path compression: wire bytes saved per page for different
//      page contents, and where the compute runs (host vs DPU model);
//   3. EC locus: host vs DPU encode cost for the Fig. 1/9 stripe sizes.
#include <iostream>

#include "bench_common.hpp"
#include "dfs/client.hpp"
#include "dpu/compress.hpp"
#include "ec/reed_solomon.hpp"
#include "sim/rng.hpp"

namespace {

using namespace dpc;

/// Bench-wide metrics registry: the ablation clients pool their counters
/// here, emitted as BENCH_ablation_offload.json.
obs::Registry g_registry;

std::vector<std::byte> bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_below(256));
  return v;
}

void redundancy_ablation(const bench::BenchArgs& args) {
  std::cout << "-- redundancy: per-write data-server cost --\n";
  dfs::MdsCluster mds;
  dfs::DataServers ds;

  auto run = [&](const char* name, const dfs::ClientConfig& cfg,
                 std::uint32_t io, std::uint64_t off, sim::Table& t) {
    static int seq = 0;
    dfs::DfsClient client(static_cast<dfs::ClientId>(++seq), mds, ds,
                          cfg, &g_registry);
    const auto c =
        client.create("/abl-" + std::to_string(seq), 1 << 20);
    const auto data = bytes(io, 1);
    client.write(c.ino, off, data);  // warm (allocates, takes delegation)
    const auto w = client.write(c.ino, off, data);
    t.add_row({name, std::to_string(io / 1024) + "K",
               std::to_string(w.prof.ds_ops),
               sim::Table::fmt(w.prof.ds.us(), 1),
               sim::Table::fmt(w.prof.net.us(), 1)});
  };

  sim::Table t({"scheme", "write", "shard ops", "server us", "net us"});
  auto ec = dfs::ClientConfig::optimized();
  auto repl = dfs::ClientConfig::optimized();
  repl.use_replication = true;
  run("RS(4,2) sub-stripe RMW", ec, 8 * 1024, 0, t);
  run("RS(4,2) full stripe", ec, 32 * 1024, 0, t);
  run("3-replication", repl, 8 * 1024, 0, t);
  run("3-replication (32K)", repl, 32 * 1024, 0, t);
  bench::print_table(t, args);
}

void compression_ablation(const bench::BenchArgs& args) {
  std::cout << "-- flush-path compression: 4K pages --\n";
  sim::Table t({"content", "packed bytes", "ratio", "DPU cost us",
                "host cost us"});
  struct Case {
    const char* name;
    std::vector<std::byte> page;
  };
  std::vector<Case> cases;
  cases.push_back({"zero page", std::vector<std::byte>(4096, std::byte{0})});
  {
    std::vector<std::byte> text(4096);
    const char* phrase = "INFO request served in 12ms path=/api/v1/items ";
    for (std::size_t i = 0; i < text.size(); ++i)
      text[i] = static_cast<std::byte>(phrase[i % 47]);
    cases.push_back({"log text", std::move(text)});
  }
  cases.push_back({"random", bytes(4096, 9)});

  for (const auto& c : cases) {
    std::vector<std::byte> packed;
    const auto n = dpu::lz_compress(c.page, packed);
    t.add_row({c.name, std::to_string(n),
               sim::Table::fmt(static_cast<double>(c.page.size()) /
                                   static_cast<double>(n),
                               1) +
                   "x",
               sim::Table::fmt(dpu::dpu_compress_cost(c.page.size()).us(), 2),
               sim::Table::fmt(dpu::host_compress_cost(c.page.size()).us(),
                               2)});
  }
  bench::print_table(t, args);
}

void ec_locus_ablation(const bench::BenchArgs& args) {
  std::cout << "-- EC compute locus (RS(4,2) stripes) --\n";
  sim::Table t({"stripe", "host encode us", "DPU engine us", "speedup"});
  for (const std::size_t stripe : {32u * 1024, 128u * 1024, 1u << 20}) {
    const auto h = ec::ReedSolomon::host_encode_cost(stripe);
    const auto d = ec::ReedSolomon::dpu_encode_cost(stripe);
    t.add_row({std::to_string(stripe / 1024) + "K",
               sim::Table::fmt(h.us(), 1), sim::Table::fmt(d.us(), 1),
               sim::Table::fmt(static_cast<double>(h.ns) /
                                   static_cast<double>(d.ns),
                               1) +
                   "x"});
  }
  bench::print_table(t, args);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline("Ablations — redundancy, compression, EC locus",
                  "the DESIGN.md §6 design-choice studies");
  redundancy_ablation(args);
  compression_ablation(args);
  ec_locus_ablation(args);
  bench::emit_metrics_json(g_registry, "ablation_offload");
  return 0;
}
