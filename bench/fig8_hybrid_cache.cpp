// Reproduces Fig. 8: contribution of caching to random IOPS — direct vs
// buffered — for local Ext4 (kernel page cache) and KVFS (the hybrid cache
// with its DPU-offloaded control plane), plus the §4.2 prefetch claim:
// "we actively prefetch data for sequential reads, boosting read IOPS by
// 100x with a single thread and 3x with 32 threads".
//
// Phase 1 (functional): drives the real hybrid cache — host data plane,
// PCIe-atomic locks, DPU flusher and sequential prefetcher — and the real
// kernel-style page cache, measuring hit rates, absorbed writes, flush
// traffic and prefetch volume.
// Phase 2 (timing): measured rates parameterize the MVA models from Fig. 7;
// buffered paths add the flush / prefetch pipeline stations.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/dpc_system.hpp"
#include "hostfs/ext4like.hpp"
#include "sim/mva.hpp"
#include "sim/rng.hpp"
#include "sim/workload.hpp"

namespace {

using namespace dpc;
using namespace dpc::sim;

constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr std::uint64_t kFileSize = 64ULL << 20;

struct Rates {
  double kvfs_write_absorb = 0;   // buffered writes absorbed by host cache
  double kvfs_flush_pages_per_op = 0;
  double kvfs_rand_read_hit = 0;  // with 90/10 locality
  double kvfs_seq_read_hit = 0;   // with DPU prefetch
  double prefetch_overfetch = 1;  // pages prefetched per page consumed
  double ext4_rand_read_hit = 0;
  double ext4_write_absorb = 0;
};

Rates run_functional() {
  Rates r;
  std::vector<std::byte> buf(kIoSize, std::byte{0x3C});

  // ---------- KVFS / hybrid cache ----------
  {
    core::DpcOptions o;
    o.queues = 2;
    o.queue_depth = 8;
    o.max_io = 64 * 1024;
    o.with_dfs = false;
    o.cache_geo = {4096, cache::CacheMode::kWrite, 4096, 256};  // 16 MB
    core::DpcSystem sys(o);
    sys.start_dpu();
    const auto ino = sys.create(kvfs::kRootIno, "f").ino;
    sys.write(ino, kFileSize - kIoSize, buf, true);  // size the file

    // Buffered random writes, 90% to a 10% hot region (fits the cache).
    WorkloadSpec wspec{Pattern::kRandWrite, kIoSize, kFileSize, 1, 0.7,
                       0.9, 0.1, 7};
    WorkloadGen wgen(wspec, 0);
    constexpr int kOps = 4000;
    int absorbed = 0;
    for (int i = 0; i < kOps; ++i) {
      const auto op = wgen.next();
      const auto res = sys.write(ino, op.offset, buf, false);
      absorbed += res.cache_hit ? 1 : 0;
    }
    sys.fsync(ino);
    r.kvfs_write_absorb = static_cast<double>(absorbed) / kOps;
    r.kvfs_flush_pages_per_op =
        static_cast<double>(sys.control_stats()->pages_flushed) / kOps;

    // Buffered random reads over the same locality.
    sys.host_cache();  // (stats reset happens on the plane)
    sys.cache_stats();
    WorkloadGen rgen({Pattern::kRandRead, kIoSize, kFileSize, 1, 0.7, 0.9,
                      0.1, 8},
                     1);
    const auto hits0 = sys.cache_stats()->read_hits.load();
    const auto miss0 = sys.cache_stats()->read_misses.load();
    std::vector<std::byte> out(kIoSize);
    for (int i = 0; i < kOps; ++i) {
      const auto op = rgen.next();
      sys.read(ino, op.offset, out, false);
    }
    const auto hits = sys.cache_stats()->read_hits.load() - hits0;
    const auto miss = sys.cache_stats()->read_misses.load() - miss0;
    r.kvfs_rand_read_hit =
        static_cast<double>(hits) / static_cast<double>(hits + miss);

    // Sequential reads: the DPU prefetcher should carry nearly all of them.
    const auto f2 = sys.create(kvfs::kRootIno, "seq").ino;
    std::vector<std::byte> big(1 << 20, std::byte{0x5A});
    for (int mb = 0; mb < 64; ++mb)
      sys.write(f2, static_cast<std::uint64_t>(mb) << 20, big, true);
    const auto h0 = sys.cache_stats()->read_hits.load();
    const auto m0 = sys.cache_stats()->read_misses.load();
    const auto pf0 = sys.control_stats()->pages_prefetched.load();
    const int seq_ops = (64 << 20) / static_cast<int>(kIoSize);
    for (int i = 0; i < seq_ops; ++i)
      sys.read(f2, static_cast<std::uint64_t>(i) * kIoSize, out, false);
    const auto sh = sys.cache_stats()->read_hits.load() - h0;
    const auto sm = sys.cache_stats()->read_misses.load() - m0;
    const auto pf = sys.control_stats()->pages_prefetched - pf0;
    r.kvfs_seq_read_hit =
        static_cast<double>(sh) / static_cast<double>(sh + sm);
    const double pages_consumed = seq_ops * (kIoSize / 4096.0);
    r.prefetch_overfetch =
        pf > 0 ? static_cast<double>(pf) / pages_consumed : 1.0;
    sys.stop_dpu();
    bench::emit_metrics_json(sys.metrics(), "fig8_hybrid_cache");
  }

  // ---------- Ext4 / kernel page cache ----------
  {
    ssd::SsdModel disk;
    hostfs::Ext4likeOptions o;
    o.total_blocks = 1 << 16;
    o.page_cache_pages = 4096;  // 16 MB
    hostfs::Ext4like ext4(disk, o);
    const auto ino = ext4.create(hostfs::kRootIno, "f", 0644).value;
    WorkloadSpec wspec{Pattern::kRandWrite, kIoSize, kFileSize, 1, 0.7,
                       0.9, 0.1, 9};
    WorkloadGen wgen(wspec, 0);
    constexpr int kOps = 4000;
    std::uint32_t dev_writes = 0;
    for (int i = 0; i < kOps; ++i) {
      const auto op = wgen.next();
      dev_writes += ext4.write(ino, op.offset, buf, false).cost.dev_writes;
    }
    // Absorption = fraction of data-block writes the cache swallowed.
    r.ext4_write_absorb =
        1.0 - std::min(1.0, static_cast<double>(dev_writes) / (kOps * 2.0));

    WorkloadGen rgen({Pattern::kRandRead, kIoSize, kFileSize, 1, 0.7, 0.9,
                      0.1, 10},
                     1);
    const auto h0 = ext4.page_cache().hits();
    const auto m0 = ext4.page_cache().misses();
    std::vector<std::byte> out(kIoSize);
    for (int i = 0; i < kOps; ++i) {
      const auto op = rgen.next();
      ext4.read(ino, op.offset, out, false);
    }
    const auto h = ext4.page_cache().hits() - h0;
    const auto m = ext4.page_cache().misses() - m0;
    r.ext4_rand_read_hit =
        static_cast<double>(h) / static_cast<double>(h + m);
  }
  return r;
}

// ---- timing models -------------------------------------------------------

double direct_kvfs_iops(bool write, int threads) {
  using namespace sim::calib;
  ClosedNetwork net;
  net.add_queueing("host-cpu", kHostHwThreads,
                   kSyscallVfs + kFsAdapterOp + kHostNvmeCompletion +
                       kHostDataPathOp);
  net.add_queueing("dma-engines", kPcieDmaEngines, kDmaSetup * 4);
  net.add_queueing("pcie-wire", 1, pcie_wire_demand(kIoSize, write));
  net.add_queueing("dpu-cores", kDpuCores,
                   write ? kDpuKvfsWriteOp : kDpuKvfsReadOp);
  net.add_queueing("kv-servers", kKvServers, kKvServerOp);
  net.add_delay("kv-access", write ? kKvWriteLatency : kKvReadLatency);
  return net.solve(threads).throughput_ops;
}

double direct_ext4_iops(bool write, int threads) {
  using namespace sim::calib;
  ClosedNetwork net;
  net.add_queueing("host-cpu", kHostHwThreads,
                   kExt4KernelOp + (write ? kExt4WriteContentionPerThread
                                          : kExt4ReadContentionPerThread) *
                                       threads);
  net.add_queueing("ssd", ssd::SsdModel::channels(!write),
                   ssd::SsdModel::random_service(!write, kIoSize));
  return net.solve(threads).throughput_ops;
}

/// Buffered path: hit fraction h served by the host cache; misses pay the
/// direct path. The prefetch-fill (reads) / flush-drain (writes) pipeline
/// runs *asynchronously* on the DPU, so it never appears in the reader's
/// response time — it only caps sustainable throughput.
double buffered_kvfs_iops(bool write, double hit, double flush_pages_per_op,
                          double overfetch, int threads) {
  using namespace sim::calib;
  const double miss = 1.0 - hit;
  auto scale = [&](Nanos d, double f) {
    return Nanos{static_cast<std::int64_t>(static_cast<double>(d.ns) * f)};
  };

  // Foreground (response-path) network: cache hits + the rare miss.
  ClosedNetwork net;
  const Nanos host{static_cast<std::int64_t>(
      static_cast<double>((kSyscallVfs + kHostCacheHitOp).ns) +
      miss * static_cast<double>((kFsAdapterOp + kHostNvmeCompletion +
                                  kHostDataPathOp)
                                     .ns))};
  net.add_queueing("host-cpu", kHostHwThreads, host);
  net.add_queueing("dma-engines", kPcieDmaEngines, scale(kDmaSetup * 4, miss));
  net.add_queueing("pcie-wire", 1, scale(pcie_wire_demand(kIoSize, write), miss));
  net.add_queueing("dpu-cores", kDpuCores,
                   scale(write ? kDpuKvfsWriteOp : kDpuKvfsReadOp, miss));
  net.add_delay("kv-access",
                scale(write ? kKvWriteLatency : kKvReadLatency, miss));
  double x = net.solve(threads).throughput_ops;

  // Background pipeline capacity: every consumed page crosses
  // KV ↔ DPU ↔ host-cache exactly once.
  const double pipeline_pages =
      write ? flush_pages_per_op : overfetch * (kIoSize / 4096.0);
  if (pipeline_pages > 0) {
    const double bytes = pipeline_pages * 4096.0;
    const double kv_gbps = (write ? kKvWriteGBps : kKvReadGBps) *
                           (write ? 1.0 : kPrefetchKvEfficiency);
    const double kv_wire_us = bytes / (kv_gbps * 1e9) * 1e6;
    const double pcie_us =
        static_cast<double>(pcie_wire_demand(
                                static_cast<std::uint64_t>(bytes), !write)
                                .ns) /
        1e3;
    const double dpu_us =
        static_cast<double>(
            scale(write ? kDpuFlushPage : kDpuPrefetchPage, pipeline_pages)
                .ns) /
        1e3 / kDpuCores;
    const double cap =
        1e6 / std::max({kv_wire_us, pcie_us, dpu_us, 1e-9});
    x = std::min(x, cap);
  }
  return x;
}

double buffered_ext4_iops(bool write, double hit_or_absorb, int threads) {
  using namespace sim::calib;
  const double miss = 1.0 - hit_or_absorb;
  ClosedNetwork net;
  net.add_queueing("host-cpu", kHostHwThreads,
                   kExt4KernelOp + (write ? kExt4WriteContentionPerThread
                                          : kExt4ReadContentionPerThread) *
                                       threads);
  const auto svc = ssd::SsdModel::random_service(!write, kIoSize);
  net.add_queueing("ssd", ssd::SsdModel::channels(!write),
                   Nanos{static_cast<std::int64_t>(
                       static_cast<double>(svc.ns) * miss)});
  return net.solve(threads).throughput_ops;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Fig. 8 — hybrid cache contribution to random IOPS",
      "buffered >> direct for both systems; DPU prefetch boosts sequential "
      "reads 100x @1 thread, 3x @32 threads");

  const auto r = run_functional();
  std::cout << "measured: kvfs write-absorb " << sim::Table::fmt(100 * r.kvfs_write_absorb)
            << "%, flush " << sim::Table::fmt(r.kvfs_flush_pages_per_op, 2)
            << " pages/op, rand-read hit " << sim::Table::fmt(100 * r.kvfs_rand_read_hit)
            << "%, seq-read hit " << sim::Table::fmt(100 * r.kvfs_seq_read_hit)
            << "%, overfetch " << sim::Table::fmt(r.prefetch_overfetch, 2)
            << "; ext4 rand-read hit " << sim::Table::fmt(100 * r.ext4_rand_read_hit)
            << "%, write-absorb " << sim::Table::fmt(100 * r.ext4_write_absorb)
            << "%\n\n";

  sim::Table t({"system", "workload", "threads", "direct IOPS",
                "buffered IOPS", "speedup"});
  for (const int n : {1, 32}) {
    {
      const double d = direct_ext4_iops(false, n);
      const double b = buffered_ext4_iops(false, r.ext4_rand_read_hit, n);
      t.add_row({"ext4", "rand-read", std::to_string(n),
                 sim::Table::fmt_si(d), sim::Table::fmt_si(b),
                 sim::Table::fmt(b / d, 1) + "x"});
    }
    {
      const double d = direct_ext4_iops(true, n);
      const double b = buffered_ext4_iops(true, r.ext4_write_absorb, n);
      t.add_row({"ext4", "rand-write", std::to_string(n),
                 sim::Table::fmt_si(d), sim::Table::fmt_si(b),
                 sim::Table::fmt(b / d, 1) + "x"});
    }
    {
      const double d = direct_kvfs_iops(false, n);
      const double b = buffered_kvfs_iops(false, r.kvfs_rand_read_hit, 0,
                                          r.prefetch_overfetch, n);
      t.add_row({"kvfs", "rand-read", std::to_string(n),
                 sim::Table::fmt_si(d), sim::Table::fmt_si(b),
                 sim::Table::fmt(b / d, 1) + "x"});
    }
    {
      const double d = direct_kvfs_iops(true, n);
      const double b = buffered_kvfs_iops(true, r.kvfs_write_absorb,
                                          r.kvfs_flush_pages_per_op,
                                          r.prefetch_overfetch, n);
      t.add_row({"kvfs", "rand-write", std::to_string(n),
                 sim::Table::fmt_si(d), sim::Table::fmt_si(b),
                 sim::Table::fmt(b / d, 1) + "x"});
    }
  }
  bench::print_table(t, args);

  std::cout << "-- sequential read with DPU prefetch (the 100x / 3x claim) "
               "--\n";
  sim::Table t2({"threads", "direct IOPS", "prefetched IOPS", "speedup",
                 "paper"});
  for (const int n : {1, 32}) {
    const double d = direct_kvfs_iops(false, n);
    const double b = buffered_kvfs_iops(false, r.kvfs_seq_read_hit, 0,
                                        r.prefetch_overfetch, n);
    t2.add_row({std::to_string(n), sim::Table::fmt_si(d),
                sim::Table::fmt_si(b), sim::Table::fmt(b / d, 1) + "x",
                n == 1 ? "100x" : "3x"});
  }
  bench::print_table(t2, args);
  return 0;
}
