// QoS antagonist bench: victim-tenant tail latency with and without the
// DPU-side isolation machinery (admission control + DRR fair scheduling +
// graceful degradation), under two antagonists sharing the victim's
// nvme-fs queue:
//
//   * metadata storm — threads hammering create/lookup as a background
//     tenant, each op charged one page so the storm is visible to the
//     scheduler;
//   * scrub-adversarial bit-rot — bulk direct writes as a background
//     tenant while planted KV corruption keeps the integrity scrubber's
//     queue full, with scrubber polls riding the same DPU capacity.
//
// Three arms per antagonist: victim solo (baseline p99), isolation ON
// (victim kGuaranteed weight 8, antagonist kBackground weight 1, global
// admission caps armed), isolation OFF (fair_sched=false → FIFO dispatch,
// caps effectively unarmed, but virtual-time wait accounting still live so
// queueing delay is measured). Asserts the acceptance bounds:
//
//   ON  : victim p99 ≤ 2× solo (both antagonists)
//   OFF : victim p99 ≥ 5× solo (metadata storm)
//
// Emits BENCH_qos.json ("qos_bench/…" gauges: p99s, ratios ×100, throttle
// and scrub-yield counts) for the ci.sh qos stage.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "core/dpc_system.hpp"
#include "dpu/qos.hpp"
#include "dpu/scrubber.hpp"
#include "kv/kv_store.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

using namespace dpc;

constexpr nvme::TenantId kVictim = 1;
constexpr nvme::TenantId kAntagonist = 2;
constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr std::uint64_t kFileBytes = 64 * kIoSize;
constexpr int kVictimOps = 320;
constexpr int kAntagonistThreads = 12;

enum class Isolation { kOn, kOff };
enum class Antagonist { kNone, kMetaStorm, kScrubBitrot };

core::DpcOptions make_opts(Isolation iso, bool scrubber) {
  core::DpcOptions opts;
  opts.queues = 1;  // victim and antagonist share one nvme-fs queue pair
  opts.queue_depth = 64;
  opts.max_io = 256 * 1024;
  opts.enable_cache = false;  // every op crosses the TGT staging queue
  opts.with_dfs = false;
  opts.enable_scrubber = scrubber;
  opts.scrub.items_per_pass = 32;
  opts.scrub.pace = sim::micros(50.0);
  // The DPU runs as an independent agent (worker pool) so real staging
  // backlog forms between its passes; generous wall deadline for the
  // oversubscribed bench box.
  opts.nvme_timeout_ms = 2000;

  opts.qos.enabled = true;
  auto& victim = opts.qos.tenants[dpu::QosManager::slot(kVictim)];
  auto& antag = opts.qos.tenants[dpu::QosManager::slot(kAntagonist)];
  if (iso == Isolation::kOn) {
    victim.cls = dpu::TenantClass::kGuaranteed;
    victim.weight = 8;
    antag.cls = dpu::TenantClass::kBackground;
    antag.weight = 1;
    opts.qos.max_queued_cmds = 8;
    opts.qos.overload_highwater = 4;
    opts.qos.max_queue_delay = sim::micros(200.0);
  } else {
    // FIFO dispatch, caps far above what the workload can stage: queueing
    // delay is measured (virtual-time accounting stays live) but unbounded.
    opts.qos.fair_sched = false;
    opts.qos.max_queued_cmds = 1u << 20;
    opts.qos.max_inflight_bytes = 1ull << 40;
    opts.qos.overload_highwater = 1u << 20;
  }
  return opts;
}

struct ArmResult {
  std::int64_t p99_ns = 0;
  std::int64_t p50_ns = 0;
  std::uint64_t throttled = 0;     // "qos/throttled" admission rejections
  std::uint64_t shed = 0;          // "qos/shed" degradation drops
  std::uint64_t scrub_yields = 0;  // "scrub/yields" passes surrendered
  std::uint64_t antagonist_ops = 0;
};

std::int64_t percentile_ns(std::vector<std::int64_t>& v, double p) {
  DPC_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) / 100.0);
  return v[idx];
}

ArmResult run_arm(Isolation iso, Antagonist antagonist) {
  const bool scrub = antagonist == Antagonist::kScrubBitrot;
  core::DpcSystem sys(make_opts(iso, scrub));

  // Victim's file, written direct so the pages live in KVFS.
  core::DpcSystem::set_thread_tenant(kVictim);
  const auto vf = sys.create(kvfs::kRootIno, "victim.dat");
  DPC_CHECK(vf.ok());
  {
    sim::Rng rng(0x9e05'beef);
    std::vector<std::byte> buf(kIoSize);
    for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));
    for (std::uint64_t at = 0; at < kFileBytes; at += kIoSize)
      DPC_CHECK(sys.write(vf.ino, at, buf, /*direct=*/true).ok());
  }

  if (scrub) {
    // Plant bit-rot on a sacrificial file's data blocks so every scrub
    // pass has detection work for the whole run — but never on the
    // victim's extents or the namespace metadata, whose unredundant
    // damage would (correctly) EIO the foreground reads this bench
    // measures. Snapshot-diff isolates the rot file's block keys.
    const auto before = sys.kv_store().keys();
    std::unordered_set<std::string> seen(before.begin(), before.end());
    const auto rf = sys.create(kvfs::kRootIno, "rot.dat");
    DPC_CHECK(rf.ok());
    std::vector<std::byte> junk(kIoSize, std::byte{0x5A});
    for (std::uint64_t at = 0; at < kFileBytes; at += kIoSize)
      DPC_CHECK(sys.write(rf.ino, at, junk, /*direct=*/true).ok());
    std::size_t hits = 0;
    for (const auto& key : sys.kv_store().keys()) {
      if (hits >= 64) break;
      if (seen.count(key) != 0 || key.empty() || key[0] != 'B') continue;
      hits += sys.kv_store().corrupt_value(key, hits % 8) ? 1 : 0;
    }
    DPC_CHECK_MSG(hits > 0, "no rot-file blocks found to corrupt");
  }

  // Hand the queues to the DPU worker pool: submitters now only spin on
  // their own CQE while the device ingests doorbell-delimited bursts.
  // Without this, every submitter pumps the TGT inline and drains the
  // staging queue before any backlog (and hence any measurable queueing
  // delay) can form.
  sys.start_dpu();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> antagonist_ops{0};
  std::vector<std::thread> antagonists;
  if (antagonist != Antagonist::kNone) {
    for (int t = 0; t < kAntagonistThreads; ++t) {
      antagonists.emplace_back([&, t] {
        core::DpcSystem::set_thread_tenant(kAntagonist);
        sim::Rng rng(0xa417'0000 + static_cast<std::uint64_t>(t));
        std::vector<std::byte> bulk(64 * 1024,
                                    static_cast<std::byte>(t + 1));
        std::uint64_t seq = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (antagonist == Antagonist::kMetaStorm) {
            // Storm of page-charged metadata ops: create + lookups.
            const std::string name =
                "storm_" + std::to_string(t) + "_" + std::to_string(seq++);
            (void)sys.create(kvfs::kRootIno, name);
            for (int i = 0; i < 3; ++i) (void)sys.lookup(kvfs::kRootIno, name);
          } else {
            // Bulk direct writes keep the staging queue deep while the
            // scrubber fights the planted corruption for DPU time.
            (void)sys.write(vf.ino, kFileBytes + (seq++ % 16) * 65536, bulk,
                            /*direct=*/true);
            if (sys.scrubber() != nullptr && seq % 4 == 0)
              (void)sys.scrubber()->poll();
          }
          antagonist_ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  // Victim: direct 8K reads over its file; per-op modelled cost is the
  // figure of merit (includes the TGT staging wait and any throttle
  // backoff the retry path charged).
  std::vector<std::int64_t> costs;
  costs.reserve(kVictimOps);
  {
    sim::Rng rng(0x7157'1234);
    std::vector<std::byte> dst(kIoSize);
    for (int i = 0; i < kVictimOps; ++i) {
      const std::uint64_t off =
          rng.next_below(kFileBytes / kIoSize) * kIoSize;
      const auto io = sys.read(vf.ino, off, dst, /*direct=*/true);
      DPC_CHECK_MSG(io.ok(), "victim read failed err="
                                 << io.err << " iso=" << (iso == Isolation::kOn)
                                 << " antagonist="
                                 << static_cast<int>(antagonist) << " op="
                                 << i);
      costs.push_back(io.cost.ns);
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& th : antagonists) th.join();
  sys.stop_dpu();

  ArmResult r;
  r.p99_ns = percentile_ns(costs, 99.0);
  r.p50_ns = percentile_ns(costs, 50.0);
  r.throttled = sys.metrics().counter("qos/throttled").load();
  r.shed = sys.metrics().counter("qos/shed").load();
  r.scrub_yields = sys.metrics().counter("scrub/yields").load();
  r.antagonist_ops = antagonist_ops.load();
  return r;
}

double ratio(const ArmResult& arm, const ArmResult& solo) {
  return static_cast<double>(arm.p99_ns) /
         static_cast<double>(std::max<std::int64_t>(1, solo.p99_ns));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline("QoS antagonist sweep",
                  "overload robustness: per-tenant isolation under "
                  "metadata-storm and scrub-adversarial load");

  const ArmResult solo = run_arm(Isolation::kOn, Antagonist::kNone);
  const ArmResult meta_on = run_arm(Isolation::kOn, Antagonist::kMetaStorm);
  const ArmResult meta_off = run_arm(Isolation::kOff, Antagonist::kMetaStorm);
  const ArmResult scrub_on =
      run_arm(Isolation::kOn, Antagonist::kScrubBitrot);
  const ArmResult scrub_off =
      run_arm(Isolation::kOff, Antagonist::kScrubBitrot);

  sim::Table t({"arm", "victim p50 (us)", "victim p99 (us)", "p99 / solo",
                "throttled", "shed", "scrub yields", "antagonist ops"});
  const auto row = [&](const char* name, const ArmResult& a) {
    t.add_row({name, sim::Table::fmt(a.p50_ns / 1000.0),
               sim::Table::fmt(a.p99_ns / 1000.0),
               sim::Table::fmt(ratio(a, solo)), std::to_string(a.throttled),
               std::to_string(a.shed), std::to_string(a.scrub_yields),
               std::to_string(a.antagonist_ops)});
  };
  row("victim solo", solo);
  row("meta storm, isolation ON", meta_on);
  row("meta storm, isolation OFF", meta_off);
  row("scrub bit-rot, isolation ON", scrub_on);
  row("scrub bit-rot, isolation OFF", scrub_off);
  bench::print_table(t, args);

  // Machine-readable trail for the ci.sh qos stage.
  obs::Registry reg;
  reg.gauge("qos_bench/victim_solo_p99_ns").set(solo.p99_ns);
  reg.gauge("qos_bench/victim_meta_on_p99_ns").set(meta_on.p99_ns);
  reg.gauge("qos_bench/victim_meta_off_p99_ns").set(meta_off.p99_ns);
  reg.gauge("qos_bench/victim_scrub_on_p99_ns").set(scrub_on.p99_ns);
  reg.gauge("qos_bench/victim_scrub_off_p99_ns").set(scrub_off.p99_ns);
  reg.gauge("qos_bench/meta_on_ratio_x100")
      .set(static_cast<std::int64_t>(ratio(meta_on, solo) * 100));
  reg.gauge("qos_bench/meta_off_ratio_x100")
      .set(static_cast<std::int64_t>(ratio(meta_off, solo) * 100));
  reg.gauge("qos_bench/scrub_on_ratio_x100")
      .set(static_cast<std::int64_t>(ratio(scrub_on, solo) * 100));
  reg.gauge("qos_bench/scrub_off_ratio_x100")
      .set(static_cast<std::int64_t>(ratio(scrub_off, solo) * 100));
  reg.gauge("qos_bench/meta_on_throttled")
      .set(static_cast<std::int64_t>(meta_on.throttled));
  reg.gauge("qos_bench/scrub_on_yields")
      .set(static_cast<std::int64_t>(scrub_on.scrub_yields));
  reg.gauge("qos_bench/scrub_off_yields")
      .set(static_cast<std::int64_t>(scrub_off.scrub_yields));
  bench::emit_metrics_json(reg, "qos");

  // Acceptance bounds. The 2×/5× margins carry plenty of slack over the
  // interleaving noise of racing submitter threads.
  DPC_CHECK_MSG(meta_on.p99_ns <= 2 * solo.p99_ns,
                "isolation ON failed to protect the victim from the "
                "metadata storm: p99 "
                    << meta_on.p99_ns << "ns vs solo " << solo.p99_ns
                    << "ns");
  DPC_CHECK_MSG(scrub_on.p99_ns <= 2 * solo.p99_ns,
                "isolation ON failed to protect the victim from the "
                "scrub/bit-rot antagonist: p99 "
                    << scrub_on.p99_ns << "ns vs solo " << solo.p99_ns
                    << "ns");
  DPC_CHECK_MSG(meta_off.p99_ns >= 5 * solo.p99_ns,
                "isolation OFF shows no interference — antagonist too "
                "weak to make the ON arms meaningful: p99 "
                    << meta_off.p99_ns << "ns vs solo " << solo.p99_ns
                    << "ns");
  std::cout << "qos antagonist sweep: PASS\n";
  return 0;
}
