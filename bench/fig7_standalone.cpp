// Reproduces Fig. 7: standalone file service — local Ext4 vs KVFS — 8 KB
// random read/write with DIRECT_IO on big files: (a) latency, (b) IOPS,
// (c) host CPU usage, swept over 1…256 client threads.
//
// Phase 1 (functional): runs the real workload against the real Ext4like
// (over the SSD model) and the real DPC stack (nvme-fs → IO_Dispatch →
// KVFS → KV store) to verify byte-correct behaviour and to *measure* the
// per-op device/transport profile (SSD block ops per op, DMA transactions
// per op).
// Phase 2 (timing): those measured profiles plus the Table-1 calibration
// become MVA station demands; the closed network is solved per thread
// count. Paper anchors: Ext4 read/write 779/1009 µs at 256 threads; KVFS
// 363/410 µs; KVFS IOPS scales to ~128 threads (DPU 100 %); Ext4 stops
// scaling past 32 (SSD-bound); Ext4 CPU > 90 % at 256 threads, KVFS < 20 %.
#include <iostream>

#include "bench_common.hpp"
#include "core/dpc_system.hpp"
#include "hostfs/ext4like.hpp"
#include "sim/mva.hpp"
#include "sim/rng.hpp"
#include "sim/workload.hpp"

namespace {

using namespace dpc;
using namespace dpc::sim;

constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr std::uint64_t kFileSize = 256ULL << 20;  // functional-phase file

struct MeasuredProfiles {
  double ext4_dev_ops_read = 0;   // SSD block ops per 8K read
  double ext4_dev_ops_write = 0;
  double dpc_dma_ops = 0;         // link transactions per 8K op
  double dpc_wire_bytes = 0;
};

MeasuredProfiles run_functional() {
  MeasuredProfiles m;
  Rng rng(1);
  std::vector<std::byte> buf(kIoSize);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));

  // --- Ext4 over the SSD model ---
  ssd::SsdModel disk;
  hostfs::Ext4likeOptions eopts;
  eopts.total_blocks = 1 << 18;  // 1 GB device for the functional phase
  hostfs::Ext4like ext4(disk, eopts);
  const auto ino = ext4.create(hostfs::kRootIno, "big", 0644).value;
  WorkloadGen wgen({Pattern::kRandWrite, kIoSize, kFileSize / 4}, 0);
  std::uint32_t dev_writes = 0, dev_reads = 0;
  constexpr int kOps = 200;
  for (int i = 0; i < kOps; ++i) {
    const auto op = wgen.next();
    dev_writes += ext4.write(ino, op.offset, buf, true).cost.dev_writes;
  }
  WorkloadGen rgen({Pattern::kRandRead, kIoSize, kFileSize / 4}, 0);
  for (int i = 0; i < kOps; ++i) {
    const auto op = rgen.next();
    std::vector<std::byte> out(kIoSize);
    dev_reads += ext4.read(ino, op.offset, out, true).cost.dev_reads;
  }
  m.ext4_dev_ops_write = static_cast<double>(dev_writes) / kOps;
  m.ext4_dev_ops_read = static_cast<double>(dev_reads) / kOps;

  // --- KVFS through the full DPC stack ---
  core::DpcOptions dopts;
  dopts.queues = 2;
  dopts.queue_depth = 8;
  dopts.max_io = 64 * 1024;
  dopts.with_dfs = false;
  core::DpcSystem sys(dopts);
  const auto kino = sys.create(kvfs::kRootIno, "big").ino;
  WorkloadGen kgen({Pattern::kRandWrite, kIoSize, kFileSize / 4}, 0);
  sys.dma_counters().reset();
  for (int i = 0; i < kOps; ++i) {
    const auto op = kgen.next();
    sys.write(kino, op.offset, buf, /*direct=*/true);
  }
  WorkloadGen krgen({Pattern::kRandRead, kIoSize, kFileSize / 4}, 0);
  for (int i = 0; i < kOps; ++i) {
    const auto op = krgen.next();
    std::vector<std::byte> out(kIoSize);
    sys.read(kino, op.offset, out, /*direct=*/true);
  }
  const auto& c = sys.dma_counters();
  m.dpc_dma_ops = static_cast<double>(c.ops(pcie::DmaClass::kDescriptor) +
                                      c.ops(pcie::DmaClass::kData)) /
                  (2.0 * kOps);
  m.dpc_wire_bytes =
      static_cast<double>(c.bytes(pcie::DmaClass::kData)) / (2.0 * kOps);
  bench::emit_metrics_json(sys.metrics(), "fig7_standalone");
  return m;
}

struct Point {
  double iops = 0;
  double lat_us = 0;
  double host_cpu_pct = 0;  // of all 52 hw threads
  double dpu_cpu_pct = 0;
};

Point solve_ext4(bool write, const MeasuredProfiles& m, int threads) {
  using namespace sim::calib;
  ClosedNetwork net;
  // Host kernel stack: per-op work plus the lock/run-queue contention term
  // that grows with concurrency (the paper's "disk I/O contention and
  // scheduling" at 256 threads).
  const Nanos host =
      kExt4KernelOp + (write ? kExt4WriteContentionPerThread
                             : kExt4ReadContentionPerThread) *
                          threads;
  const int hcpu = net.add_queueing("host-cpu", kHostHwThreads, host);
  // SSD: the measured per-op block count confirms the data spans two 4K
  // blocks (plus journaled metadata for writes, which commits in batches);
  // the block layer merges the contiguous data blocks into one device op.
  (void)m;
  net.add_queueing("ssd", ssd::SsdModel::channels(/*is_read=*/!write),
                   ssd::SsdModel::random_service(!write, kIoSize));
  const auto res = net.solve(threads);
  Point p;
  p.iops = res.throughput_ops;
  p.lat_us = res.response.us();
  p.host_cpu_pct = 100.0 * res.utilization[static_cast<std::size_t>(hcpu)];
  return p;
}

Point solve_kvfs(bool write, const MeasuredProfiles& m, int threads) {
  using namespace sim::calib;
  ClosedNetwork net;
  const Nanos host = kSyscallVfs + kFsAdapterOp + kHostNvmeCompletion +
                     kHostDataPathOp;
  const int hcpu = net.add_queueing("host-cpu", kHostHwThreads, host);
  // nvme-fs transport: measured DMA transactions + wire bytes.
  net.add_queueing("dma-engines", kPcieDmaEngines,
                   Nanos{static_cast<std::int64_t>(
                       static_cast<double>(kDmaSetup.ns) * m.dpc_dma_ops)});
  net.add_queueing(
      "pcie-wire", 1,
      pcie_wire_demand(static_cast<std::uint64_t>(m.dpc_wire_bytes), write));
  // DPU: IO_Dispatch + KVFS on 24 cores. (No per-thread scheduling penalty
  // here: host threads park on their own queue pairs; the paper shows KVFS
  // scaling to 128 threads and flat-lining at DPU saturation, not
  // declining.)
  const Nanos dpu_op = write ? kDpuKvfsWriteOp : kDpuKvfsReadOp;
  const int dcpu = net.add_queueing("dpu-cores", kDpuCores, dpu_op);
  // Disaggregated KV backend: high-latency, deeply parallel.
  net.add_queueing("kv-servers", kKvServers, kKvServerOp);
  net.add_delay("kv-access", write ? kKvWriteLatency : kKvReadLatency);
  const auto res = net.solve(threads);
  Point p;
  p.iops = res.throughput_ops;
  p.lat_us = res.response.us();
  p.host_cpu_pct = 100.0 * res.utilization[static_cast<std::size_t>(hcpu)];
  p.dpu_cpu_pct = 100.0 * res.utilization[static_cast<std::size_t>(dcpu)];
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Fig. 7 — standalone service: local Ext4 vs KVFS (8K random, DIO)",
      "crossover past 64 threads; Ext4 779/1009 us and >90% CPU at 256; "
      "KVFS 363/410 us, <20% host CPU, DPU saturates ~128 threads");

  const auto m = run_functional();
  std::cout << "measured per-op profiles: ext4 " << m.ext4_dev_ops_read
            << " blk-reads / " << m.ext4_dev_ops_write
            << " blk-writes; dpc " << m.dpc_dma_ops << " DMAs, "
            << m.dpc_wire_bytes << " wire bytes\n\n";

  for (const bool write : {false, true}) {
    sim::Table t({"threads", "ext4 lat(us)", "kvfs lat(us)", "ext4 IOPS",
                  "kvfs IOPS", "ext4 host-cpu%", "kvfs host-cpu%",
                  "kvfs dpu-cpu%"});
    for (const int n : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      const auto e = solve_ext4(write, m, n);
      const auto k = solve_kvfs(write, m, n);
      t.add_row({std::to_string(n), sim::Table::fmt(e.lat_us),
                 sim::Table::fmt(k.lat_us), sim::Table::fmt_si(e.iops),
                 sim::Table::fmt_si(k.iops), sim::Table::fmt(e.host_cpu_pct),
                 sim::Table::fmt(k.host_cpu_pct),
                 sim::Table::fmt(k.dpu_cpu_pct)});
    }
    std::cout << (write ? "-- 8K random write --\n" : "-- 8K random read --\n");
    bench::print_table(t, args);
  }

  // Headline comparison at 256 threads.
  const auto er = solve_ext4(false, m, 256);
  const auto kr = solve_kvfs(false, m, 256);
  const auto ew = solve_ext4(true, m, 256);
  const auto kw = solve_kvfs(true, m, 256);
  std::cout << "paper @256: ext4 779/1009 us, kvfs 363/410 us\n"
            << "model @256: ext4 " << sim::Table::fmt(er.lat_us, 0) << "/"
            << sim::Table::fmt(ew.lat_us, 0) << " us, kvfs "
            << sim::Table::fmt(kr.lat_us, 0) << "/"
            << sim::Table::fmt(kw.lat_us, 0) << " us\n"
            << "CPU savings @>=64 threads (read/write): "
            << sim::Table::fmt(100.0 * (er.host_cpu_pct - kr.host_cpu_pct) /
                                   er.host_cpu_pct,
                               0)
            << "% / "
            << sim::Table::fmt(100.0 * (ew.host_cpu_pct - kw.host_cpu_pct) /
                                   ew.host_cpu_pct,
                               0)
            << "%  (paper: 86% / 65%)\n";
  return 0;
}
