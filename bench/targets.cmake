# Bench targets live at the top level (included from the root CMakeLists)
# so ${CMAKE_BINARY_DIR}/bench contains only executables and
# `for b in build/bench/*; do $b; done` runs the whole paper reproduction.

function(dpc_bench name)
  add_executable(${name} ${CMAKE_CURRENT_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    dpc_core dpc_dfs dpc_hostfs dpc_kvfs dpc_cache dpc_dpu dpc_kv dpc_ssd
    dpc_ec dpc_virtio dpc_nvme dpc_nvm dpc_pcie dpc_fault dpc_obs dpc_sim
    Threads::Threads)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(dpc_microbench name)
  add_executable(${name} ${CMAKE_CURRENT_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    dpc_core dpc_dfs dpc_hostfs dpc_kvfs dpc_cache dpc_dpu dpc_kv dpc_ssd
    dpc_ec dpc_virtio dpc_nvme dpc_pcie dpc_fault dpc_obs dpc_sim
    benchmark::benchmark benchmark::benchmark_main Threads::Threads)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

dpc_bench(fig1_motivation)
dpc_bench(fig2_fig4_dma_count)
dpc_bench(fig6_raw_transmission)
dpc_bench(fig7_standalone)
dpc_bench(fig8_hybrid_cache)
dpc_bench(table2_bandwidth)
dpc_bench(fig9_dfs)

dpc_microbench(micro_rings)
dpc_microbench(micro_ec)
dpc_microbench(micro_kv)
dpc_microbench(micro_cache)
dpc_bench(ablation_offload)
dpc_bench(chaos_recovery)
dpc_bench(qos_antagonist)
dpc_bench(nvmlog)
dpc_bench(tail_tolerance)
