// Shared plumbing for the figure/table reproduction binaries: flag parsing
// (--csv emits machine-readable rows), headline printing, and the demand
// helpers that turn measured op counts into MVA station demands.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "sim/calib.hpp"
#include "sim/mva.hpp"
#include "sim/table.hpp"
#include "sim/time.hpp"

namespace dpc::bench {

// ------------------------------------------------------------ determinism
//
// Every micro-bench registration is *pinned*: fixed iteration count, fixed
// repetition count. Two runs therefore execute byte-identical work (all
// data is seeded from fixed sim::Rng seeds), and the regress gate
// (bench/regress) compares the best-of-repetitions (min time / max rate)
// against a committed baseline instead of trusting gbench's adaptive
// sampling, which varies the iteration count run-to-run. Best-of is the
// noise-robust statistic for wall-clock benches on a shared machine: the
// minimum converges to the true cost as repetitions grow, while the median
// still moves with background load.

/// Repetitions per pinned benchmark; regress compares the best repetition.
inline constexpr int kBenchRepetitions = 5;
/// Iteration tiers by per-op cost. Pick the tier that keeps one repetition
/// at tens of milliseconds or more — a repetition short enough to fit in a
/// scheduler quantum can lose *entirely* to background load, defeating the
/// best-of-repetitions statistic.
inline constexpr std::int64_t kItersFast = 524288;  ///< sub-µs ops
inline constexpr std::int64_t kItersMid = 16384;    ///< ~1–20 µs ops
inline constexpr std::int64_t kItersSlow = 512;     ///< ≥100 µs ops

/// Pins a registration; chain it after BENCHMARK(...)->Arg(...):
///   BENCHMARK(BM_X)->Arg(4096) DPC_BENCH_PIN(dpc::bench::kItersMid);
/// A macro (not a function) because BENCHMARK() expands to a static
/// declaration that cannot be wrapped; expands to ->Apply(...), so it only
/// references gbench types at the expansion site.
// DisplayAggregatesOnly keeps the console readable but still writes every
// repetition to --benchmark_out, which is where regress takes its min.
#define DPC_BENCH_PIN(iters)                           \
  ->Apply(+[](::benchmark::internal::Benchmark* b) {   \
    b->Iterations(iters)                               \
        ->Repetitions(::dpc::bench::kBenchRepetitions) \
        ->DisplayAggregatesOnly(true);                 \
  })

/// Deliberate-slowdown hook for validating the regress gate: when the
/// DPC_BENCH_SABOTAGE env var is set to N (>1), participating benchmarks
/// run their measured body N times per iteration, so time/iter grows ~N×
/// and `bench/regress` MUST fail against a clean baseline. Unset (the
/// default and the only configuration baselines may be recorded under)
/// this returns 1 and the loop is a plain single pass.
inline int sabotage_factor() {
  static const int factor = [] {
    const char* env = std::getenv("DPC_BENCH_SABOTAGE");
    if (env == nullptr) return 1;
    const int n = std::atoi(env);
    return n > 1 ? n : 1;
  }();
  return factor;
}

struct BenchArgs {
  bool csv = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) args.csv = true;
    }
    return args;
  }
};

inline void print_table(const sim::Table& t, const BenchArgs& args) {
  if (args.csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
  std::cout << '\n';
}

inline void headline(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "    reproduces: " << paper_ref << "\n\n";
}

/// Writes the registry snapshot to BENCH_<name>.json in the working
/// directory so every figure bench leaves a machine-readable metrics trail
/// (counters + p50/p95/p99 of each latency histogram) next to its table.
inline void emit_metrics_json(const obs::Registry& reg,
                              const std::string& bench_name) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  reg.to_json(out);
  out << '\n';
  std::cout << "[metrics] wrote " << path << '\n';
}

/// Modelled cost of `dma_ops` link transactions moving `bytes` of payload:
/// per-transaction setup plus the wire time. Used to convert measured DMA
/// counters into per-op transport demands.
inline sim::Nanos dma_transport_cost(std::uint64_t dma_ops,
                                     std::uint64_t bytes) {
  return sim::calib::kDmaSetup * static_cast<std::int64_t>(dma_ops) +
         sim::calib::pcie_transfer(bytes);
}

}  // namespace dpc::bench
