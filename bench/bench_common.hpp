// Shared plumbing for the figure/table reproduction binaries: flag parsing
// (--csv emits machine-readable rows), headline printing, and the demand
// helpers that turn measured op counts into MVA station demands.
#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "sim/calib.hpp"
#include "sim/mva.hpp"
#include "sim/table.hpp"
#include "sim/time.hpp"

namespace dpc::bench {

struct BenchArgs {
  bool csv = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) args.csv = true;
    }
    return args;
  }
};

inline void print_table(const sim::Table& t, const BenchArgs& args) {
  if (args.csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
  std::cout << '\n';
}

inline void headline(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "    reproduces: " << paper_ref << "\n\n";
}

/// Writes the registry snapshot to BENCH_<name>.json in the working
/// directory so every figure bench leaves a machine-readable metrics trail
/// (counters + p50/p95/p99 of each latency histogram) next to its table.
inline void emit_metrics_json(const obs::Registry& reg,
                              const std::string& bench_name) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  reg.to_json(out);
  out << '\n';
  std::cout << "[metrics] wrote " << path << '\n';
}

/// Modelled cost of `dma_ops` link transactions moving `bytes` of payload:
/// per-transaction setup plus the wire time. Used to convert measured DMA
/// counters into per-op transport demands.
inline sim::Nanos dma_transport_cost(std::uint64_t dma_ops,
                                     std::uint64_t bytes) {
  return sim::calib::kDmaSetup * static_cast<std::int64_t>(dma_ops) +
         sim::calib::pcie_transfer(bytes);
}

}  // namespace dpc::bench
