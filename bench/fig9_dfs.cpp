// Reproduces Fig. 9: distributed file service with three clients —
// standard NFS, NFS + optimized host client, NFS + DPC (offloaded) — over
// (a) 8K random read/write IOPS on big files, (b) small-file ops (8K random
// read, 8K file-creation write), (c) sequential bandwidth, and (d) host CPU
// cores for each.
//
// Paper anchors: optimized ≈ 4-5x the standard client's IOPS at 6-15x its
// CPU (~30 cores during the IOPS test); DPC matches/beats the optimized
// client (up to ~+40% on 8K random write and file creation) at ~standard-
// NFS CPU levels (~3.6 cores, ~10% above standard NFS), i.e. ~90% CPU
// reduction vs the optimized client.
#include <iostream>

#include "dfs_model.hpp"

namespace {

using namespace dpc;
using namespace dpc::bench;

constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr std::uint32_t kMB = 1 << 20;
constexpr int kThreads = 32;
constexpr int kMeasureOps = 300;

/// Bench-wide metrics registry: every measured client pools its counters
/// here, emitted as BENCH_fig9_dfs.json.
dpc::obs::Registry g_registry;

struct Profiles {
  MeanProfile big_read, big_write;     // 8K random on big files
  MeanProfile small_read, small_create; // small-file ops
  MeanProfile seq_read, seq_write;     // 1MB sequential
};

Profiles measure_client(dfs::MdsCluster& mds, dfs::DataServers& ds,
                        const dfs::ClientConfig& cfg, dfs::ClientId id) {
  dfs::DfsClient client(id, mds, ds, cfg, &g_registry);
  const std::string tag = std::to_string(id);
  sim::Rng rng(id);
  std::vector<std::byte> buf8(kIoSize);
  for (auto& b : buf8) b = static_cast<std::byte>(rng.next_below(256));
  std::vector<std::byte> buf1m(kMB, std::byte{0x42});

  // Big preallocated files (the paper: "file size larger than 1GB").
  constexpr int kFiles = 8;
  std::vector<dfs::Ino> big;
  for (int f = 0; f < kFiles; ++f) {
    const auto c = client.create("/big-" + tag + "-" + std::to_string(f),
                                 1ULL << 30);
    DPC_CHECK(c.ok());
    big.push_back(c.ino);
    for (int i = 0; i < 16; ++i)
      DPC_CHECK(client
                    .write(c.ino, static_cast<std::uint64_t>(i) * kIoSize,
                           buf8)
                    .ok());
  }

  Profiles p;
  sim::WorkloadGen wgen({sim::Pattern::kRandWrite, kIoSize, 1 << 20}, id);
  p.big_write = measure(kMeasureOps, [&](int i) {
    return client.write(big[static_cast<std::size_t>(i % kFiles)],
                        wgen.next().offset, buf8);
  });
  sim::WorkloadGen rgen({sim::Pattern::kRandRead, kIoSize, 1 << 20}, id);
  std::vector<std::byte> out(kIoSize);
  p.big_read = measure(kMeasureOps, [&](int i) {
    return client.read(big[static_cast<std::size_t>(i % kFiles)],
                       rgen.next().offset, out);
  });

  // Small files: create + first 8K write; then random whole-file reads.
  std::vector<dfs::Ino> small;
  p.small_create = measure(kMeasureOps, [&](int i) -> dfs::IoResult {
    auto c = client.create("/small-" + tag + "-" + std::to_string(i), 0);
    if (!c.ok()) return c;
    auto w = client.write(c.ino, 0, buf8);
    w.prof += c.prof;
    small.push_back(c.ino);
    return w;
  });
  p.small_read = measure(kMeasureOps, [&](int i) -> dfs::IoResult {
    // Small-file random read = open by path + read (the lookup is part of
    // the per-op cost for this workload).
    const auto idx = static_cast<std::size_t>(i) % small.size();
    auto o = client.open("/small-" + tag + "-" + std::to_string(idx));
    if (!o.ok()) return o;
    auto rd = client.read(o.ino, 0, out);
    rd.prof += o.prof;
    return rd;
  });

  // Sequential 1MB streams on a big file.
  p.seq_write = measure(64, [&](int i) {
    return client.write(big[0], static_cast<std::uint64_t>(i) * kMB, buf1m);
  });
  std::vector<std::byte> out1m(kMB);
  p.seq_read = measure(64, [&](int i) {
    return client.read(big[0], static_cast<std::uint64_t>(i) * kMB, out1m);
  });
  return p;
}

const char* kClientNames[] = {"NFS", "NFS+opt-client", "NFS+DPC"};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Fig. 9 — DFS with three fs-clients (standard / optimized / DPC)",
      "DPC ≈ optimized performance (up to +40% on rnd-write & create) at "
      "~standard-NFS CPU (~3.6 vs ~30 cores; ~90% reduction)");

  dfs::MdsCluster mds;
  dfs::DataServers ds;
  const dfs::ClientConfig cfgs[] = {dfs::ClientConfig::standard_nfs(),
                                    dfs::ClientConfig::optimized(),
                                    dfs::ClientConfig::dpc_offloaded()};
  std::vector<Profiles> profs;
  for (int c = 0; c < 3; ++c)
    profs.push_back(
        measure_client(mds, ds, cfgs[c], static_cast<dfs::ClientId>(c + 1)));

  struct Metric {
    const char* name;
    MeanProfile Profiles::* field;
    std::uint32_t payload;
    bool is_write;
    bool bandwidth;
  };
  const std::vector<Metric> metrics = {
      {"8K rnd-rd IOPS (big)", &Profiles::big_read, kIoSize, false, false},
      {"8K rnd-wr IOPS (big)", &Profiles::big_write, kIoSize, true, false},
      {"8K small-file rnd-rd ops/s", &Profiles::small_read, kIoSize, false,
       false},
      {"8K file-create-wr ops/s", &Profiles::small_create, kIoSize, true,
       false},
      {"seq-rd GB/s", &Profiles::seq_read, kMB, false, true},
      {"seq-wr GB/s", &Profiles::seq_write, kMB, true, true},
  };

  sim::Table t({"metric", "NFS", "NFS+opt", "NFS+DPC", "DPC/opt", "DPC/NFS"});
  std::vector<double> iops_cores(3, 0.0);
  for (const auto& m : metrics) {
    double vals[3];
    for (int c = 0; c < 3; ++c) {
      const auto point =
          solve_dfs(cfgs[c], profs[static_cast<std::size_t>(c)].*m.field,
                    m.payload, m.is_write, kThreads);
      vals[c] = m.bandwidth ? point.ops * kMB / 1e9 : point.ops;
      if (std::string(m.name).find("rnd-rd IOPS") != std::string::npos ||
          std::string(m.name).find("rnd-wr IOPS") != std::string::npos) {
        // Track the per-client core usage during the IOPS tests.
        iops_cores[static_cast<std::size_t>(c)] =
            std::max(iops_cores[static_cast<std::size_t>(c)],
                     point.host_cores);
      }
    }
    auto fmt = [&](double v) {
      return m.bandwidth ? sim::Table::fmt(v, 1) : sim::Table::fmt_si(v);
    };
    t.add_row({m.name, fmt(vals[0]), fmt(vals[1]), fmt(vals[2]),
               sim::Table::fmt(vals[2] / vals[1], 2) + "x",
               sim::Table::fmt(vals[2] / vals[0], 2) + "x"});
  }
  bench::print_table(t, args);

  sim::Table c({"client", "host cores (IOPS test)", "vs NFS", "vs opt"});
  for (int i = 0; i < 3; ++i) {
    c.add_row({kClientNames[i],
               sim::Table::fmt(iops_cores[static_cast<std::size_t>(i)], 1),
               sim::Table::fmt(iops_cores[static_cast<std::size_t>(i)] /
                                   iops_cores[0],
                               1) +
                   "x",
               sim::Table::fmt(100.0 * (1.0 - iops_cores[static_cast<std::size_t>(i)] /
                                                  iops_cores[1]),
                               0) +
                   "% less"});
  }
  bench::print_table(c, args);
  std::cout
      << "paper: optimized ~30 cores, DPC ~3.6 cores (~90% less than "
         "optimized, ~10% above standard NFS), DPC up to +40% on writes\n";
  bench::emit_metrics_json(g_registry, "fig9_dfs");
  return 0;
}
