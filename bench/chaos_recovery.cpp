// Chaos/recovery bench, two sweeps:
//
// 1. Fault-rate sweep — the standalone DPC stack under injected fault
//    rates of 0/1/2/5% at every site, 8K ops through the full nvme-fs →
//    IO_Dispatch → KVFS path (pump mode, deterministic). Reports per-rate
//    goodput (app-level op success after the stack's bounded retries), the
//    modelled mean latency including retry/backoff/timeout charges, and
//    the recovery counters. The 0% row doubles as the no-overhead
//    baseline: with the injector disarmed the failure path costs one
//    null-pointer compare per op.
//
// 2. Crash-restart sweep — crashes the DPU mid-flush (after the backend
//    write, before the clean-marking) with a growing intent-journal
//    backlog and cached-page population, then runs the full restart path
//    (controller reset → journal replay → fsck repair → cache
//    control-plane rebuild + dirty re-flush) and reports the modelled
//    recovery latency and its replay/fsck split. Emits
//    BENCH_crash_recovery.json (recovery latency vs. journal size).
#include <iostream>

#include "bench_common.hpp"
#include "cache/control_plane.hpp"
#include "core/dpc_system.hpp"
#include "fault/injector.hpp"
#include "kvfs/journal.hpp"
#include "kvfs/types.hpp"
#include "nvme/tgt.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

using namespace dpc;

constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr int kFiles = 8;
constexpr int kOpsPerFile = 40;

struct RatePoint {
  double fail_pct = 0;
  double goodput_pct = 0;
  double mean_cost_us = 0;
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t flush_fails = 0;
};

RatePoint run_rate(double p, std::uint64_t seed) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(seed, &fault_reg);

  core::DpcOptions opts;
  opts.queues = 2;
  opts.queue_depth = 8;
  opts.max_io = 128 * 1024;
  opts.with_dfs = false;
  opts.fault = p > 0 ? &fi : nullptr;  // p == 0: injector fully absent
  opts.nvme_retry.max_attempts = 6;
  opts.kv_retry.max_attempts = 6;
  opts.kv_breaker.failure_threshold = 64;
  core::DpcSystem sys(opts);

  if (p > 0) {
    fi.arm(nvme::kFaultTgtDropCqe, p * 0.5);  // drops are the pricy half
    fi.arm(nvme::kFaultTgtErrorCqe, p);
    fi.arm(kv::RemoteKv::kFaultSite, p);
    fi.arm(cache::kFaultFlushWritePage, p);
  }

  sim::Rng rng(seed);
  std::vector<std::byte> buf(kIoSize);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));

  int ops = 0, ok = 0;
  sim::Nanos total_cost{};
  std::vector<std::uint64_t> inos;
  for (int f = 0; f < kFiles; ++f) {
    const auto c = sys.create(kvfs::kRootIno, "f" + std::to_string(f));
    if (c.ok()) inos.push_back(c.ino);
  }
  for (int i = 0; i < kOpsPerFile && !inos.empty(); ++i) {
    for (const auto ino : inos) {
      const std::uint64_t off =
          (rng.next_below(16)) * static_cast<std::uint64_t>(kIoSize);
      const auto w = sys.write(ino, off, buf, /*direct=*/true);
      ++ops;
      ok += w.ok() ? 1 : 0;
      total_cost += w.cost;
      std::vector<std::byte> out(kIoSize);
      const auto r = sys.read(ino, off, out, /*direct=*/true);
      ++ops;
      ok += r.ok() ? 1 : 0;
      total_cost += r.cost;
    }
  }
  for (const auto ino : inos) (void)sys.fsync(ino);

  RatePoint pt;
  pt.fail_pct = p * 100.0;
  pt.goodput_pct = ops > 0 ? 100.0 * ok / ops : 0;
  pt.mean_cost_us =
      ops > 0 ? sim::Nanos{total_cost.ns / ops}.us() : 0;
  pt.injected = fault_reg.counter("fault/injected").value();
  pt.retries = sys.metrics().counter("retry/attempts").value();
  pt.timeouts = sys.metrics().counter("nvme.ini/timeouts").value();
  pt.flush_fails = sys.metrics().counter("cache.ctl/flush_fails").value();
  if (p > 0) {
    // The injector counts into its own registry (it outlives no system);
    // fold its counters into the snapshot so the JSON is self-contained.
    sys.metrics().counter("fault/injected").add(pt.injected);
    sys.metrics().counter("fault/checks").add(
        fault_reg.counter("fault/checks").value());
    bench::emit_metrics_json(sys.metrics(), "chaos_recovery");
  }
  return pt;
}

// ---------------------------------------------------------------- crash

struct CrashPoint {
  int journal_records = 0;  ///< surviving intent records at crash time
  int cached_pages = 0;     ///< cached pages at crash (one dirty mid-flush)
  core::DpcSystem::RestartReport rep;
};

/// One crash-restart measurement: populate `cached_pages` buffered pages
/// and `journal_records` surviving intent records (synthesized directly in
/// the disaggregated store, as a crash with that many interrupted ops
/// would leave behind), halt the DPU mid-flush, and time restart_dpu().
CrashPoint run_crash(int journal_records, int cached_pages,
                     std::uint64_t seed, obs::Registry& summary) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(seed, &fault_reg);

  core::DpcOptions opts;
  opts.queues = 2;
  opts.queue_depth = 8;
  opts.max_io = 128 * 1024;
  opts.with_dfs = false;
  opts.fault = &fi;
  opts.nvme_retry.max_attempts = 4;
  core::DpcSystem sys(opts);

  const auto c = sys.create(kvfs::kRootIno, "sweepfile");
  DPC_CHECK(c.ok());
  std::vector<std::byte> page(4096, std::byte{0x5A});
  for (int p = 0; p < cached_pages; ++p) {
    const auto w = sys.write(c.ino, static_cast<std::uint64_t>(p) * 4096,
                             page, /*direct=*/false);
    DPC_CHECK(w.ok());
  }

  // Synthetic journal backlog: intent records for ops that never started
  // mutating (replay probes each and rolls it back). Ids far above the ino
  // counter so they cannot collide with live records.
  for (int i = 0; i < journal_records; ++i) {
    kvfs::JournalRecord rec;
    rec.op = kvfs::JournalOp::kCreate;
    rec.type = kvfs::FileType::kRegular;
    rec.ino = 9'000'000 + static_cast<kvfs::Ino>(i);
    rec.parent = kvfs::kRootIno;
    rec.name = "ghost-" + std::to_string(i);
    sys.kv_store().put(kvfs::journal_key(9'000'000 + i),
                       kvfs::encode_journal_record(rec));
  }

  // Crash the DPU inside a flush pass: one more buffered write dirties a
  // page, then the fsync-driven flush writes it to the backend and dies
  // before marking it clean — restart finds it dirty in the rebuilt meta
  // area and re-flushes it (idempotent).
  fi.arm_crash(cache::kFaultFlushCrashBeforeClean, 0);
  (void)sys.write(c.ino, 0, page, /*direct=*/false);
  (void)sys.fsync(c.ino);
  DPC_CHECK(fi.crashed());

  CrashPoint pt;
  pt.journal_records = journal_records;
  pt.cached_pages = cached_pages;
  pt.rep = sys.restart_dpu();
  DPC_CHECK(pt.rep.clean());

  summary.histogram("recovery/restart_ns").record(pt.rep.cost);
  summary.counter("crash_recovery/restarts").add();
  summary.counter("crash_recovery/journal_scanned")
      .add(pt.rep.fs.journal.scanned);
  summary.counter("crash_recovery/rolled_back")
      .add(pt.rep.fs.journal.rolled_back);
  summary.counter("crash_recovery/rolled_forward")
      .add(pt.rep.fs.journal.rolled_forward);
  summary.counter("crash_recovery/fsck_repairs").add(pt.rep.fs.fsck.repairs);
  summary.counter("crash_recovery/rebuilt_pages").add(pt.rep.rebuilt_pages);
  summary.counter("crash_recovery/reflushed_pages")
      .add(static_cast<std::uint64_t>(pt.rep.reflushed_pages));
  summary.counter("crash_recovery/aborted_cids").add(pt.rep.aborted_cids);
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Chaos recovery — goodput and latency vs injected fault rate",
      "bounded retries + backoff absorb low-rate faults with ~100% goodput; "
      "latency grows with rate (timeout + backoff charges); 0% = baseline");

  const std::uint64_t seed = fault::FaultInjector::seed_from_env(42);
  std::cout << "fault seed: " << seed << " (override with DPC_FAULT_SEED)\n\n";

  sim::Table t({"fault-rate%", "goodput%", "mean-cost(us)", "injected",
                "retries", "nvme-timeouts", "flush-fails"});
  for (const double p : {0.0, 0.01, 0.02, 0.05}) {
    const auto pt = run_rate(p, seed);
    t.add_row({sim::Table::fmt(pt.fail_pct, 0), sim::Table::fmt(pt.goodput_pct),
               sim::Table::fmt(pt.mean_cost_us),
               std::to_string(pt.injected), std::to_string(pt.retries),
               std::to_string(pt.timeouts), std::to_string(pt.flush_fails)});
  }
  bench::print_table(t, args);

  bench::headline(
      "Crash-restart recovery — latency vs. journal backlog / dirty pages",
      "restart = controller reset + journal replay + fsck + cache rebuild; "
      "replay cost scales with surviving intent records, re-flush with "
      "dirty pages");

  obs::Registry summary;
  sim::Table ct({"journal-recs", "cached-pages", "scanned", "rolled-back",
                 "reflushed", "aborted-cids", "recover(us)", "replay(us)",
                 "fsck(us)"});
  const int kSweep[][2] = {{0, 0}, {16, 32}, {64, 64}, {256, 128},
                           {1024, 256}};
  for (const auto& [recs, pages] : kSweep) {
    const auto pt = run_crash(recs, pages, seed, summary);
    ct.add_row({std::to_string(pt.journal_records),
                std::to_string(pt.cached_pages),
                std::to_string(pt.rep.fs.journal.scanned),
                std::to_string(pt.rep.fs.journal.rolled_back),
                std::to_string(pt.rep.reflushed_pages),
                std::to_string(pt.rep.aborted_cids),
                sim::Table::fmt(pt.rep.cost.us()),
                sim::Table::fmt(pt.rep.fs.journal.cost.us()),
                sim::Table::fmt(pt.rep.fs.fsck.cost.us())});
  }
  bench::print_table(ct, args);
  bench::emit_metrics_json(summary, "crash_recovery");
  return 0;
}
