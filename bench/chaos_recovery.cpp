// Chaos/recovery bench, two sweeps:
//
// 1. Fault-rate sweep — the standalone DPC stack under injected fault
//    rates of 0/1/2/5% at every site, 8K ops through the full nvme-fs →
//    IO_Dispatch → KVFS path (pump mode, deterministic). Reports per-rate
//    goodput (app-level op success after the stack's bounded retries), the
//    modelled mean latency including retry/backoff/timeout charges, and
//    the recovery counters. The 0% row doubles as the no-overhead
//    baseline: with the injector disarmed the failure path costs one
//    null-pointer compare per op.
//
// 2. Crash-restart sweep — crashes the DPU mid-flush (after the backend
//    write, before the clean-marking) with a growing intent-journal
//    backlog and cached-page population, then runs the full restart path
//    (controller reset → journal replay → fsck repair → cache
//    control-plane rebuild + dirty re-flush) and reports the modelled
//    recovery latency and its replay/fsck split. Emits
//    BENCH_crash_recovery.json (recovery latency vs. journal size).
#include <iostream>

#include "bench_common.hpp"
#include "cache/control_plane.hpp"
#include "core/dpc_system.hpp"
#include "dfs/backend.hpp"
#include "dfs/client.hpp"
#include "dpu/scrubber.hpp"
#include "fault/injector.hpp"
#include "kvfs/journal.hpp"
#include "kvfs/types.hpp"
#include "nvme/tgt.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

using namespace dpc;

constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr int kFiles = 8;
constexpr int kOpsPerFile = 40;

struct RatePoint {
  double fail_pct = 0;
  double goodput_pct = 0;
  double mean_cost_us = 0;
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t flush_fails = 0;
};

RatePoint run_rate(double p, std::uint64_t seed) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(seed, &fault_reg);

  core::DpcOptions opts;
  opts.queues = 2;
  opts.queue_depth = 8;
  opts.max_io = 128 * 1024;
  opts.with_dfs = false;
  opts.fault = p > 0 ? &fi : nullptr;  // p == 0: injector fully absent
  opts.nvme_retry.max_attempts = 6;
  opts.kv_retry.max_attempts = 6;
  opts.kv_breaker.failure_threshold = 64;
  core::DpcSystem sys(opts);

  if (p > 0) {
    fi.arm(nvme::kFaultTgtDropCqe, p * 0.5);  // drops are the pricy half
    fi.arm(nvme::kFaultTgtErrorCqe, p);
    fi.arm(kv::RemoteKv::kFaultSite, p);
    fi.arm(cache::kFaultFlushWritePage, p);
  }

  sim::Rng rng(seed);
  std::vector<std::byte> buf(kIoSize);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));

  int ops = 0, ok = 0;
  sim::Nanos total_cost{};
  std::vector<std::uint64_t> inos;
  for (int f = 0; f < kFiles; ++f) {
    const auto c = sys.create(kvfs::kRootIno, "f" + std::to_string(f));
    if (c.ok()) inos.push_back(c.ino);
  }
  for (int i = 0; i < kOpsPerFile && !inos.empty(); ++i) {
    for (const auto ino : inos) {
      const std::uint64_t off =
          (rng.next_below(16)) * static_cast<std::uint64_t>(kIoSize);
      const auto w = sys.write(ino, off, buf, /*direct=*/true);
      ++ops;
      ok += w.ok() ? 1 : 0;
      total_cost += w.cost;
      std::vector<std::byte> out(kIoSize);
      const auto r = sys.read(ino, off, out, /*direct=*/true);
      ++ops;
      ok += r.ok() ? 1 : 0;
      total_cost += r.cost;
    }
  }
  for (const auto ino : inos) (void)sys.fsync(ino);

  RatePoint pt;
  pt.fail_pct = p * 100.0;
  pt.goodput_pct = ops > 0 ? 100.0 * ok / ops : 0;
  pt.mean_cost_us =
      ops > 0 ? sim::Nanos{total_cost.ns / ops}.us() : 0;
  pt.injected = fault_reg.counter("fault/injected").value();
  pt.retries = sys.metrics().counter("retry/attempts").value();
  pt.timeouts = sys.metrics().counter("nvme.ini/timeouts").value();
  pt.flush_fails = sys.metrics().counter("cache.ctl/flush_fails").value();
  if (p > 0) {
    // The injector counts into its own registry (it outlives no system);
    // fold its counters into the snapshot so the JSON is self-contained.
    sys.metrics().counter("fault/injected").add(pt.injected);
    sys.metrics().counter("fault/checks").add(
        fault_reg.counter("fault/checks").value());
    bench::emit_metrics_json(sys.metrics(), "chaos_recovery");
  }
  return pt;
}

// ---------------------------------------------------------------- crash

struct CrashPoint {
  int journal_records = 0;  ///< surviving intent records at crash time
  int cached_pages = 0;     ///< cached pages at crash (one dirty mid-flush)
  core::DpcSystem::RestartReport rep;
};

/// One crash-restart measurement: populate `cached_pages` buffered pages
/// and `journal_records` surviving intent records (synthesized directly in
/// the disaggregated store, as a crash with that many interrupted ops
/// would leave behind), halt the DPU mid-flush, and time restart_dpu().
CrashPoint run_crash(int journal_records, int cached_pages,
                     std::uint64_t seed, obs::Registry& summary) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(seed, &fault_reg);

  core::DpcOptions opts;
  opts.queues = 2;
  opts.queue_depth = 8;
  opts.max_io = 128 * 1024;
  opts.with_dfs = false;
  opts.fault = &fi;
  opts.nvme_retry.max_attempts = 4;
  core::DpcSystem sys(opts);

  const auto c = sys.create(kvfs::kRootIno, "sweepfile");
  DPC_CHECK(c.ok());
  std::vector<std::byte> page(4096, std::byte{0x5A});
  for (int p = 0; p < cached_pages; ++p) {
    const auto w = sys.write(c.ino, static_cast<std::uint64_t>(p) * 4096,
                             page, /*direct=*/false);
    DPC_CHECK(w.ok());
  }

  // Synthetic journal backlog: intent records for ops that never started
  // mutating (replay probes each and rolls it back). Ids far above the ino
  // counter so they cannot collide with live records.
  for (int i = 0; i < journal_records; ++i) {
    kvfs::JournalRecord rec;
    rec.op = kvfs::JournalOp::kCreate;
    rec.type = kvfs::FileType::kRegular;
    rec.ino = 9'000'000 + static_cast<kvfs::Ino>(i);
    rec.parent = kvfs::kRootIno;
    rec.name = "ghost-" + std::to_string(i);
    sys.kv_store().put(kvfs::journal_key(9'000'000 + i),
                       kvfs::encode_journal_record(rec));
  }

  // Crash the DPU inside a flush pass: one more buffered write dirties a
  // page, then the fsync-driven flush writes it to the backend and dies
  // before marking it clean — restart finds it dirty in the rebuilt meta
  // area and re-flushes it (idempotent).
  fi.arm_crash(cache::kFaultFlushCrashBeforeClean, 0);
  (void)sys.write(c.ino, 0, page, /*direct=*/false);
  (void)sys.fsync(c.ino);
  DPC_CHECK(fi.crashed());

  CrashPoint pt;
  pt.journal_records = journal_records;
  pt.cached_pages = cached_pages;
  pt.rep = sys.restart_dpu();
  DPC_CHECK(pt.rep.clean());

  summary.histogram("recovery/restart_ns").record(pt.rep.cost);
  summary.counter("crash_recovery/restarts").add();
  summary.counter("crash_recovery/journal_scanned")
      .add(pt.rep.fs.journal.scanned);
  summary.counter("crash_recovery/rolled_back")
      .add(pt.rep.fs.journal.rolled_back);
  summary.counter("crash_recovery/rolled_forward")
      .add(pt.rep.fs.journal.rolled_forward);
  summary.counter("crash_recovery/fsck_repairs").add(pt.rep.fs.fsck.repairs);
  summary.counter("crash_recovery/rebuilt_pages").add(pt.rep.rebuilt_pages);
  summary.counter("crash_recovery/reflushed_pages")
      .add(static_cast<std::uint64_t>(pt.rep.reflushed_pages));
  summary.counter("crash_recovery/aborted_cids").add(pt.rep.aborted_cids);
  return pt;
}

// ---------------------------------------------------------------- scrub

struct ScrubPoint {
  int corrupted = 0;        ///< shards rotted at rest before the scrub
  int passes_to_detect = 0; ///< paced passes until the first detection
  int passes_to_fix = 0;    ///< paced passes until every rot is resolved
  double detect_us = 0;     ///< modelled scrub time to first detection
  double fix_us = 0;        ///< modelled scrub time to full repair
  double repair_mb_s = 0;   ///< repaired bytes over modelled fix time
  double steady_pass_us = 0;///< mean pass cost on clean media afterwards
  std::uint64_t detected = 0, repaired = 0, unrecoverable = 0;
};

/// One corruption-recovery measurement: an EC-striped DFS file, `rot`
/// shards bit-rotted at rest, then a rate-limited scrubber (32 items per
/// pass) sweeps until the books balance. Detection latency and repair
/// throughput come from the scrubber's own modelled pass costs.
ScrubPoint run_scrub(int rot, std::uint64_t seed, obs::Registry& summary) {
  obs::Registry reg;
  dfs::MdsCluster mds;
  dfs::DataServers ds(sim::calib::kDataServers, nullptr, &reg);
  dfs::DfsClient client(1, mds, ds, dfs::ClientConfig::optimized(), &reg);

  sim::Rng rng(seed ^ static_cast<std::uint64_t>(rot));
  std::vector<std::byte> data(1 << 20);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  const auto c = client.create("/scrub-sweep", data.size());
  DPC_CHECK(c.ok());
  DPC_CHECK(client.write(c.ino, 0, data).ok());

  auto all = ds.stored_shards();
  DPC_CHECK(static_cast<int>(all.size()) >= rot);
  // Rot `rot` distinct shards, rng-picked (deterministic per seed).
  for (int i = 0; i < rot; ++i) {
    const auto j = i + static_cast<int>(rng.next_below(
                           static_cast<std::uint32_t>(all.size()) -
                           static_cast<std::uint32_t>(i)));
    std::swap(all[static_cast<std::size_t>(i)],
              all[static_cast<std::size_t>(j)]);
    const auto& id = all[static_cast<std::size_t>(i)];
    DPC_CHECK(ds.corrupt_shard(id.ino, id.stripe, id.role,
                               rng.next_below(1024)));
  }

  dpu::ScrubberConfig cfg;
  cfg.items_per_pass = 32;
  cfg.pace = sim::nanos(0);
  dpu::Scrubber scrub(cfg, reg);
  scrub.attach_dfs(&ds, &mds);

  const auto& pass_ns = reg.histogram("scrub/pass_ns");
  auto modelled_us = [&pass_ns] {
    return sim::Nanos{pass_ns.mean().ns *
                      static_cast<std::int64_t>(pass_ns.count())}
        .us();
  };

  ScrubPoint pt;
  pt.corrupted = rot;
  const std::uint64_t meta_unit = mds.find_meta(c.ino)->stripe_unit;
  for (int pass = 1; pass <= 100'000; ++pass) {
    scrub.scrub_pass(cfg.items_per_pass);
    const auto t = scrub.totals();
    if (pt.passes_to_detect == 0 && t.detected > 0) {
      pt.passes_to_detect = pass;
      pt.detect_us = modelled_us();
    }
    if (t.repaired + t.unrecoverable >=
        static_cast<std::uint64_t>(rot)) {
      pt.passes_to_fix = pass;
      pt.fix_us = modelled_us();
      break;
    }
  }
  const auto t = scrub.totals();
  pt.detected = t.detected;
  pt.repaired = t.repaired;
  pt.unrecoverable = t.unrecoverable;
  DPC_CHECK(t.detected == t.repaired + t.unrecoverable);
  if (pt.fix_us > 0)
    pt.repair_mb_s = static_cast<double>(pt.repaired) *
                     static_cast<double>(meta_unit) / (pt.fix_us * 1e-6) /
                     (1 << 20);

  // Steady state: the media is clean again; the residual pass cost is the
  // always-on scrub tax.
  const auto before_count = pass_ns.count();
  const auto before_us = modelled_us();
  for (int i = 0; i < 32; ++i) scrub.scrub_pass(cfg.items_per_pass);
  pt.steady_pass_us = (modelled_us() - before_us) /
                      static_cast<double>(pass_ns.count() - before_count);

  summary.counter("scrub/corrupted").add(static_cast<std::uint64_t>(rot));
  summary.counter("scrub/detected").add(t.detected);
  summary.counter("scrub/repaired").add(t.repaired);
  summary.counter("scrub/unrecoverable").add(t.unrecoverable);
  summary.counter("scrub/scanned").add(t.scanned);
  summary.histogram("scrub/detect_ns")
      .record(sim::Nanos{static_cast<std::int64_t>(pt.detect_us * 1e3)});
  summary.histogram("scrub/fix_ns")
      .record(sim::Nanos{static_cast<std::int64_t>(pt.fix_us * 1e3)});
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Chaos recovery — goodput and latency vs injected fault rate",
      "bounded retries + backoff absorb low-rate faults with ~100% goodput; "
      "latency grows with rate (timeout + backoff charges); 0% = baseline");

  const std::uint64_t seed = fault::FaultInjector::seed_from_env(42);
  std::cout << "fault seed: " << seed << " (override with DPC_FAULT_SEED)\n\n";

  sim::Table t({"fault-rate%", "goodput%", "mean-cost(us)", "injected",
                "retries", "nvme-timeouts", "flush-fails"});
  for (const double p : {0.0, 0.01, 0.02, 0.05}) {
    const auto pt = run_rate(p, seed);
    t.add_row({sim::Table::fmt(pt.fail_pct, 0), sim::Table::fmt(pt.goodput_pct),
               sim::Table::fmt(pt.mean_cost_us),
               std::to_string(pt.injected), std::to_string(pt.retries),
               std::to_string(pt.timeouts), std::to_string(pt.flush_fails)});
  }
  bench::print_table(t, args);

  bench::headline(
      "Crash-restart recovery — latency vs. journal backlog / dirty pages",
      "restart = controller reset + journal replay + fsck + cache rebuild; "
      "replay cost scales with surviving intent records, re-flush with "
      "dirty pages");

  obs::Registry summary;
  sim::Table ct({"journal-recs", "cached-pages", "scanned", "rolled-back",
                 "reflushed", "aborted-cids", "recover(us)", "replay(us)",
                 "fsck(us)"});
  const int kSweep[][2] = {{0, 0}, {16, 32}, {64, 64}, {256, 128},
                           {1024, 256}};
  for (const auto& [recs, pages] : kSweep) {
    const auto pt = run_crash(recs, pages, seed, summary);
    ct.add_row({std::to_string(pt.journal_records),
                std::to_string(pt.cached_pages),
                std::to_string(pt.rep.fs.journal.scanned),
                std::to_string(pt.rep.fs.journal.rolled_back),
                std::to_string(pt.rep.reflushed_pages),
                std::to_string(pt.rep.aborted_cids),
                sim::Table::fmt(pt.rep.cost.us()),
                sim::Table::fmt(pt.rep.fs.journal.cost.us()),
                sim::Table::fmt(pt.rep.fs.fsck.cost.us())});
  }
  bench::print_table(ct, args);
  bench::emit_metrics_json(summary, "crash_recovery");

  bench::headline(
      "Corruption recovery — scrub detection latency and repair throughput",
      "a rate-limited scrubber (32 shards/pass) sweeps an EC-striped file "
      "with N shards bit-rotted at rest; detection latency and repair "
      "throughput are modelled scrub time; steady-pass = always-on tax. "
      "Invariant: detected == repaired + unrecoverable.");

  obs::Registry scrub_summary;
  sim::Table st({"corrupted", "detected", "repaired", "unrecov",
                 "detect(us)", "fix-all(us)", "repair(MB/s)",
                 "steady-pass(us)"});
  for (const int rot : {1, 4, 16, 64}) {
    const auto pt = run_scrub(rot, seed, scrub_summary);
    st.add_row({std::to_string(pt.corrupted), std::to_string(pt.detected),
                std::to_string(pt.repaired),
                std::to_string(pt.unrecoverable),
                sim::Table::fmt(pt.detect_us), sim::Table::fmt(pt.fix_us),
                sim::Table::fmt(pt.repair_mb_s),
                sim::Table::fmt(pt.steady_pass_us)});
  }
  bench::print_table(st, args);
  DPC_CHECK(scrub_summary.counter("scrub/detected").value() ==
            scrub_summary.counter("scrub/repaired").value() +
                scrub_summary.counter("scrub/unrecoverable").value());
  bench::emit_metrics_json(scrub_summary, "scrub_recovery");
  return 0;
}
