// Chaos/recovery bench: the standalone DPC stack under injected fault
// rates of 0/1/2/5% at every site, 8K ops through the full nvme-fs →
// IO_Dispatch → KVFS path (pump mode, deterministic).
//
// Reports per-rate goodput (app-level op success after the stack's bounded
// retries), the modelled mean latency including retry/backoff/timeout
// charges, and the recovery counters. The 0% row doubles as the
// no-overhead baseline: with the injector disarmed the failure path costs
// one null-pointer compare per op.
#include <iostream>

#include "bench_common.hpp"
#include "core/dpc_system.hpp"
#include "fault/injector.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

using namespace dpc;

constexpr std::uint32_t kIoSize = 8 * 1024;
constexpr int kFiles = 8;
constexpr int kOpsPerFile = 40;

struct RatePoint {
  double fail_pct = 0;
  double goodput_pct = 0;
  double mean_cost_us = 0;
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t flush_fails = 0;
};

RatePoint run_rate(double p, std::uint64_t seed) {
  obs::Registry fault_reg;
  fault::FaultInjector fi(seed, &fault_reg);

  core::DpcOptions opts;
  opts.queues = 2;
  opts.queue_depth = 8;
  opts.max_io = 128 * 1024;
  opts.with_dfs = false;
  opts.fault = p > 0 ? &fi : nullptr;  // p == 0: injector fully absent
  opts.nvme_retry.max_attempts = 6;
  opts.kv_retry.max_attempts = 6;
  opts.kv_breaker.failure_threshold = 64;
  core::DpcSystem sys(opts);

  if (p > 0) {
    fi.arm(nvme::kFaultTgtDropCqe, p * 0.5);  // drops are the pricy half
    fi.arm(nvme::kFaultTgtErrorCqe, p);
    fi.arm(kv::RemoteKv::kFaultSite, p);
    fi.arm(cache::kFaultFlushWritePage, p);
  }

  sim::Rng rng(seed);
  std::vector<std::byte> buf(kIoSize);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));

  int ops = 0, ok = 0;
  sim::Nanos total_cost{};
  std::vector<std::uint64_t> inos;
  for (int f = 0; f < kFiles; ++f) {
    const auto c = sys.create(kvfs::kRootIno, "f" + std::to_string(f));
    if (c.ok()) inos.push_back(c.ino);
  }
  for (int i = 0; i < kOpsPerFile && !inos.empty(); ++i) {
    for (const auto ino : inos) {
      const std::uint64_t off =
          (rng.next_below(16)) * static_cast<std::uint64_t>(kIoSize);
      const auto w = sys.write(ino, off, buf, /*direct=*/true);
      ++ops;
      ok += w.ok() ? 1 : 0;
      total_cost += w.cost;
      std::vector<std::byte> out(kIoSize);
      const auto r = sys.read(ino, off, out, /*direct=*/true);
      ++ops;
      ok += r.ok() ? 1 : 0;
      total_cost += r.cost;
    }
  }
  for (const auto ino : inos) (void)sys.fsync(ino);

  RatePoint pt;
  pt.fail_pct = p * 100.0;
  pt.goodput_pct = ops > 0 ? 100.0 * ok / ops : 0;
  pt.mean_cost_us =
      ops > 0 ? sim::Nanos{total_cost.ns / ops}.us() : 0;
  pt.injected = fault_reg.counter("fault/injected").value();
  pt.retries = sys.metrics().counter("retry/attempts").value();
  pt.timeouts = sys.metrics().counter("nvme.ini/timeouts").value();
  pt.flush_fails = sys.metrics().counter("cache.ctl/flush_fails").value();
  if (p > 0) {
    // The injector counts into its own registry (it outlives no system);
    // fold its counters into the snapshot so the JSON is self-contained.
    sys.metrics().counter("fault/injected").add(pt.injected);
    sys.metrics().counter("fault/checks").add(
        fault_reg.counter("fault/checks").value());
    bench::emit_metrics_json(sys.metrics(), "chaos_recovery");
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::headline(
      "Chaos recovery — goodput and latency vs injected fault rate",
      "bounded retries + backoff absorb low-rate faults with ~100% goodput; "
      "latency grows with rate (timeout + backoff charges); 0% = baseline");

  const std::uint64_t seed = fault::FaultInjector::seed_from_env(42);
  std::cout << "fault seed: " << seed << " (override with DPC_FAULT_SEED)\n\n";

  sim::Table t({"fault-rate%", "goodput%", "mean-cost(us)", "injected",
                "retries", "nvme-timeouts", "flush-fails"});
  for (const double p : {0.0, 0.01, 0.02, 0.05}) {
    const auto pt = run_rate(p, seed);
    t.add_row({sim::Table::fmt(pt.fail_pct, 0), sim::Table::fmt(pt.goodput_pct),
               sim::Table::fmt(pt.mean_cost_us),
               std::to_string(pt.injected), std::to_string(pt.retries),
               std::to_string(pt.timeouts), std::to_string(pt.flush_fails)});
  }
  bench::print_table(t, args);
  return 0;
}
